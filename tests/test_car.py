"""Tests for CAR (Clock with Adaptive Replacement)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.car import CARReplacement


def _drive(car: CARReplacement, page: int) -> bool:
    """Cache-style driver: returns True on hit."""
    if page in car:
        car.hit(page)
        return True
    if car.full:
        car.evict()
    car.insert(page)
    return False


class TestCARBasics:
    def test_hit_miss_cycle(self):
        car = CARReplacement(2)
        assert not _drive(car, 1)
        assert not _drive(car, 2)
        assert _drive(car, 1)
        assert len(car) == 2

    def test_eviction_respects_capacity(self):
        car = CARReplacement(3)
        for page in range(10):
            _drive(car, page)
        assert len(car) == 3
        car.validate()

    @staticmethod
    def _car_with_ghost() -> tuple[CARReplacement, int]:
        """Build a CAR whose B1 provably holds a ghost.

        With pages 1,2 referenced, filling past capacity promotes them
        to T2 during replace() and demotes the unreferenced page 3 to
        B1, where |T1| + |B1| < c keeps the ghost alive (at tiny
        capacities the published directory bound discards it
        immediately, which is correct but not what this test needs).
        """
        car = CARReplacement(4)
        for page in (1, 2, 3, 4):
            _drive(car, page)
        car.hit(1)
        car.hit(2)
        _drive(car, 5)  # replace(): 1,2 -> T2; 3 -> B1 ghost
        assert 3 not in car
        return car, 3

    def test_ghost_hit_promotes_to_frequency_clock(self):
        car, ghost = self._car_with_ghost()
        frequency_before = car.frequency_pages
        assert _drive(car, ghost) is False  # ghost refault
        assert ghost in car
        assert car.frequency_pages > frequency_before - 2  # landed in T2
        car.validate()

    def test_recency_ghost_hit_grows_p(self):
        car, ghost = self._car_with_ghost()
        before = car.p
        _drive(car, ghost)  # B1 hit
        assert car.p > before

    def test_remove(self):
        car = CARReplacement(2)
        _drive(car, 1)
        _drive(car, 2)
        car.remove(1)
        assert 1 not in car
        with pytest.raises(KeyError):
            car.remove(1)

    def test_hit_missing_raises(self):
        with pytest.raises(KeyError):
            CARReplacement(2).hit(5)

    def test_evict_empty_raises(self):
        with pytest.raises(IndexError):
            CARReplacement(2).evict()

    def test_insert_full_raises(self):
        car = CARReplacement(1)
        car.insert(1)
        with pytest.raises(MemoryError):
            car.insert(2)


class TestCARAdaptivity:
    def test_scan_resistance(self):
        """A hot set + one long scan: CAR must keep most of the hot set
        while plain LRU would flush it."""
        capacity = 16
        car = CARReplacement(capacity)
        hot = list(range(8))
        rng = np.random.default_rng(0)
        hits = 0
        total = 0
        for round_number in range(300):
            for page in rng.permutation(hot):
                hits += _drive(car, int(page))
                total += 1
            # interleave scan pages (never reused)
            scan_base = 1000 + round_number * 4
            for page in range(scan_base, scan_base + 4):
                _drive(car, page)
        assert hits / total > 0.9
        car.validate()

    def test_directory_bounded(self):
        car = CARReplacement(8)
        for page in range(500):
            _drive(car, page)
        assert car.ghost_pages <= 2 * car.capacity
        car.validate()


_PAGES = st.lists(st.integers(min_value=0, max_value=30), max_size=400)


@settings(max_examples=100, deadline=None)
@given(accesses=_PAGES, capacity=st.integers(min_value=2, max_value=8))
def test_car_invariants_hold_for_any_trace(accesses, capacity):
    car = CARReplacement(capacity)
    for page in accesses:
        _drive(car, page)
        assert len(car) <= capacity
        car.validate()
