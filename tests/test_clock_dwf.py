"""Behavioural tests for CLOCK-DWF."""

from __future__ import annotations

import pytest

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.clock_dwf import ClockDWFPolicy, WriteHistoryClock


def _policy(dram=2, nvm=4):
    spec = HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=dram, nvm_pages=nvm,
    )
    mm = MemoryManager(spec)
    return ClockDWFPolicy(mm), mm


class TestWriteHistoryClock:
    def test_write_history_protects_pages(self):
        clock = WriteHistoryClock(3)
        clock.insert(1, written=False)
        clock.insert(2, written=True)
        clock.insert(3, written=False)
        # page 2 arrived written (freq 1); 1 and 3 are read-dominant
        assert clock.evict() in (1, 3)
        assert 2 in clock

    def test_write_hits_deepen_history(self):
        clock = WriteHistoryClock(2, max_write_freq=4)
        clock.insert(1, written=True)
        clock.insert(2, written=True)
        for _ in range(10):
            clock.hit(1, is_write=True)  # saturates at 4
        # evict decays freq; page 2 (freq 1) runs out first
        assert clock.evict() == 2
        assert 1 in clock

    def test_read_hits_do_not_protect(self):
        clock = WriteHistoryClock(2)
        clock.insert(1, written=False)
        clock.insert(2, written=False)
        clock.hit(1, is_write=False)
        assert clock.evict() == 1  # reads grant no extra chances

    def test_capacity_and_errors(self):
        clock = WriteHistoryClock(1)
        clock.insert(1, written=False)
        with pytest.raises(MemoryError):
            clock.insert(2, written=False)
        assert clock.full
        roomy = WriteHistoryClock(2)
        roomy.insert(1, written=False)
        with pytest.raises(KeyError):
            roomy.insert(1, written=True)


class TestClockDWFPlacement:
    def test_write_fault_fills_dram(self):
        policy, mm = _policy()
        policy.access(1, True)
        assert mm.location_of(1) is PageLocation.DRAM
        policy.validate()

    def test_read_fault_fills_dram_while_free(self):
        # the free-DRAM exception (paper's blackscholes observation)
        policy, mm = _policy(dram=2)
        policy.access(1, False)
        assert mm.location_of(1) is PageLocation.DRAM

    def test_read_fault_fills_nvm_when_dram_full(self):
        policy, mm = _policy(dram=1)
        policy.access(1, False)  # fills the single DRAM frame
        policy.access(2, False)
        assert mm.location_of(2) is PageLocation.NVM
        assert mm.accounting.faults_filled_nvm == 1
        policy.validate()

    def test_write_fault_demotes_dram_victim(self):
        policy, mm = _policy(dram=1)
        policy.access(1, False)
        policy.access(2, True)  # write fault -> DRAM; 1 demoted to NVM
        assert mm.location_of(2) is PageLocation.DRAM
        assert mm.location_of(1) is PageLocation.NVM
        assert mm.accounting.migrations_to_nvm == 1


class TestClockDWFWriteHandling:
    def test_nvm_never_serves_writes(self):
        policy, mm = _policy(dram=1)
        policy.access(1, False)
        policy.access(2, False)  # 2 in NVM
        policy.access(2, True)   # write -> must migrate to DRAM
        assert mm.location_of(2) is PageLocation.DRAM
        assert mm.accounting.nvm_write_hits == 0
        assert mm.accounting.migrations_to_dram == 1
        # the displaced DRAM page went the other way
        assert mm.location_of(1) is PageLocation.NVM
        assert mm.accounting.migrations_to_nvm == 1
        policy.validate()

    def test_nvm_read_served_in_place(self):
        policy, mm = _policy(dram=1)
        policy.access(1, False)
        policy.access(2, False)
        policy.access(2, False)
        assert mm.location_of(2) is PageLocation.NVM
        assert mm.accounting.nvm_read_hits == 1

    def test_write_pingpong_generates_migrations(self):
        """The paper's central criticism: alternating writes to
        NVM-resident pages trigger one migration pair per write."""
        policy, mm = _policy(dram=1, nvm=4)
        for page in (1, 2, 3):
            policy.access(page, False)
        migrations_before = mm.accounting.migrations
        # pages 2 and 3 are in NVM; write them alternately
        for _ in range(3):
            policy.access(2, True)
            policy.access(3, True)
        migrations = mm.accounting.migrations - migrations_before
        assert migrations >= 10  # ~2 migrations per write
        policy.validate()

    def test_dram_write_hit_is_free(self):
        policy, mm = _policy()
        policy.access(1, True)
        policy.access(1, True)
        assert mm.accounting.dram_write_hits == 1
        assert mm.accounting.migrations == 0


class TestClockDWFRequiresHybrid:
    def test_rejects_single_module_specs(self):
        spec = HybridMemorySpec(
            dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
            dram_pages=0, nvm_pages=4,
        )
        with pytest.raises(ValueError):
            ClockDWFPolicy(MemoryManager(spec))
