"""Tests for the seed-threading helper (repro.trace.rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.multicore import synthesize_cpu_trace
from repro.trace.rng import ensure_rng
from repro.trace.transform import flip_writes, remap_random
from repro.trace.trace import Trace
from repro.workloads.base import (
    BernoulliWrites,
    Phase,
    PhasedWorkload,
    UniformPattern,
    ZipfPattern,
)


class TestEnsureRng:
    def test_int_seed_builds_generator(self):
        rng = ensure_rng(7)
        assert isinstance(rng, np.random.Generator)
        assert rng.integers(100) == ensure_rng(7).integers(100)

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_seed_sequence_accepted(self):
        rng = ensure_rng(np.random.SeedSequence(11))
        assert isinstance(rng, np.random.Generator)

    def test_generator_passes_through_unchanged(self):
        rng = np.random.default_rng(5)
        assert ensure_rng(rng) is rng

    @pytest.mark.parametrize("bad", [None, "7", 1.5, [1, 2]])
    def test_non_seeds_rejected(self, bad):
        with pytest.raises(TypeError, match="not reproducible"):
            ensure_rng(bad)


class TestThreading:
    """One Generator threaded through a pipeline stays deterministic."""

    def test_transform_chain_with_shared_stream(self):
        base = Trace(np.arange(50) % 10, np.zeros(50, dtype=bool),
                     name="chain")

        def run_chain():
            rng = np.random.default_rng(123)
            return flip_writes(remap_random(base, rng), 0.4, rng)

        first, second = run_chain(), run_chain()
        assert np.array_equal(first.pages, second.pages)
        assert np.array_equal(first.is_write, second.is_write)

    def test_transforms_still_accept_int_seeds(self):
        base = Trace(np.arange(20), np.zeros(20, dtype=bool), name="ints")
        assert np.array_equal(
            remap_random(base, 9).pages, remap_random(base, 9).pages
        )
        assert np.array_equal(
            flip_writes(base, 0.5, seed=9).is_write,
            flip_writes(base, 0.5, seed=9).is_write,
        )

    def test_workload_build_accepts_generator(self):
        workload = PhasedWorkload("w", [
            Phase(UniformPattern(32), BernoulliWrites(0.3), 200),
        ])
        a = workload.build(np.random.default_rng(4))
        b = workload.build(np.random.default_rng(4))
        assert np.array_equal(a.pages, b.pages)
        assert np.array_equal(a.is_write, b.is_write)

    def test_zipf_permutation_accepts_generator(self):
        a = ZipfPattern(64, permute_seed=np.random.default_rng(2))
        b = ZipfPattern(64, permute_seed=np.random.default_rng(2))
        assert np.array_equal(a.top_pages(8), b.top_pages(8))

    def test_cpu_trace_generator_seed(self):
        a = synthesize_cpu_trace(requests=500,
                                 seed=np.random.default_rng(6))
        b = synthesize_cpu_trace(requests=500,
                                 seed=np.random.default_rng(6))
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)

    def test_cpu_trace_int_seed_reproducible(self):
        a = synthesize_cpu_trace(requests=500, seed=6)
        b = synthesize_cpu_trace(requests=500, seed=6)
        assert np.array_equal(a.addresses, b.addresses)
