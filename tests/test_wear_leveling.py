"""Tests for Start-Gap wear levelling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.wear_leveling import StartGapLeveler, replay_writes


class TestMapping:
    def test_initial_mapping_is_identity(self):
        leveler = StartGapLeveler(4)
        assert [leveler.physical_of(i) for i in range(4)] == [0, 1, 2, 3]

    def test_mapping_is_always_a_bijection(self):
        leveler = StartGapLeveler(5, gap_write_interval=1)
        for write in range(200):
            leveler.write(write % 5)
            leveler.check()

    def test_gap_rotation_changes_mapping(self):
        leveler = StartGapLeveler(4, gap_write_interval=1)
        before = [leveler.physical_of(i) for i in range(4)]
        for _ in range(6):
            leveler.write(0)
        after = [leveler.physical_of(i) for i in range(4)]
        assert before != after

    def test_out_of_range_rejected(self):
        leveler = StartGapLeveler(4)
        with pytest.raises(IndexError):
            leveler.physical_of(4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StartGapLeveler(0)
        with pytest.raises(ValueError):
            StartGapLeveler(4, gap_write_interval=0)


class TestWearSpreading:
    def test_single_hot_line_gets_spread(self):
        """The Start-Gap promise: a single hot logical line must not
        wear a single physical line."""
        frames = 16
        hot_writes = [0] * 20_000
        unlevelled = replay_writes(hot_writes, frames)
        levelled = replay_writes(hot_writes, frames, gap_write_interval=16)
        assert unlevelled.max_frame_writes == 20_000
        assert levelled.max_frame_writes < 20_000 / 4
        assert levelled.lifetime_gain_over(unlevelled) > 4.0

    def test_skewed_stream(self):
        rng = np.random.default_rng(0)
        frames = 32
        writes = (rng.zipf(1.5, 30_000) % frames).tolist()
        unlevelled = replay_writes(writes, frames)
        levelled = replay_writes(writes, frames, gap_write_interval=32)
        assert levelled.imbalance < unlevelled.imbalance

    def test_uniform_stream_not_made_worse(self):
        rng = np.random.default_rng(1)
        frames = 32
        writes = rng.integers(0, frames, 30_000).tolist()
        unlevelled = replay_writes(writes, frames)
        levelled = replay_writes(writes, frames, gap_write_interval=64)
        # overhead writes are bounded by 1/interval
        assert levelled.total_writes <= unlevelled.total_writes * 1.05
        assert levelled.imbalance < unlevelled.imbalance * 1.2

    def test_overhead_accounting(self):
        leveler = StartGapLeveler(8, gap_write_interval=10)
        for write in range(100):
            leveler.write(write % 8)
        summary = leveler.summary()
        assert summary.extra_moves == 10
        assert summary.total_writes == 110


@settings(max_examples=60, deadline=None)
@given(
    frames=st.integers(min_value=1, max_value=12),
    interval=st.integers(min_value=1, max_value=20),
    writes=st.lists(st.integers(min_value=0, max_value=11), max_size=300),
)
def test_start_gap_invariants(frames, interval, writes):
    leveler = StartGapLeveler(frames, gap_write_interval=interval)
    for logical in writes:
        leveler.write(logical % frames)
    leveler.check()
    summary = leveler.summary()
    assert summary.total_writes == len(writes) + summary.extra_moves
