"""Tests for single-tier replacement algorithms: LRU and CLOCK."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.replacement import ClockReplacement, LRUReplacement


class TestLRUReplacement:
    def test_evicts_least_recent(self):
        lru = LRUReplacement(2)
        lru.insert(1)
        lru.insert(2)
        lru.hit(1)
        assert lru.evict() == 2

    def test_insert_full_raises(self):
        lru = LRUReplacement(1)
        lru.insert(1)
        with pytest.raises(MemoryError):
            lru.insert(2)

    def test_remove(self):
        lru = LRUReplacement(3)
        for page in (1, 2, 3):
            lru.insert(page)
        lru.remove(2)
        assert 2 not in lru
        assert len(lru) == 2
        lru.validate()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUReplacement(0)


class TestClockReplacement:
    def test_second_chance(self):
        clock = ClockReplacement(3)
        for page in (1, 2, 3):
            clock.insert(page)
        # first eviction sweeps all the arrival bits and takes page 1
        assert clock.evict() == 1
        # pages 2 and 3 now have clear bits; a hit protects page 2
        clock.hit(2)
        assert clock.evict() == 3
        assert 2 in clock
        clock.validate()

    def test_all_referenced_degrades_to_fifo(self):
        clock = ClockReplacement(3)
        for page in (1, 2, 3):
            clock.insert(page)
            clock.hit(page)
        # every page gets its bit cleared; the first scanned is evicted
        victim = clock.evict()
        assert victim in (1, 2, 3)
        assert len(clock) == 2

    def test_remove_hand_position(self):
        clock = ClockReplacement(3)
        for page in (1, 2, 3):
            clock.insert(page)
        clock.remove(1)  # hand pointed at 1
        assert 1 not in clock
        assert len(clock.pages()) == 2
        clock.evict()
        clock.validate()

    def test_remove_last_page_empties_ring(self):
        clock = ClockReplacement(2)
        clock.insert(1)
        clock.remove(1)
        assert len(clock) == 0
        assert clock.pages() == []

    def test_evict_empty_raises(self):
        with pytest.raises(IndexError):
            ClockReplacement(2).evict()

    def test_reinsert_after_evict(self):
        clock = ClockReplacement(2)
        clock.insert(1)
        clock.insert(2)
        victim = clock.evict()
        clock.insert(victim)
        assert victim in clock
        assert len(clock) == 2

    def test_duplicate_insert_rejected(self):
        clock = ClockReplacement(2)
        clock.insert(1)
        with pytest.raises(KeyError):
            clock.insert(1)


_OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "hit", "evict", "remove"]),
              st.integers(min_value=0, max_value=9)),
    max_size=150,
)


@settings(max_examples=150, deadline=None)
@given(ops=_OPS, capacity=st.integers(min_value=1, max_value=5))
def test_clock_structural_invariants(ops, capacity):
    """Any operation sequence keeps the ring, index and capacity
    consistent, and evict always returns a resident page."""
    clock = ClockReplacement(capacity)
    resident: set[int] = set()
    for op, page in ops:
        if op == "insert" and page not in resident and len(resident) < capacity:
            clock.insert(page)
            resident.add(page)
        elif op == "hit" and page in resident:
            clock.hit(page)
        elif op == "evict" and resident:
            victim = clock.evict()
            assert victim in resident
            resident.discard(victim)
        elif op == "remove" and page in resident:
            clock.remove(page)
            resident.discard(page)
        assert set(clock.pages()) == resident
        assert len(clock) == len(resident)
        clock.validate()


@settings(max_examples=100, deadline=None)
@given(
    accesses=st.lists(st.integers(min_value=0, max_value=20), max_size=200),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_lru_replacement_matches_queue_semantics(accesses, capacity):
    """Driving LRUReplacement like a cache yields the textbook LRU
    hit/miss sequence (cross-checked against an ordered-list model)."""
    lru = LRUReplacement(capacity)
    model: list[int] = []  # MRU first
    for page in accesses:
        if page in lru:
            assert page in model
            lru.hit(page)
            model.remove(page)
            model.insert(0, page)
        else:
            assert page not in model
            if lru.full:
                victim = lru.evict()
                assert victim == model.pop()
            lru.insert(page)
            model.insert(0, page)
        lru.validate()
