"""Tests for CSV/JSON figure and sweep export."""

from __future__ import annotations

import csv
import json

import pytest

from repro.experiments.export import (
    figure_to_rows,
    load_figure_json,
    write_figure_csv,
    write_figure_json,
    write_sweep_csv,
)
from repro.experiments.results import FigureData
from repro.experiments.sweep import SweepPoint


@pytest.fixture
def figure() -> FigureData:
    figure = FigureData("figX", "demo figure", "normalized", ("A", "B"))
    figure.add_bar("w1", A=0.25, B=0.75)
    figure.add_bar("w1", group="right", A=1.5, B=0.5)
    figure.append_means()
    return figure


class TestFigureExport:
    def test_rows_flatten_bars(self, figure):
        rows = figure_to_rows(figure)
        assert rows[0]["label"] == "w1"
        assert rows[0]["A"] == 0.25
        assert rows[0]["total"] == pytest.approx(1.0)
        assert rows[1]["group"] == "right"

    def test_csv_round_trip(self, figure, tmp_path):
        path = tmp_path / "fig.csv"
        write_figure_csv(figure, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(figure.bars)
        assert float(rows[0]["B"]) == pytest.approx(0.75)
        assert rows[0]["figure"] == "figX"

    def test_json_round_trip(self, figure, tmp_path):
        path = tmp_path / "fig.json"
        write_figure_json(figure, path)
        loaded = load_figure_json(path)
        assert loaded.figure_id == figure.figure_id
        assert loaded.title == figure.title
        assert loaded.series_order == figure.series_order
        assert len(loaded.bars) == len(figure.bars)
        for original, restored in zip(figure.bars, loaded.bars):
            assert restored.label == original.label
            assert restored.group == original.group
            assert restored.total == pytest.approx(original.total)

    def test_json_is_valid_document(self, figure, tmp_path):
        path = tmp_path / "fig.json"
        write_figure_json(figure, path)
        document = json.loads(path.read_text())
        assert document["series"] == ["A", "B"]
        assert document["ylabel"] == "normalized"


class TestSweepExport:
    def test_sweep_csv(self, tmp_path):
        points = [
            SweepPoint("read_threshold", 1, 100.0, 90.0, 10.0, 5000, 40, 41),
            SweepPoint("read_threshold", 8, 80.0, 70.0, 8.0, 4000, 10, 11),
        ]
        path = tmp_path / "sweep.csv"
        write_sweep_csv(points, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[1]["value"] == "8"
        assert float(rows[0]["amat_ns"]) == pytest.approx(100.0)
        assert rows[0]["parameter"] == "read_threshold"
