"""Golden equivalence of the batched kernels against the reference paths.

The batch API's contract is *bit-identical results*: driving a policy
through ``access_batch`` (the optimised kernels of PR 4) must produce
exactly the ``RunResult`` the per-request ``access`` loop produces, and
the vectorized cache filter must leave every cache set, statistic and
directory entry exactly as the per-access reference replay does.  These
tests pin that contract for every registered policy and across cache
geometries, so any future kernel optimisation that changes behaviour —
however slightly — fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.cache import CacheGeometry
from repro.cpu.filter import filter_trace, filter_trace_vectorized
from repro.cpu.hierarchy import CacheHierarchy, cotson_hierarchy
from repro.cpu.multicore import synthesize_cpu_trace
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import HybridMemorySimulator
from repro.policies.registry import available_policies, policy_factory
from repro.workloads.mix import mix_workloads
from repro.workloads.synthetic import zipf_workload

# ----------------------------------------------------------------------
# Policy kernels: batch vs per-request, bit-identical RunResults
# ----------------------------------------------------------------------
_ZIPF_PAGES = 400


def _zipf_trace():
    return zipf_workload(pages=_ZIPF_PAGES, requests=25_000, alpha=1.2,
                         write_ratio=0.3, seed=7)


def _mix_instance():
    return mix_workloads(("bodytrack", "streamcluster"),
                         request_scale=1 / 2000, footprint_scale=1 / 128)


def _spec_for(policy: str, footprint_pages: int) -> HybridMemorySpec:
    spec = HybridMemorySpec.for_footprint(footprint_pages)
    if policy.startswith("dram-only"):
        return spec.as_dram_only()
    if policy.startswith("nvm-only"):
        return spec.as_nvm_only()
    return spec


def _run(trace, spec, policy: str, batch: bool) -> dict:
    simulator = HybridMemorySimulator(
        spec, policy_factory(policy), sanitize=False, batch=batch,
    )
    return simulator.run(trace).to_dict()


@pytest.mark.parametrize("policy", available_policies())
def test_zipf_batch_matches_per_request(policy):
    trace = _zipf_trace()
    spec = _spec_for(policy, _ZIPF_PAGES)
    assert _run(trace, spec, policy, batch=True) \
        == _run(trace, spec, policy, batch=False)


@pytest.mark.parametrize("policy", available_policies())
def test_parsec_mix_batch_matches_per_request(policy):
    mix = _mix_instance()
    spec = mix.spec
    if policy.startswith("dram-only"):
        spec = spec.as_dram_only()
    elif policy.startswith("nvm-only"):
        spec = spec.as_nvm_only()
    assert _run(mix.trace, spec, policy, batch=True) \
        == _run(mix.trace, spec, policy, batch=False)


def test_batch_matches_with_warmup_split():
    # The simulator replays warm-up and ROI as two separate batches;
    # the split must not change anything either.
    trace = _zipf_trace()
    spec = _spec_for("proposed", _ZIPF_PAGES)
    results = []
    for batch in (True, False):
        simulator = HybridMemorySimulator(
            spec, policy_factory("proposed"), sanitize=False, batch=batch,
        )
        results.append(simulator.run(trace, warmup_fraction=0.3).to_dict())
    assert results[0] == results[1]


# ----------------------------------------------------------------------
# Cache filter: vectorized vs reference, identical state and output
# ----------------------------------------------------------------------
GEOMETRIES = {
    "cotson": lambda: cotson_hierarchy(),
    "direct-mapped": lambda: CacheHierarchy(
        cores=4,
        l1_geometry=CacheGeometry(8192, 1),
        llc_geometry=CacheGeometry(65536, 1),
    ),
    "8-way": lambda: CacheHierarchy(
        cores=2,
        l1_geometry=CacheGeometry(16384, 8),
        llc_geometry=CacheGeometry(262144, 8),
    ),
    "single-set": lambda: CacheHierarchy(
        cores=3,
        l1_geometry=CacheGeometry(512, 8),
        llc_geometry=CacheGeometry(2048, 32),
    ),
}


def _hierarchy_snapshot(hierarchy: CacheHierarchy) -> dict:
    """Full observable state: sets (content *and* LRU order), stats,
    and the coherence directory (content and insertion order)."""
    return {
        "l1_sets": [
            [list(entries.items()) for entries in l1.sets_snapshot()]
            for l1 in hierarchy.l1d
        ],
        "llc_sets": [
            list(entries.items())
            for entries in hierarchy.llc.sets_snapshot()
        ],
        "l1_stats": [vars(l1.stats).copy() for l1 in hierarchy.l1d],
        "llc_stats": vars(hierarchy.llc.stats).copy(),
        "hierarchy_stats": vars(hierarchy.stats).copy(),
        "directory": {
            line: sorted(holders)
            for line, holders in hierarchy._directory.holders.items()
        },
        "directory_order": list(hierarchy._directory.holders.keys()),
    }


@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("flush", [False, True])
def test_filter_equivalence(geometry, flush):
    make = GEOMETRIES[geometry]
    cores = make().cores
    trace = synthesize_cpu_trace(
        shared_pages=256, private_pages=64, requests=30_000,
        cores=cores, seed=11,
    )
    reference_hierarchy = make()
    reference = filter_trace(trace, reference_hierarchy,
                             flush_at_end=flush, vectorized=False)
    vectorized_hierarchy = make()
    vectorized = filter_trace_vectorized(trace, vectorized_hierarchy,
                                         flush_at_end=flush)

    assert np.array_equal(reference.pages, vectorized.pages)
    assert np.array_equal(reference.is_write, vectorized.is_write)
    assert reference.name == vectorized.name
    assert _hierarchy_snapshot(reference_hierarchy) \
        == _hierarchy_snapshot(vectorized_hierarchy)


def test_filter_trace_dispatches_to_vectorized_by_default():
    trace = synthesize_cpu_trace(requests=5_000, seed=3)
    default_hierarchy = cotson_hierarchy()
    default = filter_trace(trace, default_hierarchy)
    explicit_hierarchy = cotson_hierarchy()
    explicit = filter_trace_vectorized(trace, explicit_hierarchy)
    assert np.array_equal(default.pages, explicit.pages)
    assert _hierarchy_snapshot(default_hierarchy) \
        == _hierarchy_snapshot(explicit_hierarchy)
