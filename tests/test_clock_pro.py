"""Tests for CLOCK-Pro."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.clock_pro import ClockProReplacement


def _drive(pro: ClockProReplacement, page: int) -> bool:
    if page in pro:
        pro.hit(page)
        return True
    if pro.full:
        pro.evict()
    pro.insert(page)
    return False


class TestClockProBasics:
    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            ClockProReplacement(1)

    def test_hit_miss_cycle(self):
        pro = ClockProReplacement(2)
        assert not _drive(pro, 1)
        assert not _drive(pro, 2)
        assert _drive(pro, 1)

    def test_capacity_respected(self):
        pro = ClockProReplacement(4)
        for page in range(50):
            _drive(pro, page)
        assert len(pro) == 4
        pro.validate()

    def test_refault_in_test_period_becomes_hot(self):
        pro = ClockProReplacement(2)
        _drive(pro, 1)
        _drive(pro, 2)
        _drive(pro, 3)  # evicts a cold page into its test period
        evicted = next(p for p in (1, 2) if p not in pro)
        hot_before = pro.hot_count
        _drive(pro, evicted)
        assert evicted in pro
        assert pro.hot_count >= max(hot_before, 1)
        pro.validate()

    def test_cold_target_adapts_upward_on_refault(self):
        pro = ClockProReplacement(4)
        for page in range(6):
            _drive(pro, page)
        target_before = pro.cold_target
        # re-fault recently evicted pages
        for page in range(2):
            if page not in pro:
                _drive(pro, page)
        assert pro.cold_target >= target_before

    def test_remove(self):
        pro = ClockProReplacement(3)
        for page in (1, 2, 3):
            _drive(pro, page)
        pro.remove(2)
        assert 2 not in pro
        assert len(pro) == 2
        with pytest.raises(KeyError):
            pro.remove(2)
        pro.validate()

    def test_hit_nonresident_raises(self):
        pro = ClockProReplacement(2)
        _drive(pro, 1)
        _drive(pro, 2)
        _drive(pro, 3)
        evicted = next(p for p in (1, 2) if p not in pro)
        with pytest.raises(KeyError):
            pro.hit(evicted)  # ghost entries are not resident

    def test_evict_empty_raises(self):
        with pytest.raises(IndexError):
            ClockProReplacement(2).evict()

    def test_nonresident_metadata_bounded(self):
        pro = ClockProReplacement(6)
        for page in range(400):
            _drive(pro, page)
        assert pro.nonresident_count <= pro.capacity
        pro.validate()


class TestClockProQuality:
    def test_loop_slightly_larger_than_cache(self):
        """CLOCK-Pro's signature case: a loop slightly larger than the
        cache, where LRU scores zero hits.  CLOCK-Pro must do better
        than LRU (which misses every access after warmup)."""
        capacity = 16
        pro = ClockProReplacement(capacity)
        hits = total = 0
        loop = list(range(capacity + 2))
        for _ in range(200):
            for page in loop:
                hits += _drive(pro, page)
                total += 1
        assert hits > 0  # plain LRU would have exactly 0 after warmup

    def test_hot_cold_separation(self):
        rng = np.random.default_rng(1)
        pro = ClockProReplacement(12)
        hot = list(range(6))
        hits = total = 0
        for index in range(3000):
            if rng.random() < 0.8:
                page = int(rng.choice(hot))
            else:
                page = 100 + index  # one-shot cold pages
            hit = _drive(pro, page)
            if page in hot:
                hits += hit
                total += 1
        assert hits / total > 0.85
        pro.validate()


_PAGES = st.lists(st.integers(min_value=0, max_value=25), max_size=400)


@settings(max_examples=100, deadline=None)
@given(accesses=_PAGES, capacity=st.integers(min_value=2, max_value=8))
def test_clock_pro_invariants_hold_for_any_trace(accesses, capacity):
    pro = ClockProReplacement(capacity)
    for page in accesses:
        _drive(pro, page)
        assert len(pro) <= capacity
        pro.validate()
