"""Tests for the observability layer (:mod:`repro.obs`).

The load-bearing guarantees:

* the event stream is byte-identical between the batched and
  per-request replay paths, for every registered policy;
* attaching the bus never changes the simulation (metrics equal with
  events on and off);
* summaries are deterministic across worker counts (serial vs pooled
  executor);
* the per-interval aggregates reconstruct the end-of-run counters
  exactly, warm-up included;
* everything round-trips losslessly through JSON (bus events, configs,
  summaries, results).
"""

from __future__ import annotations

import io
import json
from dataclasses import replace

import pytest

from repro.experiments.executor import ParallelExecutor
from repro.experiments.runspec import RunSpec
from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.simulator import HybridMemorySimulator, RunResult
from repro.obs import (
    BeneficialMigrationClassifier,
    BufferSink,
    EpochEvent,
    EventBus,
    EventConfig,
    EventSummary,
    EvictionEvent,
    FinalState,
    JsonlTraceSink,
    MigrationEvent,
    PageFaultEvent,
    decode_event,
    encode_event,
    event_from_dict,
    event_to_dict,
)
from repro.policies.registry import available_policies
from repro.workloads.parsec import parsec_workload

WORKLOAD = "dedup"
SCALE = 0.00025  # a few thousand requests: fast, but exercises everything


@pytest.fixture(scope="module")
def instance():
    return parsec_workload(WORKLOAD, request_scale=SCALE)


def _machine(instance, policy: str) -> HybridMemorySpec:
    if policy.startswith("dram-only"):
        return instance.spec.as_dram_only()
    if policy.startswith("nvm-only"):
        return instance.spec.as_nvm_only()
    return instance.spec


def _run(instance, policy: str, *, batch: bool,
         events) -> RunResult:
    spec = RunSpec(WORKLOAD, policy, request_scale=SCALE)
    simulator = HybridMemorySimulator(
        _machine(instance, policy),
        spec.build_policy_factory(),
        inter_request_gap=instance.inter_request_gap,
        batch=batch,
        events=events,
    )
    return simulator.run(instance.trace,
                         warmup_fraction=instance.warmup_fraction)


# ----------------------------------------------------------------------
# Golden equivalence: every policy, batch vs per-request, on vs off
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("policy", available_policies())
    def test_stream_and_metrics_identical(self, instance, policy):
        config = EventConfig(buckets=8, trace=True)
        batched = _run(instance, policy, batch=True, events=config)
        looped = _run(instance, policy, batch=False, events=config)
        plain = _run(instance, policy, batch=True, events=None)

        # byte-identical streams between the fused and reference kernels
        assert batched.events is not None
        assert looped.events is not None
        assert batched.events.trace_lines == looped.events.trace_lines
        assert batched.events.to_dict() == looped.events.to_dict()

        # observability is passive: the simulation itself is unchanged
        assert batched.accounting.snapshot() == plain.accounting.snapshot()
        assert batched.summary() == plain.summary()
        assert batched.wear.page_writes == plain.wear.page_writes


# ----------------------------------------------------------------------
# Determinism across the executor pool
# ----------------------------------------------------------------------
class TestExecutorDeterminism:
    def test_serial_vs_parallel_byte_identical(self):
        specs = [
            RunSpec.core(WORKLOAD, policy, request_scale=SCALE,
                         events=EventConfig(buckets=4, trace=True))
            for policy in ("clock-dwf", "proposed", "dram-only")
        ]
        serial = ParallelExecutor(jobs=1)
        pooled = ParallelExecutor(jobs=2)
        serial_results = serial.submit(list(specs))
        pooled_results = pooled.submit(list(specs))
        for left, right in zip(serial_results, pooled_results):
            assert left.events is not None
            assert left.events.to_dict() == right.events.to_dict()
        # the merged event-summary view is deterministic too
        serial_pairs = serial.collected_events()
        pooled_pairs = pooled.collected_events()
        assert [spec for spec, _ in serial_pairs] \
            == [spec for spec, _ in pooled_pairs]
        assert [summary.to_dict() for _, summary in serial_pairs] \
            == [summary.to_dict() for _, summary in pooled_pairs]


# ----------------------------------------------------------------------
# Interval reconstruction
# ----------------------------------------------------------------------
class TestReconstruction:
    @pytest.fixture(scope="class")
    def observed(self, instance):
        return _run(instance, "proposed", batch=True,
                    events=EventConfig(buckets=8, trace=True))

    def test_clock_counts_measured_requests(self, observed):
        summary = observed.events
        assert summary.requests == observed.accounting.total_requests

    def test_deltas_sum_to_final_counters(self, observed):
        summary = observed.events
        totals: dict[str, int] = {}
        for row in summary.series:
            for name, value in row.accounting.items():
                totals[name] = totals.get(name, 0) + value
        assert totals == observed.accounting.snapshot()

    def test_wear_deltas_sum_to_final_counters(self, observed):
        summary = observed.events
        for name in ("fault_fill_writes", "migration_writes",
                     "request_writes"):
            assert sum(row.wear[name] for row in summary.series) \
                == getattr(observed.wear, name)

    def test_intervals_cover_run_exactly_once(self, observed):
        summary = observed.events
        assert summary.series  # at most `buckets`, at least one
        assert len(summary.series) <= 8
        assert summary.series[0].start == 1
        for left, right in zip(summary.series, summary.series[1:]):
            assert right.start == left.end + 1
        assert summary.series[-1].end == summary.requests

    def test_beneficial_split_present(self, instance):
        for policy in ("clock-dwf", "proposed"):
            result = _run(instance, policy, batch=True,
                          events=EventConfig(buckets=8))
            ledger = result.events.migrations
            assert ledger is not None
            assert ledger.promotions \
                == ledger.beneficial + ledger.non_beneficial
            assert ledger.promotions >= sum(
                row.promotions for row in ledger.by_interval) >= 0


# ----------------------------------------------------------------------
# Serialisation round-trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_event_config(self):
        config = EventConfig(interval=128, buckets=32, trace=True,
                             classify=False)
        assert EventConfig.from_dict(config.to_dict()) == config
        with pytest.raises(ValueError):
            EventConfig(buckets=0)

    def test_events(self):
        events = [
            MigrationEvent(index=7, page=3, to_dram=True, access_count=9,
                           write_count=4, trigger="write", counter=4,
                           threshold=4),
            MigrationEvent(index=9, page=3, to_dram=False, access_count=12,
                           write_count=6),
            PageFaultEvent(index=1, page=5, to_dram=False, is_write=True),
            EvictionEvent(index=11, page=5, from_dram=False, dirty=True,
                          access_count=2, write_count=1),
            EpochEvent(index=16, accounting={"read_requests": 12},
                       wear={"request_writes": 3}),
        ]
        for event in events:
            assert event_from_dict(event_to_dict(event)) == event
            assert decode_event(encode_event(event)) == event
            # canonical encoding: stable key order, no whitespace
            line = encode_event(event)
            assert line == json.dumps(json.loads(line), sort_keys=True,
                                      separators=(",", ":"))

    def test_run_result_with_summary(self, instance):
        result = _run(instance, "proposed", batch=True,
                      events=EventConfig(buckets=4, trace=True))
        rebuilt = RunResult.from_dict(result.to_dict())
        assert rebuilt.events is not None
        assert rebuilt.events.to_dict() == result.events.to_dict()
        assert rebuilt.summary() == result.summary()

    def test_runspec_identity_includes_events(self):
        plain = RunSpec(WORKLOAD, "proposed", request_scale=SCALE)
        observed = replace(plain, events=EventConfig(buckets=4))
        assert plain != observed
        assert plain.key() != observed.key()
        assert plain.digest() != observed.digest()
        assert RunSpec.from_dict(observed.to_dict()) == observed
        # mappings normalise to EventConfig
        mapped = RunSpec(WORKLOAD, "proposed", request_scale=SCALE,
                         events={"buckets": 4})
        assert mapped == observed


# ----------------------------------------------------------------------
# Bus and sink unit behaviour
# ----------------------------------------------------------------------
def _mm() -> MemoryManager:
    return MemoryManager(HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=4, nvm_pages=12,
    ))


class TestBus:
    def test_epoch_idempotent_per_clock(self):
        sink = BufferSink()
        bus = EventBus([sink], interval=4)
        mm = _mm()
        bus.clock = 4
        bus.page_fault(3, to_dram=True, is_write=False)
        bus.epoch(mm)
        bus.epoch(mm)  # same clock: must not mark a second epoch
        epochs = [line for line in sink.lines if '"kind":"epoch"' in line]
        assert len(epochs) == 1
        assert bus.events_seen == 2

    def test_trigger_annotation_consumed_once(self):
        sink = BufferSink()
        bus = EventBus([sink], interval=8)
        bus.clock = 2
        bus.annotate("write", 5, 4)
        bus.migration(7, to_dram=True, access_count=9, write_count=5)
        bus.migration(8, to_dram=True, access_count=3, write_count=0)
        bus.flush()
        first, second = (decode_event(line) for line in sink.lines)
        assert (first.trigger, first.counter, first.threshold) \
            == ("write", 5, 4)
        assert (second.trigger, second.counter, second.threshold) \
            == (None, None, None)

    def test_explicit_trigger_wins_over_annotation(self):
        sink = BufferSink()
        bus = EventBus([sink], interval=8)
        bus.annotate("read", 9, 8)
        bus.migration(7, to_dram=True, access_count=1, write_count=0,
                      trigger="copy")
        bus.flush()
        event = decode_event(sink.lines[0])
        assert event.trigger == "copy"
        assert event.counter is None

    def test_jsonl_trace_sink_streams(self):
        stream = io.StringIO()
        sink = JsonlTraceSink(stream)
        bus = EventBus([sink], interval=4)
        bus.clock = 1
        bus.page_fault(3, to_dram=False, is_write=True)
        bus.finish(_mm())
        lines = stream.getvalue().splitlines()
        assert sink.events_written == len(lines) == 2  # fault + epoch
        assert decode_event(lines[0]) == PageFaultEvent(
            index=1, page=3, to_dram=False, is_write=True)

    def test_caller_owned_bus_yields_no_summary(self, instance):
        sink = BufferSink()
        result = _run(instance, "proposed", batch=True,
                      events=EventBus([sink]))
        assert result.events is None  # the caller owns the sinks
        assert sink.lines  # ... and received the stream


class TestClassifier:
    def test_micro_case_scored_by_hand(self):
        spec = _mm().spec
        classifier = BeneficialMigrationClassifier(spec)
        # page 1: promoted, then demoted after 10 reads and 10 writes
        classifier.handle(MigrationEvent(
            index=10, page=1, to_dram=True, access_count=5, write_count=2))
        classifier.handle(MigrationEvent(
            index=20, page=1, to_dram=False, access_count=25,
            write_count=12))
        # page 2: promoted and still resident at the end, untouched
        classifier.handle(MigrationEvent(
            index=30, page=2, to_dram=True, access_count=4, write_count=1))
        classifier.finish(FinalState(
            clock=40, interval=20, pages={2: (True, 4, 1)}))
        ledger = classifier.ledger
        saved = (10 * (spec.nvm.read_latency - spec.dram.read_latency)
                 + 10 * (spec.nvm.write_latency - spec.dram.write_latency))
        cost = spec.migration_latency_to_dram()
        assert ledger.promotions == 2
        assert ledger.dram_reads_served == 10
        assert ledger.dram_writes_served == 10
        assert ledger.beneficial == (1 if saved >= cost else 0)
        assert ledger.non_beneficial == ledger.promotions - ledger.beneficial
        # page 1 landed in bucket 0 (index 10), page 2 in bucket 1
        assert [row.index for row in ledger.by_interval] == [0, 1]
        assert ledger.wasted_seconds == pytest.approx(
            sum(row.wasted_seconds for row in ledger.by_interval))

    def test_eviction_from_dram_closes_record(self):
        spec = _mm().spec
        classifier = BeneficialMigrationClassifier(spec)
        classifier.handle(MigrationEvent(
            index=5, page=9, to_dram=True, access_count=1, write_count=0))
        classifier.handle(EvictionEvent(
            index=8, page=9, from_dram=True, dirty=False, access_count=3,
            write_count=0))
        classifier.finish(FinalState(clock=10, interval=10, pages={}))
        assert classifier.ledger.promotions == 1
        assert classifier.ledger.dram_reads_served == 2
