"""Tests for the units-of-measure analysis (rules R006/R007)."""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import repro
from repro.analysis import lint_paths
from repro.analysis.flow.units import (
    ACCEPTED_DIMS,
    DIMENSIONLESS,
    ENERGY,
    MAX_EXPONENT,
    POWER,
    TIME,
    Dim,
)

SRC_ROOT = Path(repro.__file__).parent

#: The model files whose annotations seed the dimension registry.
MODEL_FILES = (
    "memory/devices.py",
    "memory/specs.py",
    "memory/accounting.py",
    "memory/metrics.py",
    "memory/power.py",
)


def _lint_snippet(tmp_path: Path, source: str, select=None):
    (tmp_path / "mod.py").write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path], select=select)


def _copy_model(tmp_path: Path) -> Path:
    """Copy the real model files into a scratch tree for corruption."""
    root = tmp_path / "model"
    root.mkdir()
    for rel in MODEL_FILES:
        shutil.copyfile(SRC_ROOT / rel, root / Path(rel).name)
    return root


def _corrupt(root: Path, filename: str, old: str, new: str) -> None:
    target = root / filename
    text = target.read_text(encoding="utf-8")
    assert old in text, f"corruption anchor not found in {filename}: {old!r}"
    target.write_text(text.replace(old, new), encoding="utf-8")


# ----------------------------------------------------------------------
# The dimension algebra
# ----------------------------------------------------------------------
class TestDimAlgebra:
    def test_power_is_energy_per_time(self):
        assert ENERGY.div(TIME) == POWER
        assert POWER.mul(TIME) == ENERGY

    def test_exponent_cap_collapses_to_unknown(self):
        squared = TIME
        for _ in range(MAX_EXPONENT):
            squared = squared.mul(TIME)
            if squared is None:
                break
        assert squared is None

    def test_accepted_dims_are_named_quotients(self):
        assert TIME in ACCEPTED_DIMS
        assert ENERGY in ACCEPTED_DIMS
        assert POWER in ACCEPTED_DIMS
        assert DIMENSIONLESS in ACCEPTED_DIMS
        # time per byte (bandwidth⁻¹) is a quotient of named dims
        assert TIME.div(Dim(byte=1)) in ACCEPTED_DIMS
        # time squared is not
        assert TIME.mul(TIME) not in ACCEPTED_DIMS


# ----------------------------------------------------------------------
# Snippet-level behaviour
# ----------------------------------------------------------------------
class TestUnitsRules:
    def test_adding_time_and_energy_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(t: Seconds, e: Joules) -> Seconds:
                return t + e
        """, select=["R006"])
        assert len(findings) == 1
        assert "add/subtract" in findings[0].message

    def test_consistent_arithmetic_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(t: Seconds, e: Joules, n: Count) -> Watts:
                return e * n / (t + 3 * NANOSECOND)
        """, select=["R006", "R007"])
        assert findings == []

    def test_wrong_return_dimension_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(t: Seconds) -> Joules:
                return t
        """, select=["R006"])
        assert len(findings) == 1
        assert "return value" in findings[0].message

    def test_double_conversion_flagged_as_exotic(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(t: Seconds):
                x = t * NANOSECOND
        """, select=["R007"])
        assert len(findings) == 1
        assert "double unit conversion" in findings[0].message

    def test_branches_with_different_dims_degrade_to_unknown(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(flag, t: Seconds, e: Joules) -> Seconds:
                if flag:
                    x = t
                else:
                    x = e
                return x
        """, select=["R006", "R007"])
        assert findings == []  # definite violations only

    def test_scalar_literals_are_polymorphic(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(t: Seconds) -> Seconds:
                return 2 * t + 5e-9
        """, select=["R006", "R007"])
        assert findings == []

    def test_parameter_shadows_registry_name(self, tmp_path):
        # A local named like an annotated field elsewhere must not
        # inherit that field's dimension.
        findings = _lint_snippet(tmp_path, """
            class Box:
                fault_time: Seconds

            def f(fault_time, e: Joules):
                return fault_time + e
        """, select=["R006"])
        assert findings == []

    def test_multiplicative_growth_in_loop_terminates(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(n, t: Seconds):
                while n:
                    t = t * NANOSECOND
                    n -= 1
                return t
        """, select=["R007"])
        # The exponent cap bounds the lattice so the fixpoint settles;
        # the joined loop state is no longer definite, so the analysis
        # (definite-violations-only) stays silent rather than guessing.
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(t: Seconds, e: Joules):
                return t + e  # noqa: R006
        """, select=["R006"])
        assert findings == []


# ----------------------------------------------------------------------
# Golden tests over the real model files
# ----------------------------------------------------------------------
class TestGoldenModelFiles:
    def test_pristine_copies_are_clean(self, tmp_path):
        root = _copy_model(tmp_path)
        findings = lint_paths([root], select=["R006", "R007"])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_latency_energy_swap_in_power_is_one_r006(self, tmp_path):
        # pJ<->J-style slip: an energy term built from a latency field.
        root = _copy_model(tmp_path)
        _corrupt(
            root, "power.py",
            "+ accounting.nvm_write_hits * nvm.write_energy",
            "+ accounting.nvm_write_hits * nvm.write_latency",
        )
        findings = lint_paths([root], select=["R006", "R007"])
        assert [f.rule_id for f in findings] == ["R006"]
        assert findings[0].path.endswith("power.py")
        assert "incompatible dimensions" in findings[0].message

    def test_double_ns_conversion_in_metrics_flagged(self, tmp_path):
        # ns<->s slip: "converting" an already-seconds latency by a
        # stray NANOSECOND factor makes the term time-squared.
        root = _copy_model(tmp_path)
        _corrupt(
            root, "metrics.py",
            "fault_time = accounting.page_faults * disk.access_latency / total",
            "fault_time = accounting.page_faults * disk.access_latency"
            " * NANOSECOND / total",
        )
        findings = lint_paths([root], select=["R006", "R007"])
        by_rule = sorted(f.rule_id for f in findings)
        # the exotic s^2 value at the assignment (R007) and the
        # mismatched fault_time sink (R006)
        assert by_rule == ["R006", "R007"]
        assert all(f.path.endswith("metrics.py") for f in findings)

    def test_static_term_missing_time_factor_flagged(self, tmp_path):
        # Eq. 3 regression: charging raw watts as joules.
        root = _copy_model(tmp_path)
        _corrupt(
            root, "power.py",
            "static = spec.static_power * (\n"
            "        performance.memory_time + inter_request_gap\n"
            "    )",
            "static = spec.static_power",
        )
        findings = lint_paths([root], select=["R006", "R007"])
        assert [f.rule_id for f in findings] == ["R006"]
        assert "`static`" in findings[0].message


def test_repo_tree_is_units_clean():
    findings = lint_paths([SRC_ROOT], select=["R006", "R007"])
    assert findings == [], "\n".join(f.render() for f in findings)
