"""Tests for the PDRAM baseline (write-count migration, DAC 2009)."""

from __future__ import annotations

import pytest

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.mmu.simulator import simulate
from repro.policies.pdram import PDRAMPolicy
from repro.policies.registry import policy_factory
from repro.workloads.synthetic import zipf_workload


def _policy(dram=2, nvm=6, threshold=2):
    spec = HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=dram, nvm_pages=nvm,
    )
    mm = MemoryManager(spec)
    return PDRAMPolicy(mm, write_threshold=threshold), mm


class TestPDRAMMechanics:
    def test_fault_prefers_dram_then_nvm(self):
        policy, mm = _policy(dram=2)
        policy.access(1, False)
        policy.access(2, False)
        policy.access(3, False)  # DRAM full -> NVM
        assert mm.location_of(1) is PageLocation.DRAM
        assert mm.location_of(2) is PageLocation.DRAM
        assert mm.location_of(3) is PageLocation.NVM
        # unlike the proposed scheme, no demotion happens on a fault
        assert mm.accounting.migrations_to_nvm == 0
        policy.validate()

    def test_write_threshold_triggers_swap(self):
        policy, mm = _policy(dram=2, threshold=2)
        for page in (1, 2, 3):
            policy.access(page, False)
        policy.access(3, True)
        assert mm.location_of(3) is PageLocation.NVM  # 1 write < 2
        policy.access(3, True)
        assert mm.location_of(3) is PageLocation.DRAM  # threshold hit
        assert mm.accounting.migrations_to_dram == 1
        # a DRAM victim was pushed the other way (swap)
        assert mm.accounting.migrations_to_nvm == 1
        policy.validate()

    def test_reads_never_migrate(self):
        policy, mm = _policy(dram=2, threshold=1)
        for page in (1, 2, 3):
            policy.access(page, False)
        for _ in range(20):
            policy.access(3, False)
        assert mm.location_of(3) is PageLocation.NVM
        assert mm.accounting.migrations == 0

    def test_no_window_means_slow_writers_migrate(self):
        """The design difference vs the paper's scheme: PDRAM's counter
        never resets, so a page written rarely-but-steadily eventually
        migrates, even if the proposed scheme's window would have
        filtered it."""
        policy, mm = _policy(dram=2, nvm=8, threshold=4)
        for page in (1, 2, 3, 4, 5):
            policy.access(page, False)
        # page 3 (in NVM) takes one write between long runs of other
        # traffic that would expel it from any position window
        for _ in range(4):
            policy.access(3, True)
            for page in (4, 5):
                for _ in range(5):
                    policy.access(page, False)
        assert mm.location_of(3) is PageLocation.DRAM
        policy.validate()

    def test_validation_errors(self):
        spec = HybridMemorySpec(
            dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
            dram_pages=0, nvm_pages=4,
        )
        with pytest.raises(ValueError):
            PDRAMPolicy(MemoryManager(spec))
        with pytest.raises(ValueError):
            _policy(threshold=0)


class TestPDRAMBehaviour:
    def test_registered_and_runs_end_to_end(self, zipf_trace):
        spec = HybridMemorySpec.for_footprint(zipf_trace.unique_pages)
        result = simulate(zipf_trace, spec, policy_factory("pdram"),
                          validate_every=1000)
        assert result.policy == "pdram"
        assert result.accounting.total_requests == len(zipf_trace)

    def test_more_promotions_than_proposed_on_scattered_writes(self):
        """Without the counter window, scattered writes accumulate and
        PDRAM migrates pages the proposed scheme leaves in place."""
        trace = zipf_workload(pages=400, requests=40_000, alpha=0.9,
                              write_ratio=0.3, seed=5)
        spec = HybridMemorySpec.for_footprint(trace.unique_pages)
        pdram = simulate(trace, spec, policy_factory("pdram"))
        proposed = simulate(trace, spec, policy_factory("proposed"))
        assert pdram.accounting.migrations_to_dram > \
            proposed.accounting.migrations_to_dram
