"""Seeded-mutant goldens for the perf tier, plus the CLI surface.

Each mutant copies a real kernel into a fixture tree, re-introduces
one deoptimization of the kind R016-R018 exist to catch, and asserts
the rule fires at the expected line — and that the unmodified copy
lints clean.  The CLI tests cover ``--statistics``, the crash exit
code, and the baseline ratchet end to end.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.cli import run_lint
from repro.analysis.lint import lint_paths
from repro.cli import main

SRC_ROOT = Path(repro.__file__).parent

PERF_SELECT = ["R016", "R017", "R018"]


def _copy_kernel(tmp_path: Path, relative: str) -> tuple[Path, str]:
    original = (SRC_ROOT / relative).read_text(encoding="utf-8")
    target = tmp_path / Path(relative).name
    return target, original


def _findings_at(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


class TestSeededMutants:
    def test_clean_kernels_have_no_perf_findings(self, tmp_path):
        for relative in ("core/migration.py", "cpu/filter.py"):
            target, original = _copy_kernel(tmp_path, relative)
            target.write_text(original, encoding="utf-8")
        assert lint_paths([tmp_path], select=PERF_SELECT) == []

    def test_reinlined_dict_literal_flagged_r016(self, tmp_path):
        """Golden mutant: a per-request cost dict inside the fused loop."""
        target, original = _copy_kernel(tmp_path, "core/migration.py")
        anchor = "            for page, is_write in zip(pages, writes):\n"
        assert anchor in original
        mutated = original.replace(
            anchor,
            anchor + "                cost = {\"read\": 1, \"write\": 2}\n",
            1,
        )
        target.write_text(mutated, encoding="utf-8")
        expected_line = (
            mutated[: mutated.index("cost = {")].count("\n") + 1)
        findings = _findings_at(
            lint_paths([tmp_path], select=PERF_SELECT), "R016")
        assert [f.line for f in findings] == [expected_line]
        assert "dict literal" in findings[0].message

    def test_unhoisted_attribute_lookup_flagged_r017(self, tmp_path):
        """Golden mutant: undo the ``serve_hit`` hoist in the DRAM branch."""
        target, original = _copy_kernel(tmp_path, "core/migration.py")
        hoisted = "                        serve_hit(page, is_write)\n"
        assert hoisted in original
        mutated = original.replace(
            hoisted,
            "                        self.mm.serve_hit(page, is_write)\n",
            1,
        )
        target.write_text(mutated, encoding="utf-8")
        expected_line = original[: original.index(hoisted)].count("\n") + 1
        findings = _findings_at(
            lint_paths([tmp_path], select=PERF_SELECT), "R017")
        assert [f.line for f in findings] == [expected_line]
        assert "`self.mm.serve_hit`" in findings[0].message
        assert any("hot seed" in note for note in findings[0].evidence)

    def test_np_append_in_filter_flagged_r018(self, tmp_path):
        """Golden mutant: grow the kept-pages array with ``np.append``."""
        target, original = _copy_kernel(tmp_path, "cpu/filter.py")
        loop_append = "            pages.append(line // lines_per_page)\n"
        assert loop_append in original
        mutated = original.replace(
            loop_append,
            "            pages = np.append(pages, line // lines_per_page)\n",
            1,
        )
        target.write_text(mutated, encoding="utf-8")
        expected_line = (
            mutated[: mutated.index("pages = np.append(")].count("\n") + 1)
        findings = _findings_at(
            lint_paths([tmp_path], select=PERF_SELECT), "R018")
        assert [f.line for f in findings] == [expected_line]
        assert "np.append" in findings[0].message


class TestLintCli:
    HOT_FIXTURE = (
        "class DemoPolicy(HybridMemoryPolicy):\n"
        "    def access_batch(self, pages, writes):\n"
        "        for page in pages:\n"
        "            self.mm.serve_hit(page, False)\n"
    )

    def _write_fixture(self, tmp_path: Path) -> Path:
        mod = tmp_path / "mod.py"
        mod.write_text(self.HOT_FIXTURE, encoding="utf-8")
        return mod

    def test_statistics_prints_tiers_and_rule_counts(self, tmp_path, capsys):
        mod = self._write_fixture(tmp_path)
        code = main(["lint", str(mod), "--perf", "--statistics"])
        captured = capsys.readouterr()
        assert code == 1
        assert "tier base:" in captured.err
        assert "tier perf:" in captured.err
        assert "R017: 1 finding(s)" in captured.err

    def test_exit_codes_distinguish_findings_from_crash(
        self, tmp_path, capsys, monkeypatch
    ):
        mod = self._write_fixture(tmp_path)
        assert main(["lint", str(mod), "--select", "R017"]) == 1
        capsys.readouterr()

        def exploding_report(*args, **kwargs):
            raise RuntimeError("analyzer exploded")

        monkeypatch.setattr(
            "repro.analysis.cli.lint_report", exploding_report)
        code = main(["lint", str(mod), "--select", "R017"])
        captured = capsys.readouterr()
        assert code == 2
        assert "internal error" in captured.err
        assert "analyzer exploded" in captured.err

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        mod = self._write_fixture(tmp_path)
        assert main(["lint", str(mod), "--perf", "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_baseline_ratchet_end_to_end(self, tmp_path, capsys):
        mod = self._write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = ["lint", str(mod), "--perf",
                "--baseline", str(baseline)]

        # No baseline yet: the finding fails the run.
        assert main([*args, "--select", "R017"]) == 1
        capsys.readouterr()

        # Record it; the run is clean from then on.
        assert main([*args, "--select", "R017",
                     "--update-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main([*args, "--select", "R017"]) == 0
        capsys.readouterr()

        # A new hazard fails the build and only the new one is printed.
        mod.write_text(
            self.HOT_FIXTURE
            + "            self.wear.record_write(page)\n",
            encoding="utf-8",
        )
        assert main([*args, "--select", "R017"]) == 1
        out = capsys.readouterr().out
        assert "record_write" in out
        assert "serve_hit" not in out

    def test_json_format_carries_evidence(self, tmp_path, capsys):
        mod = self._write_fixture(tmp_path)
        code = main(["lint", str(mod), "--select", "R017",
                     "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["count"] == 1
        evidence = payload["findings"][0]["evidence"]
        assert any("hot seed" in note for note in evidence)

    def test_github_format_carries_evidence(self, tmp_path, capsys):
        mod = self._write_fixture(tmp_path)
        code = main(["lint", str(mod), "--select", "R017",
                     "--format", "github"])
        out = capsys.readouterr().out
        assert code == 1
        assert out.startswith("::error file=")
        assert "hot seed" in out

    def test_list_rules_includes_perf_tier(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R016", "R017", "R018"):
            assert rule_id in out
        assert "(perf)" in out


@pytest.mark.slow
class TestProjectCleanliness:
    def test_src_lints_clean_against_baseline(self, capsys, monkeypatch):
        # Baseline keys are repo-root-relative, so lint from there.
        repo_root = SRC_ROOT.parent.parent
        monkeypatch.chdir(repo_root)
        code = run_lint(
            ["src"], deep=True, perf=True,
            baseline="benchmarks/lint_perf_baseline.json")
        assert code == 0, capsys.readouterr().out
