"""Tests for the interprocedural layer: call graph and summaries."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis.context import SourceFile
from repro.analysis.interproc.callgraph import (
    CallGraph,
    build_aliases,
    build_module_index,
    indexed,
    module_name,
)
from repro.analysis.interproc.summaries import summarize


def _src(tmp_path: Path, name: str, source: str) -> SourceFile:
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    text = textwrap.dedent(source)
    target.write_text(text, encoding="utf-8")
    return SourceFile(
        path=target, text=text, tree=ast.parse(text, filename=str(target)))


def _func(tree: ast.Module, name: str) -> ast.FunctionDef:
    return next(
        node for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name == name
    )


# ----------------------------------------------------------------------
# Module naming and indexing
# ----------------------------------------------------------------------
class TestModuleIndex:
    def test_module_name_anchors_at_repro(self):
        assert module_name(
            Path("/x/src/repro/memory/devices.py")
        ) == "repro.memory.devices"
        assert module_name(
            Path("/x/src/repro/obs/__init__.py")) == "repro.obs"

    def test_module_name_fixture_fallback(self):
        assert module_name(Path("/tmp/fix0/mod.py")) == "fix0.mod"

    def test_functions_methods_and_nested(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def outer():
                def inner():
                    return 1
                return inner

            class Box:
                def get(self):
                    return 0
        """)
        index = build_module_index(src)
        qnames = {info.qname for info in index.functions}
        module = index.module
        assert f"{module}.outer" in qnames
        assert f"{module}.outer.<locals>.inner" in qnames
        assert f"{module}.Box.get" in qnames
        assert index.classes == {"Box": []}

    def test_globals_imports_and_marker(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            import json
            from collections import deque as dq

            LIMIT = 4
            _CACHE = {}  # repro: worker-local
        """)
        index = build_module_index(src)
        assert set(index.module_globals) == {"LIMIT", "_CACHE"}
        assert index.worker_local == frozenset({"_CACHE"})
        assert index.imports["json"] == "json"
        assert index.imports["dq"] == "collections.deque"

    def test_index_cache_reuses_until_file_changes(self, tmp_path):
        src = _src(tmp_path, "mod.py", "X = 1\n")
        first = indexed(src)
        assert indexed(src) is first
        src.path.write_text("X = 1\nY = 22\n", encoding="utf-8")
        fresh = SourceFile(
            path=src.path,
            text=src.path.read_text(encoding="utf-8"),
            tree=ast.parse(src.path.read_text(encoding="utf-8")),
        )
        second = indexed(fresh)
        assert second is not first
        assert "Y" in second.module_globals


# ----------------------------------------------------------------------
# Alias extraction
# ----------------------------------------------------------------------
class TestAliases:
    def test_attribute_and_name_aliases(self):
        func = _func(ast.parse(textwrap.dedent("""
            def kernel(mm):
                bus = mm.events
                record = mm.record_request
                other = bus
        """)), "kernel")
        aliases = build_aliases(func)
        assert aliases["bus"] == ("attr", "events")
        assert aliases["record"] == ("attr", "record_request")
        assert aliases["other"] == ("name", "bus")

    def test_rebound_names_drop_out(self):
        func = _func(ast.parse(textwrap.dedent("""
            def kernel(mm):
                bus = mm.events
                bus = None
        """)), "kernel")
        assert "bus" not in build_aliases(func)


# ----------------------------------------------------------------------
# Call resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_same_module_and_constructor(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            class Box:
                def __init__(self):
                    self.v = 0

            def helper():
                return Box()

            def entry():
                return helper()
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        assert graph.edges[f"{module}.entry"] == (f"{module}.helper",)
        assert graph.edges[f"{module}.helper"] == (
            f"{module}.Box.__init__",)

    def test_self_dispatch_over_hierarchy(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            class Base:
                def run(self):
                    return self.step()

                def step(self):
                    return 0

            class Child(Base):
                def step(self):
                    return 1

            class Unrelated:
                def step(self):
                    return 2
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        targets = set(graph.edges[f"{module}.Base.run"])
        assert f"{module}.Base.step" in targets
        assert f"{module}.Child.step" in targets
        assert f"{module}.Unrelated.step" not in targets

    def test_hoisted_method_alias_resolves(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            class Manager:
                def record_request(self, is_write):
                    return is_write

            def kernel(mm):
                record_request = mm.record_request
                record_request(True)
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        assert f"{module}.Manager.record_request" in \
            graph.edges[f"{module}.kernel"]

    def test_unknown_calls_are_recorded(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def entry(hook):
                hook()
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        assert graph.unknown_calls[f"{module}.entry"] == (3,)

    def test_builtins_are_not_unknown(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def entry(items):
                return sorted(len(item) for item in items)
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        assert f"{module}.entry" not in graph.unknown_calls


# ----------------------------------------------------------------------
# Reachability and seed discovery
# ----------------------------------------------------------------------
class TestReachability:
    def test_chain_and_depth_bound(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def a():
                return b()

            def b():
                return c()

            def c():
                return 0
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        a, b, c = (f"{module}.{n}" for n in "abc")
        full = graph.reachable([a])
        assert full[c] == (a, b, c)
        shallow = graph.reachable([a], max_depth=1)
        assert b in shallow and c not in shallow

    def test_pool_submissions_found(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def work(item):
                return item

            def main(pool, items):
                pool.submit(work, items[0])
                pool.imap_unordered(work, items)
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        submitted = graph.pool_submissions()
        assert f"{module}.work" in submitted
        assert submitted[f"{module}.work"].startswith(f"{module}.main:")


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def test_effects_propagate_transitively(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            STATE = {}

            def sink(key):
                STATE[key] = key

            def middle(key):
                sink(key)

            def entry(key):
                middle(key)
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        summaries = summarize(graph, [src])
        slot = f"{module}:STATE"
        assert slot in summaries.direct[f"{module}.sink"].summary \
            .mutates_globals
        assert summaries.direct[f"{module}.entry"].summary \
            .mutates_globals == frozenset()
        assert slot in summaries.transitive[f"{module}.entry"] \
            .mutates_globals

    def test_emits_detected_through_alias(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def kernel(mm, page):
                bus = mm.events
                if bus is not None:
                    bus.page_fault(page=page)
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        summaries = summarize(graph, [src])
        assert summaries.direct[f"{module}.kernel"].summary.emits_events

    def test_param_mutation_stays_direct_only(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def sink(box):
                box.append(1)

            def entry(box):
                sink(box)
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        summaries = summarize(graph, [src])
        assert "box" in summaries.transitive[f"{module}.sink"] \
            .mutates_params
        assert summaries.transitive[f"{module}.entry"] \
            .mutates_params == frozenset()

    def test_unknown_call_taints_summary(self, tmp_path):
        src = _src(tmp_path, "mod.py", """
            def entry(hook):
                hook()
        """)
        graph = CallGraph.build([src])
        module = next(iter(graph.indexes.values())).module
        summaries = summarize(graph, [src])
        assert summaries.transitive[f"{module}.entry"].calls_unknown
