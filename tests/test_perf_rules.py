"""Tests for the perf lint tier (R016-R018): hot regions and rules.

Fixtures exploit the hot-seed discovery directly: a module-level
``filter_trace`` function or a ``*Policy`` class's ``access``/
``access_batch`` method is hot by definition, so snippets named that
way land inside the tier's scope without any scaffolding.
"""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis import lint as lint_mod
from repro.analysis.lint import lint_paths, lint_report
from repro.analysis.perf.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)


def _lint_snippet(tmp_path: Path, source: str,
                  filename: str = "mod.py", select=("R016", "R017", "R018"),
                  perf: bool = True):
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path], select=list(select) if select else None,
                      perf=perf)


# ----------------------------------------------------------------------
# Hot-region discovery
# ----------------------------------------------------------------------
class TestHotRegions:
    def test_cold_function_not_linted(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows, cfg):  # repro: cold
                out = []
                for row in rows:
                    out.append({"kind": "row"})
                return out
        """)
        assert findings == []

    def test_non_hot_function_not_linted(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def summarise(rows):
                out = []
                for row in rows:
                    out.append({"kind": "row"})
                return out
        """)
        assert findings == []

    def test_hotness_propagates_through_calls_with_evidence(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def tally(rows):
                out = []
                for row in rows:
                    out.append({"kind": "row"})
                return out

            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    return tally(pages)
        """)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == "R016"
        assert any("hot seed" in note for note in finding.evidence)
        assert any("access_batch -> tally" in note
                   for note in finding.evidence)

    def test_cold_function_blocks_traversal(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def helper(rows):
                out = []
                for row in rows:
                    out.append({"kind": "row"})
                return out

            def middle(rows):  # repro: cold
                return helper(rows)

            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    return middle(pages)
        """)
        assert findings == []


# ----------------------------------------------------------------------
# R016 — per-iteration allocation
# ----------------------------------------------------------------------
class TestR016:
    def test_invariant_dict_in_hot_loop_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows, read_cost, write_cost):
                total = 0
                for row in rows:
                    cost = {"read": read_cost, "write": write_cost}
                    total += cost["read"]
                return total
        """)
        assert [f.rule_id for f in findings] == ["R016"]
        assert findings[0].line == 5
        assert "loop-invariant" in findings[0].message

    def test_variant_dict_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows):
                out = None
                for row in rows:
                    out = {"row": row}
                return out
        """)
        assert findings == []

    def test_accumulator_display_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows):
                out = []
                for row in rows:
                    bucket = []
                    bucket.append(row)
                    out.append(bucket)
                return out
        """)
        assert findings == []

    def test_discarded_comprehension_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows):
                for row in rows:
                    [touch(cell) for cell in row]
        """)
        assert [f.rule_id for f in findings] == ["R016"]
        assert "discarded" in findings[0].message

    def test_invariant_fstring_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows, name):
                out = []
                for row in rows:
                    out.append(f"trace-{name}")
                return out
        """)
        assert [f.rule_id for f in findings] == ["R016"]

    def test_variant_fstring_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows):
                out = []
                for row in rows:
                    out.append(f"row-{row}")
                return out
        """)
        assert findings == []

    def test_invariant_lambda_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows, scale):
                out = []
                for row in rows:
                    out.append(sorted(row, key=lambda x: x * scale))
                return out
        """)
        assert [f.rule_id for f in findings] == ["R016"]
        assert "lambda" in findings[0].message

    def test_nested_loop_allocation_attributed_to_inner(self, tmp_path):
        # Invariant w.r.t. the inner loop even though it uses the outer
        # loop's variable: still rebuilt per inner iteration.
        findings = _lint_snippet(tmp_path, """
            def filter_trace(rows):
                out = []
                for row in rows:
                    for cell in row:
                        out.append({"row": row})
                return out
        """)
        assert [f.rule_id for f in findings] == ["R016"]
        assert findings[0].line == 6


# ----------------------------------------------------------------------
# R017 — unhoisted loop-invariant lookups
# ----------------------------------------------------------------------
class TestR017:
    def test_self_chain_in_hot_loop_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    for page in pages:
                        self.mm.serve_hit(page, False)
        """)
        assert [f.rule_id for f in findings] == ["R017"]
        assert "`self.mm.serve_hit`" in findings[0].message
        assert findings[0].line == 5

    def test_store_to_prefix_suppresses(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    for page in pages:
                        self.mm = rebuild(page)
                        self.mm.serve_hit(page, False)
        """)
        assert findings == []

    def test_depth_one_self_attr_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    hits = 0
                    for page in pages:
                        hits += self.threshold
                    return hits
        """)
        assert findings == []

    def test_import_rooted_lookup_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import math

            def filter_trace(rows):
                total = 0.0
                for row in rows:
                    total += math.sqrt(row)
                return total
        """)
        assert [f.rule_id for f in findings] == ["R017"]
        assert "`math.sqrt`" in findings[0].message

    def test_while_test_lookup_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    n = 0
                    while n < self.cfg.limit:
                        n += 1
                    return n
        """)
        assert [f.rule_id for f in findings] == ["R017"]
        assert "`self.cfg.limit`" in findings[0].message

    def test_local_rooted_chain_not_flagged(self, tmp_path):
        # Hoisting depth-one-from-a-local is the kernels' own idiom;
        # flagging `bus._pending.append` would force triviality churn.
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    bus = self.bus
                    for page in pages:
                        bus._pending.append(page)
        """)
        assert findings == []

    def test_reported_once_per_loop(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    for page in pages:
                        self.mm.serve_hit(page, False)
                        self.mm.serve_hit(page, True)
        """)
        assert len(findings) == 1
        assert findings[0].line == 5


# ----------------------------------------------------------------------
# R018 — numpy scalar boxing and dtype churn
# ----------------------------------------------------------------------
class TestR018:
    def test_np_append_in_hot_loop_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import numpy as np

            def filter_trace(rows):
                kept = np.zeros(0)
                for row in rows:
                    kept = np.append(kept, row)
                return kept
        """, select=("R018",))
        assert [f.rule_id for f in findings] == ["R018"]
        assert "O(n^2)" in findings[0].message

    def test_scalar_boxing_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import numpy as np

            def filter_trace(rows):
                arr = np.asarray(rows)
                total = 0.0
                for i in range(3):
                    total += float(arr[i])
                return total
        """, select=("R018",))
        assert [f.rule_id for f in findings] == ["R018"]
        assert "boxes a numpy scalar" in findings[0].message

    def test_mixed_dtype_arithmetic_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import numpy as np

            def filter_trace(rows):
                counts = np.zeros(8, dtype=np.int64)
                for row in rows:
                    counts[row] += 1
                return counts * 1.5
        """, select=("R018",))
        assert [f.rule_id for f in findings] == ["R018"]
        assert "implicit `astype`" in findings[0].message

    def test_astype_once_outside_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import numpy as np

            def filter_trace(rows):
                counts = np.zeros(8, dtype=np.int64)
                for row in rows:
                    counts[row] += 1
                scaled = counts.astype(np.float64)
                return scaled * 1.5
        """, select=("R018",))
        assert findings == []


# ----------------------------------------------------------------------
# Suppression, selection, profiles
# ----------------------------------------------------------------------
class TestScoping:
    HOT_SNIPPET = """
        class DemoPolicy(HybridMemoryPolicy):
            def access_batch(self, pages, writes):
                for page in pages:
                    self.mm.serve_hit(page, False)
    """

    def test_noqa_suppresses(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    for page in pages:
                        self.mm.serve_hit(page, False)  # noqa: R017
        """)
        assert findings == []

    def test_select_restricts_to_one_rule(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                def access_batch(self, pages, writes):
                    for page in pages:
                        cost = {"a": 1}
                        self.mm.serve_hit(page, cost)
        """, select=("R016",))
        assert {f.rule_id for f in findings} == {"R016"}

    def test_perf_rules_need_perf_or_select(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(textwrap.dedent(self.HOT_SNIPPET),
                          encoding="utf-8")
        base_ids = {f.rule_id for f in lint_paths([tmp_path])}
        assert "R017" not in base_ids
        perf_ids = {f.rule_id for f in lint_paths([tmp_path], perf=True)}
        assert "R017" in perf_ids

    def test_tests_profile_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, self.HOT_SNIPPET, filename="tests/test_mod.py")
        assert findings == []

    def test_examples_profile_exempt(self, tmp_path):
        findings = _lint_snippet(
            tmp_path, self.HOT_SNIPPET, filename="examples/demo.py")
        assert findings == []


# ----------------------------------------------------------------------
# Shared parse cache and tier statistics
# ----------------------------------------------------------------------
class TestSharedCaches:
    def test_combined_run_parses_each_file_once(self, tmp_path, monkeypatch):
        for name in ("alpha", "beta", "gamma"):
            (tmp_path / f"{name}.py").write_text(
                f"def {name}():\n    return 0\n", encoding="utf-8")
        lint_mod._PARSE_CACHE.clear()
        parsed: list[str] = []
        real_parse = ast.parse

        def counting_parse(source, filename="<unknown>", *args, **kwargs):
            parsed.append(filename)
            return real_parse(source, filename, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        lint_paths([tmp_path], deep=True, perf=True)
        ours = [name for name in parsed if name.startswith(str(tmp_path))]
        assert sorted(ours) == sorted(set(ours))
        assert len(ours) == 3

    def test_report_names_all_tiers(self, tmp_path):
        (tmp_path / "mod.py").write_text("def f():\n    return 0\n",
                                         encoding="utf-8")
        report = lint_report([tmp_path], deep=True, perf=True)
        assert [tier.name for tier in report.tiers] == \
            ["base", "deep", "perf"]
        assert all(tier.elapsed >= 0.0 for tier in report.tiers)


# ----------------------------------------------------------------------
# Ratcheting baseline
# ----------------------------------------------------------------------
class TestBaseline:
    SNIPPET_ONE = """
        class DemoPolicy(HybridMemoryPolicy):
            def access_batch(self, pages, writes):
                for page in pages:
                    self.mm.serve_hit(page, False)
    """
    SNIPPET_TWO = """
        class DemoPolicy(HybridMemoryPolicy):
            def access_batch(self, pages, writes):
                for page in pages:
                    self.mm.serve_hit(page, False)
                    self.wear.record_write(page)
    """

    def test_ratchet_tolerates_recorded_and_fails_new(self, tmp_path):
        mod = tmp_path / "mod.py"
        baseline = tmp_path / "baseline.json"
        mod.write_text(textwrap.dedent(self.SNIPPET_ONE), encoding="utf-8")
        original = lint_paths([mod], select=["R016", "R017", "R018"])
        assert len(original) == 1
        write_baseline(baseline, original)

        tolerated = load_baseline(baseline)
        fresh, suppressed = apply_baseline(original, tolerated)
        assert fresh == [] and suppressed == 1

        mod.write_text(textwrap.dedent(self.SNIPPET_TWO), encoding="utf-8")
        regressed = lint_paths([mod], select=["R016", "R017", "R018"])
        assert len(regressed) == 2
        fresh, suppressed = apply_baseline(regressed, tolerated)
        assert suppressed == 1
        assert [f.rule_id for f in fresh] == ["R017"]
        assert "`self.wear.record_write`" in fresh[0].message

    def test_duplicate_counts_ratchet_by_multiplicity(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent(self.SNIPPET_ONE), encoding="utf-8")
        original = lint_paths([mod], select=["R016", "R017", "R018"])
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, original + original)
        fresh, suppressed = apply_baseline(original, load_baseline(baseline))
        assert fresh == [] and suppressed == 1
