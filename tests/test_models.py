"""Tests for the paper's cost models: Eq. 1 (AMAT), Eq. 2-3 (APPR),
and the endurance bookkeeping — verified against hand-computed values
and against a literal transcription of the equations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.accounting import AccessAccounting, WearAccounting
from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.endurance import (
    compute_nvm_writes,
    endurance_report,
    relative_lifetime,
)
from repro.memory.metrics import compute_performance
from repro.memory.power import compute_power
from repro.memory.specs import HybridMemorySpec


def _spec() -> HybridMemorySpec:
    return HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=16, nvm_pages=144,
    )


def _accounting() -> AccessAccounting:
    acct = AccessAccounting(
        read_requests=700, write_requests=300,
        dram_read_hits=400, dram_write_hits=200,
        nvm_read_hits=280, nvm_write_hits=95,
        read_faults=20, write_faults=5,
        faults_filled_dram=22, faults_filled_nvm=3,
        migrations_to_dram=12, migrations_to_nvm=15,
        clean_evictions=4, dirty_evictions=3,
    )
    acct.validate()
    return acct


def _literal_eq1(acct: AccessAccounting, spec: HybridMemorySpec) -> float:
    """Equation 1 exactly as printed in the paper."""
    dram, nvm = spec.dram, spec.nvm
    pf = spec.page_factor
    return (
        acct.p_hit_dram * (acct.p_read_dram * dram.read_latency
                           + acct.p_write_dram * dram.write_latency)
        + acct.p_hit_nvm * (acct.p_read_nvm * nvm.read_latency
                            + acct.p_write_nvm * nvm.write_latency)
        + acct.p_miss * spec.disk.access_latency
        + acct.p_mig_d * pf * (nvm.read_latency + dram.write_latency)
        + acct.p_mig_n * pf * (dram.read_latency + nvm.write_latency)
    )


def _literal_eq2(acct: AccessAccounting, spec: HybridMemorySpec) -> float:
    """Equation 2 exactly as printed (dynamic terms only)."""
    dram, nvm = spec.dram, spec.nvm
    pf = spec.page_factor
    return (
        acct.p_hit_dram * (acct.p_read_dram * dram.read_energy
                           + acct.p_write_dram * dram.write_energy)
        + acct.p_hit_nvm * (acct.p_read_nvm * nvm.read_energy
                            + acct.p_write_nvm * nvm.write_energy)
        + acct.p_miss * acct.p_disk_to_dram * pf * dram.write_energy
        + acct.p_miss * acct.p_disk_to_nvm * pf * nvm.write_energy
        + acct.p_mig_d * pf * (nvm.read_energy + dram.write_energy)
        + acct.p_mig_n * pf * (dram.read_energy + nvm.write_energy)
    )


class TestPerformanceModel:
    def test_matches_literal_equation_1(self):
        acct, spec = _accounting(), _spec()
        breakdown = compute_performance(acct, spec)
        assert breakdown.amat == pytest.approx(_literal_eq1(acct, spec))

    def test_component_sum(self):
        breakdown = compute_performance(_accounting(), _spec())
        assert breakdown.amat == pytest.approx(
            breakdown.request_time + breakdown.fault_time
            + breakdown.migration_time
        )
        assert breakdown.memory_time == pytest.approx(
            breakdown.amat - breakdown.fault_time
        )

    def test_hand_computed_hit_only_case(self):
        acct = AccessAccounting(read_requests=10, dram_read_hits=10)
        breakdown = compute_performance(acct, _spec())
        assert breakdown.amat == pytest.approx(50e-9)
        assert breakdown.fault_time == 0.0
        assert breakdown.migration_time == 0.0

    def test_fault_only_case(self):
        acct = AccessAccounting(read_requests=4, read_faults=4,
                                faults_filled_dram=4)
        breakdown = compute_performance(acct, _spec())
        assert breakdown.amat == pytest.approx(5e-3)

    def test_empty_accounting(self):
        breakdown = compute_performance(AccessAccounting(), _spec())
        assert breakdown.amat == 0.0

    def test_elapsed_time(self):
        acct = AccessAccounting(read_requests=10, dram_read_hits=10)
        breakdown = compute_performance(acct, _spec())
        assert breakdown.elapsed_time(10) == pytest.approx(500e-9)

    def test_normalized_to(self):
        acct = _accounting()
        breakdown = compute_performance(acct, _spec())
        assert breakdown.normalized_to(breakdown) == pytest.approx(1.0)


class TestPowerModel:
    def test_matches_literal_equation_2(self):
        acct, spec = _accounting(), _spec()
        power = compute_power(acct, spec)
        assert power.dynamic_total == pytest.approx(_literal_eq2(acct, spec))

    def test_static_term_uses_wall_time(self):
        acct, spec = _accounting(), _spec()
        perf = compute_performance(acct, spec)
        gap = 100e-9
        power = compute_power(acct, spec, perf, inter_request_gap=gap)
        assert power.static == pytest.approx(
            spec.static_power * (perf.memory_time + gap)
        )

    def test_gap_increases_only_static(self):
        acct, spec = _accounting(), _spec()
        without = compute_power(acct, spec)
        with_gap = compute_power(acct, spec, inter_request_gap=1e-6)
        assert with_gap.static > without.static
        assert with_gap.dynamic_total == pytest.approx(without.dynamic_total)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            compute_power(_accounting(), _spec(), inter_request_gap=-1.0)

    def test_appr_is_component_sum(self):
        power = compute_power(_accounting(), _spec())
        assert power.appr == pytest.approx(
            power.static + power.dynamic_hit + power.fault_fill
            + power.migration
        )

    def test_write_hit_in_nvm_costs_10x_dram(self):
        spec = _spec()
        nvm_writes = AccessAccounting(write_requests=10, nvm_write_hits=10)
        dram_writes = AccessAccounting(write_requests=10, dram_write_hits=10)
        nvm_power = compute_power(nvm_writes, spec)
        dram_power = compute_power(dram_writes, spec)
        assert nvm_power.dynamic_hit == pytest.approx(
            10 * dram_power.dynamic_hit
        )

    def test_total_energy(self):
        power = compute_power(_accounting(), _spec())
        assert power.total_energy(1000) == pytest.approx(power.appr * 1000)


class TestEnduranceModel:
    def test_write_breakdown_from_accounting(self):
        acct, spec = _accounting(), _spec()
        writes = compute_nvm_writes(acct, spec)
        assert writes.request_writes == 95
        assert writes.fault_fill_writes == 3 * 64
        assert writes.migration_writes == 15 * 64
        assert writes.total == 95 + 18 * 64

    def test_relative_lifetime_is_inverse_writes(self):
        acct, spec = _accounting(), _spec()
        writes = compute_nvm_writes(acct, spec)
        half = AccessAccounting(
            read_requests=acct.read_requests,
            write_requests=acct.write_requests,
            dram_read_hits=acct.dram_read_hits,
            dram_write_hits=acct.dram_write_hits,
            nvm_read_hits=acct.nvm_read_hits,
            nvm_write_hits=acct.nvm_write_hits,
            read_faults=acct.read_faults,
            write_faults=acct.write_faults,
            faults_filled_dram=acct.faults_filled_dram,
            faults_filled_nvm=acct.faults_filled_nvm,
            migrations_to_dram=acct.migrations_to_dram,
            migrations_to_nvm=0,
            clean_evictions=acct.clean_evictions,
            dirty_evictions=acct.dirty_evictions,
        )
        fewer = compute_nvm_writes(half, spec)
        assert relative_lifetime(fewer, writes) > 1.0

    def test_endurance_report(self):
        wear = WearAccounting(page_factor=64)
        for _ in range(10):
            wear.record_request_write(1)
        wear.record_fault_fill(2)
        report = endurance_report(wear, _spec(), elapsed_seconds=1.0)
        assert report.total_writes == 74
        assert report.max_page_writes == 64
        assert report.touched_pages == 2
        # hottest page does 64 writes/s; endurance 1e8 -> ~1.56e6 s
        assert report.estimated_lifetime_seconds == pytest.approx(
            1e8 / 64
        )

    def test_lifetime_none_without_elapsed(self):
        wear = WearAccounting()
        wear.record_request_write(0)
        report = endurance_report(wear, _spec())
        assert report.estimated_lifetime_seconds is None


@settings(max_examples=120, deadline=None)
@given(
    dram_reads=st.integers(0, 500), dram_writes=st.integers(0, 500),
    nvm_reads=st.integers(0, 500), nvm_writes=st.integers(0, 500),
    read_faults=st.integers(0, 50), write_faults=st.integers(0, 50),
    mig_d=st.integers(0, 30), mig_n=st.integers(0, 30),
)
def test_models_are_exact_identities(dram_reads, dram_writes, nvm_reads,
                                     nvm_writes, read_faults, write_faults,
                                     mig_d, mig_n):
    """For any consistent event counts, the vectorised implementations
    equal the literal textbook equations, and all terms are finite and
    non-negative."""
    acct = AccessAccounting(
        read_requests=dram_reads + nvm_reads + read_faults,
        write_requests=dram_writes + nvm_writes + write_faults,
        dram_read_hits=dram_reads, dram_write_hits=dram_writes,
        nvm_read_hits=nvm_reads, nvm_write_hits=nvm_writes,
        read_faults=read_faults, write_faults=write_faults,
        faults_filled_dram=read_faults + write_faults,
        migrations_to_dram=mig_d, migrations_to_nvm=mig_n,
    )
    acct.validate()
    spec = _spec()
    perf = compute_performance(acct, spec)
    power = compute_power(acct, spec, perf)
    assert perf.amat == pytest.approx(_literal_eq1(acct, spec))
    assert power.dynamic_total == pytest.approx(_literal_eq2(acct, spec))
    assert perf.amat >= 0.0
    assert power.appr >= 0.0
