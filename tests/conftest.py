"""Shared fixtures: small deterministic traces and machine specs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import SANITIZE_ENV
from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.trace.trace import Trace


@pytest.fixture(autouse=True)
def _sanitize_simulations(monkeypatch: pytest.MonkeyPatch) -> None:
    """Run the whole suite with the simulation sanitizer enabled.

    Every ``HybridMemorySimulator`` built without an explicit
    ``sanitize=`` argument wraps its policy in the runtime sanitizer,
    so each test doubles as an invariant check.
    """
    monkeypatch.setenv(SANITIZE_ENV, "1")


@pytest.fixture
def small_spec() -> HybridMemorySpec:
    """A tiny hybrid memory: 4 DRAM frames + 12 NVM frames."""
    return HybridMemorySpec(
        dram=dram_spec(),
        nvm=pcm_spec(),
        disk=hdd_spec(),
        dram_pages=4,
        nvm_pages=12,
    )


@pytest.fixture
def zipf_trace() -> Trace:
    """A 5k-request zipf trace over 64 pages, 30% writes."""
    rng = np.random.default_rng(7)
    pages = rng.zipf(1.3, 5000) % 64
    writes = rng.random(5000) < 0.3
    return Trace(pages, writes, name="zipf64")


@pytest.fixture
def tiny_trace() -> Trace:
    """A hand-written 8-request trace (pages 0-3)."""
    return Trace.from_pairs(
        [(0, False), (1, True), (0, False), (2, False),
         (3, True), (1, False), (0, True), (3, False)],
        name="tiny",
    )
