"""RunSpec / ParallelExecutor / ResultCache behaviour.

Covers the executor redesign's contracts: spec identity (hashing,
digests, serialisation), deterministic parallel merges (serial and
``--jobs N`` byte-identical), cache hit/miss/invalidation, and worker
crashes surfacing as :class:`ExecutorError` without losing the rest of
the batch.
"""

import json
import os

import pytest

from repro.experiments.executor import (
    ExecutorError,
    ParallelExecutor,
    ResultCache,
    code_version,
    execute_specs,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.runspec import RunSpec
from repro.policies.registry import register_policy

#: Tiny rendering scale so each simulation stays in the millisecond
#: range; identity/caching/merge semantics do not depend on scale.
SCALE = dict(request_scale=1 / 4000, footprint_scale=1 / 256)

#: Parallel width used by the pool tests; CI raises it via the
#: environment to exercise the executor with real concurrency.
JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))


def small(workload="dedup", policy="proposed", **kwargs):
    return RunSpec.core(workload, policy, **SCALE, **kwargs)


class _AlwaysCrash:
    """Policy factory that dies on construction, in any process."""

    def __call__(self, mm):
        raise RuntimeError("injected crash")


@pytest.fixture
def crashy_policy():
    """Temporarily register a policy that crashes on construction.

    Pool workers are forked at submit time, so they inherit the live
    registry entry and the crash happens worker-side.  The entry is
    removed afterwards — other tests iterate ``available_policies()``
    and must not trip over it.
    """
    from repro.policies import registry

    register_policy("test-crashy", _AlwaysCrash())
    yield "test-crashy"
    registry._FACTORIES.pop("test-crashy", None)


# ----------------------------------------------------------------------
# RunSpec identity
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_mapping_and_tuple_overrides_are_equal(self):
        by_mapping = RunSpec("dedup", policy_overrides={
            "read_threshold": 4, "write_threshold": 2})
        by_tuple = RunSpec("dedup", policy_overrides=(
            ("write_threshold", 2), ("read_threshold", 4)))
        assert by_mapping == by_tuple
        assert hash(by_mapping) == hash(by_tuple)
        assert by_mapping.digest() == by_tuple.digest()

    def test_digest_differs_across_fields(self):
        base = small()
        assert base.digest() != small(policy="clock-dwf").digest()
        assert base.digest() != small(seed=7).digest()
        assert base.digest() != small(
            policy_overrides={"read_threshold": 9}).digest()

    def test_round_trips_through_json(self):
        spec = small(policy="nvm-only",
                     policy_overrides={}, warmup_fraction=0.25)
        rebuilt = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.digest() == spec.digest()

    def test_core_derives_single_module_transforms(self):
        assert small(policy="dram-only").spec_transform == ("dram-only",)
        assert small(policy="nvm-only").spec_transform == ("nvm-only",)
        assert small(policy="proposed").spec_transform == ()

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError, match="unknown spec transform"):
            RunSpec("dedup", spec_transform=("bogus",))

    def test_warmup_fraction_validated(self):
        with pytest.raises(ValueError):
            RunSpec("dedup", warmup_fraction=1.0)

    def test_specs_are_pool_and_dict_ready(self):
        import pickle

        spec = small(policy_overrides={"read_threshold": 4})
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert {spec: 1}[spec] == 1


# ----------------------------------------------------------------------
# RunResult serialisation
# ----------------------------------------------------------------------
class TestRunResultRoundTrip:
    def test_json_round_trip_is_exact(self):
        from repro.mmu.simulator import RunResult

        result = small().execute()
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = RunResult.from_dict(payload)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.summary() == result.summary()
        # wear histogram keys survive the str round-trip JSON forces
        assert rebuilt.wear.page_writes == result.wear.page_writes
        assert all(isinstance(page, int)
                   for page in rebuilt.wear.page_writes)


# ----------------------------------------------------------------------
# Executor semantics
# ----------------------------------------------------------------------
GRID = [small(workload, policy)
        for workload in ("dedup", "raytrace")
        for policy in ("proposed", "clock-dwf", "dram-only")]


class TestParallelExecutor:
    def test_parallel_matches_serial_exactly(self):
        serial = ParallelExecutor(jobs=1).submit(GRID)
        parallel = ParallelExecutor(jobs=JOBS).submit(GRID)
        for one, other in zip(serial, parallel):
            assert one.to_dict() == other.to_dict()
            assert json.dumps(one.summary(), sort_keys=True) == \
                json.dumps(other.summary(), sort_keys=True)

    def test_duplicates_simulated_once(self):
        executor = ParallelExecutor(jobs=1)
        spec = small()
        results = executor.submit([spec, spec, spec])
        assert executor.stats.simulated == 1
        assert results[0] is results[1] is results[2]

    def test_progress_reports_every_spec(self):
        seen = []
        executor = ParallelExecutor(
            jobs=1, progress=lambda done, total, spec:
            seen.append((done, total, spec)))
        executor.submit(GRID[:3])
        assert [done for done, _, _ in seen] == [1, 2, 3]
        assert all(total == 3 for _, total, _ in seen)
        assert {spec for _, _, spec in seen} == set(GRID[:3])

    def test_crash_surfaces_after_batch_completes(self, crashy_policy):
        crashing = RunSpec("dedup", policy=crashy_policy, **SCALE)
        batch = GRID[:3] + [crashing]
        executor = ParallelExecutor(jobs=JOBS, retries=1)
        with pytest.raises(ExecutorError) as excinfo:
            executor.submit(batch)
        error = excinfo.value
        # the three healthy specs completed despite the crash ...
        assert set(error.results) == set(GRID[:3])
        assert [failure.spec for failure in error.failures] == [crashing]
        assert "injected crash" in error.failures[0].traceback
        # ... and the crash was retried before being reported
        assert executor.stats.retries >= 1
        assert executor.stats.failures == 1

    def test_execute_specs_convenience(self):
        (result,) = execute_specs([small()])
        assert result.policy == "proposed"


# ----------------------------------------------------------------------
# Persistent cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_after_miss_and_zero_resimulation(self, tmp_path):
        spec = small()
        first = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        warm = first.submit([spec])
        assert (first.stats.cache_misses, first.stats.simulated) == (1, 1)

        second = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        cached = second.submit([spec])
        assert (second.stats.cache_hits, second.stats.simulated) == (1, 0)
        assert cached[0].to_dict() == warm[0].to_dict()

    def test_code_version_change_invalidates(self, tmp_path):
        spec = small()
        old = ParallelExecutor(
            jobs=1, cache=ResultCache(tmp_path, version="aaaa"))
        old.submit([spec])
        new = ParallelExecutor(
            jobs=1, cache=ResultCache(tmp_path, version="bbbb"))
        new.submit([spec])
        assert new.stats.cache_hits == 0
        assert new.stats.simulated == 1

    def test_digest_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(jobs=1, cache=cache)
        executor.submit([small()])
        executor.submit([small(seed=7)])
        assert executor.stats.cache_hits == 0
        assert executor.stats.cache_misses == 2

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        spec = small()
        cache = ResultCache(tmp_path)
        ParallelExecutor(jobs=1, cache=cache).submit([spec])
        cache.path_for(spec).write_text("{not json", encoding="utf-8")
        fresh = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        fresh.submit([spec])
        assert fresh.stats.simulated == 1

    def test_cache_files_are_self_describing(self, tmp_path):
        spec = small()
        cache = ResultCache(tmp_path)
        ParallelExecutor(jobs=1, cache=cache).submit([spec])
        payload = json.loads(cache.path_for(spec).read_text())
        assert payload["version"] == code_version()
        assert RunSpec.from_dict(payload["spec"]) == spec


# ----------------------------------------------------------------------
# code_version memoisation
# ----------------------------------------------------------------------
class TestCodeVersionMemo:
    @pytest.fixture
    def scratch_package(self, tmp_path, monkeypatch):
        """A throwaway versioned tree wired in as the default root."""
        import types

        import repro.experiments.executor as executor_module

        package = tmp_path / "repro"
        (package / "trace").mkdir(parents=True)
        (package / "__init__.py").write_text("", encoding="utf-8")
        (package / "trace" / "mod.py").write_text("A = 1", encoding="utf-8")
        monkeypatch.setattr(
            executor_module, "repro",
            types.SimpleNamespace(__file__=str(package / "__init__.py")),
        )
        monkeypatch.setattr(executor_module, "_code_version_memo", None)
        return package

    def test_memo_hit_on_unchanged_tree(self, scratch_package):
        from repro.experiments import executor as executor_module

        first = executor_module.code_version()
        assert executor_module._code_version_memo is not None
        assert executor_module.code_version() == first

    def test_memo_invalidates_when_a_file_changes(self, scratch_package):
        from repro.experiments import executor as executor_module

        first = executor_module.code_version()
        (scratch_package / "trace" / "mod.py").write_text(
            "A = 1  # edited", encoding="utf-8")
        assert executor_module.code_version() != first

    def test_memo_invalidates_when_a_file_appears(self, scratch_package):
        from repro.experiments import executor as executor_module

        first = executor_module.code_version()
        (scratch_package / "trace" / "extra.py").write_text(
            "B = 2", encoding="utf-8")
        assert executor_module.code_version() != first

    def test_touch_without_change_keeps_the_version(self, scratch_package):
        from repro.experiments import executor as executor_module

        first = executor_module.code_version()
        target = scratch_package / "trace" / "mod.py"
        os.utime(target, ns=(1, 1))  # force a signature miss
        assert executor_module.code_version() == first

    def test_explicit_root_bypasses_the_memo(self, tmp_path):
        from repro.experiments import executor as executor_module

        package = tmp_path / "other"
        (package / "policies").mkdir(parents=True)
        (package / "policies" / "p.py").write_text("C = 3", encoding="utf-8")
        before = executor_module._code_version_memo
        version = code_version(root=package)
        assert len(version) == 16
        assert executor_module._code_version_memo is before


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_runner_batches_through_executor(self, tmp_path):
        executor = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        runner = ExperimentRunner(**SCALE, workloads=("dedup", "raytrace"),
                                  executor=executor)
        grid = runner.grid(policies=("proposed", "clock-dwf"))
        assert set(grid) == {"dedup", "raytrace"}
        assert executor.stats.simulated == 4
        # the runner's in-memory memo preserves object identity
        again = runner.submit([runner.spec_for("dedup", "proposed")])[0]
        assert again is grid["dedup"].runs["proposed"]
