"""Tests for workload characterisation (Table III statistics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.stats import characterize, page_popularity, write_popularity
from repro.trace.trace import Trace


class TestCharacterize:
    def test_tiny_trace(self, tiny_trace):
        stats = characterize(tiny_trace)
        assert stats.read_requests == 5
        assert stats.write_requests == 3
        assert stats.unique_pages == 4
        assert stats.working_set_kb == 4 * 4096 // 1024
        assert stats.total_requests == 8
        assert stats.accesses_per_page == pytest.approx(2.0)

    def test_empty_trace(self):
        stats = characterize(Trace.empty())
        assert stats.total_requests == 0
        assert stats.unique_pages == 0

    def test_write_ratio(self, tiny_trace):
        stats = characterize(tiny_trace)
        assert stats.write_ratio == pytest.approx(3 / 8)
        assert stats.read_ratio == pytest.approx(5 / 8)

    def test_table_row_format(self, tiny_trace):
        name, wss, reads, writes = characterize(tiny_trace).table_row()
        assert name == "tiny"
        assert "(62%)" in reads or "(63%)" in reads
        assert "(38%)" in writes or "(37%)" in writes

    def test_burst_detection(self):
        trace = Trace([1, 1, 1, 1, 2, 3, 3], [False] * 7)
        assert characterize(trace).max_burst_length == 4

    def test_cold_page_fraction(self):
        # pages 1 and 2 touched repeatedly, 3..6 touched once
        pages = [1, 2, 1, 2, 3, 4, 5, 6]
        stats = characterize(Trace(pages, [False] * 8))
        assert stats.cold_page_fraction == pytest.approx(4 / 6)

    def test_reuse_distance_of_alternating_pages(self):
        # A B A B ... : each reuse has stack distance 1
        pages = [0, 1] * 50
        stats = characterize(Trace(pages, [False] * 100))
        assert stats.median_reuse_distance == pytest.approx(1.0)

    def test_top_decile_share_for_skewed_trace(self):
        # one page dominates accesses over a 20-page universe
        pages = [0] * 900 + list(range(20)) * 5
        rng = np.random.default_rng(0)
        rng.shuffle(pages)
        stats = characterize(Trace(pages, [False] * len(pages)))
        assert stats.top_decile_share > 0.85

    def test_uniform_trace_has_low_skew(self):
        rng = np.random.default_rng(1)
        pages = rng.integers(0, 100, 5000)
        stats = characterize(Trace(pages, [False] * 5000))
        assert stats.top_decile_share < 0.25


class TestPopularity:
    def test_page_popularity_sorted_descending(self, zipf_trace):
        counts = page_popularity(zipf_trace)
        assert counts.shape[0] == zipf_trace.unique_pages
        assert (np.diff(counts) <= 0).all()
        assert counts.sum() == len(zipf_trace)

    def test_write_popularity_counts_only_writes(self, zipf_trace):
        counts = write_popularity(zipf_trace)
        assert counts.sum() == zipf_trace.write_count

    def test_write_popularity_empty_for_read_only(self):
        trace = Trace([1, 2, 3], [False] * 3)
        assert write_popularity(trace).shape[0] == 0
