"""Tests for the trace-driven simulator: determinism, warm-up handling,
cross-layer invariants and result assembly."""

from __future__ import annotations

import pytest

from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import HybridMemorySimulator, simulate
from repro.policies.registry import policy_factory
from repro.workloads.synthetic import zipf_workload


@pytest.fixture
def trace():
    return zipf_workload(pages=200, requests=15_000, seed=11)


@pytest.fixture
def spec(trace):
    return HybridMemorySpec.for_footprint(trace.unique_pages)


class TestSimulatorBasics:
    def test_every_request_is_accounted(self, trace, spec):
        result = simulate(trace, spec, policy_factory("proposed"))
        assert result.accounting.total_requests == len(trace)
        assert result.accounting.read_requests == trace.read_count
        assert result.accounting.write_requests == trace.write_count
        result.accounting.validate()

    def test_determinism(self, trace, spec):
        first = simulate(trace, spec, policy_factory("proposed"))
        second = simulate(trace, spec, policy_factory("proposed"))
        assert first.accounting == second.accounting
        assert first.amat == second.amat
        assert first.appr == second.appr

    def test_validate_every_catches_nothing_on_healthy_run(self, trace, spec):
        result = simulate(trace, spec, policy_factory("clock-dwf"),
                          validate_every=500)
        assert result.accounting.total_requests == len(trace)

    def test_result_fields(self, trace, spec):
        result = simulate(trace, spec, policy_factory("proposed"))
        assert result.workload == trace.name
        assert result.policy == "proposed"
        assert result.amat > 0
        assert result.appr > 0
        assert 0 <= result.hit_ratio <= 1
        summary = result.summary()
        assert summary["requests"] == len(trace)
        assert summary["amat_ns"] == pytest.approx(result.amat * 1e9)

    def test_mid_run_result(self, trace, spec):
        simulator = HybridMemorySimulator(spec, policy_factory("proposed"))
        simulator.run(trace[:100])
        partial = simulator.result()
        assert partial.accounting.total_requests == 100


class TestWarmup:
    def test_warmup_excludes_cold_faults(self, trace, spec):
        cold = simulate(trace, spec, policy_factory("proposed"))
        warm = simulate(trace, spec, policy_factory("proposed"),
                        warmup_fraction=0.3)
        assert warm.accounting.total_requests < \
            cold.accounting.total_requests
        assert warm.accounting.p_miss < cold.accounting.p_miss

    def test_warmup_fraction_validation(self, trace, spec):
        with pytest.raises(ValueError):
            simulate(trace, spec, policy_factory("proposed"),
                     warmup_fraction=1.0)
        with pytest.raises(ValueError):
            simulate(trace, spec, policy_factory("proposed"),
                     warmup_fraction=-0.1)

    def test_warm_state_survives_reset(self, trace, spec):
        """After warm-up the policy keeps its queues: the measured
        segment should see far fewer faults than a cold run over the
        same segment."""
        boundary = int(len(trace) * 0.5)
        warm = simulate(trace, spec, policy_factory("proposed"),
                        warmup_fraction=0.5)
        cold_segment = simulate(trace[boundary:], spec,
                                policy_factory("proposed"))
        assert warm.accounting.page_faults < \
            cold_segment.accounting.page_faults


class TestGap:
    def test_gap_raises_static_share(self, trace, spec):
        without = simulate(trace, spec, policy_factory("proposed"))
        with_gap = simulate(trace, spec, policy_factory("proposed"),
                            inter_request_gap=1e-6)
        assert with_gap.power.static > without.power.static
        assert with_gap.power.dynamic_hit == pytest.approx(
            without.power.dynamic_hit
        )
        # AMAT is unaffected by compute gaps
        assert with_gap.amat == pytest.approx(without.amat)


class TestCrossPolicyInvariants:
    @pytest.mark.parametrize("policy_name", [
        "proposed", "adaptive", "clock-dwf", "eager-migration",
        "never-migrate", "static-partition",
    ])
    def test_full_validation_run(self, trace, spec, policy_name):
        result = simulate(trace, spec, policy_factory(policy_name),
                          validate_every=777)
        acct = result.accounting
        acct.validate()
        # residency never exceeds capacity (checked indirectly: fills
        # minus evictions equals resident pages <= total frames)
        assert acct.page_faults - acct.evictions_to_disk <= \
            spec.total_pages

    def test_hybrid_static_power_is_fraction_of_dram_only(self, spec):
        # NVM static is 10x cheaper: a 90%-NVM hybrid must burn much
        # less background power per unit time (the ~80% static saving
        # the paper reports for every hybrid configuration)
        assert spec.static_power < spec.as_dram_only().static_power * 0.3
        assert spec.as_nvm_only().static_power == pytest.approx(
            spec.as_dram_only().static_power * 0.1
        )
