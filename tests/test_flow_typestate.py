"""Tests for the page life-cycle typestate rules (R008/R009)."""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.analysis import lint_paths


def _lint_snippet(tmp_path: Path, source: str, select=None):
    (tmp_path / "mod.py").write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path], select=select)


# ----------------------------------------------------------------------
# R008 — the page life-cycle protocol
# ----------------------------------------------------------------------
class TestR008:
    def test_double_eviction_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _make_room(self, victim):
                    self.mm.evict_to_disk(victim)
                    self.mm.evict_to_disk(victim)
        """, select=["R008"])
        assert len(findings) == 1
        assert "evicts `victim` twice" in findings[0].message
        assert findings[0].line == 7

    def test_migrate_after_evict_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _demote(self, victim):
                    self.mm.evict_to_disk(victim)
                    self.mm.migrate(victim, DEST)
        """, select=["R008"])
        assert len(findings) == 1
        assert "migrates `victim` after it was evicted" in findings[0].message

    def test_serve_hit_after_evict_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)
                    self.mm.evict_to_disk(page)
                    self.mm.serve_hit(page, is_write)
        """, select=["R008"])
        assert len(findings) == 1
        assert "serves a hit on `page`" in findings[0].message

    def test_fault_fill_while_resident_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)
                    self.mm.serve_hit(page, is_write)
                    self.mm.fault_fill(page, DEST, is_write)
        """, select=["R008"])
        assert len(findings) == 1
        assert "fault-fills `page` while it is already resident" \
            in findings[0].message

    def test_swap_after_evicting_operand_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _promote(self, page, victim):
                    self.mm.evict_to_disk(victim)
                    self.mm.swap(page, victim)
        """, select=["R008"])
        assert len(findings) == 1
        assert "swaps `victim`" in findings[0].message

    def test_evict_then_fault_fill_is_legal(self, tmp_path):
        # The canonical make-room-then-fill sequence must stay clean.
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)
                    self.mm.evict_to_disk(victim)
                    self.mm.fault_fill(page, DEST, is_write)
        """, select=["R008"])
        assert findings == []

    def test_attribute_chains_are_tracked(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _drop(self):
                    victim = self.lru.pop()
                    self.mm.evict_to_disk(victim.page)
                    self.mm.create_copy(victim.page)
        """, select=["R008"])
        assert len(findings) == 1
        assert "`victim.page`" in findings[0].message

    def test_branch_merge_is_not_definite(self, tmp_path):
        # Evicted on only one path: "maybe absent" is never reported.
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _maybe(self, victim, cond):
                    if cond:
                        self.mm.evict_to_disk(victim)
                    self.mm.migrate(victim, DEST)
        """, select=["R008"])
        assert findings == []

    def test_reassignment_invalidates_tracking(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _churn(self):
                    victim = self.lru.pop()
                    self.mm.evict_to_disk(victim)
                    victim = self.lru.pop()
                    self.mm.evict_to_disk(victim)
        """, select=["R008"])
        assert findings == []

    def test_helper_call_invalidates_tracking(self, tmp_path):
        # Passing the page to a helper may change its state.
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _churn(self, victim):
                    self.mm.evict_to_disk(victim)
                    self._refill(victim)
                    self.mm.serve_hit(victim, False)
        """, select=["R008"])
        assert findings == []

    def test_non_policy_class_exempt(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class Recorder:
                def replay(self, victim):
                    self.mm.evict_to_disk(victim)
                    self.mm.evict_to_disk(victim)
        """, select=["R008"])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _make_room(self, victim):
                    self.mm.evict_to_disk(victim)
                    self.mm.evict_to_disk(victim)  # noqa: R008
        """, select=["R008"])
        assert findings == []


# ----------------------------------------------------------------------
# R009 — record_request before memory traffic
# ----------------------------------------------------------------------
class TestR009:
    def test_traffic_before_recording_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def access(self, page, is_write):
                    self.mm.serve_hit(page, is_write)
                    self.mm.record_request(is_write)
        """, select=["R009"])
        assert len(findings) == 1
        assert "before mm.record_request" in findings[0].message

    def test_recording_first_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)
                    self.mm.serve_hit(page, is_write)
        """, select=["R009"])
        assert findings == []

    def test_helper_may_have_recorded(self, tmp_path):
        # A self-call degrades to "maybe recorded": no definite violation.
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def access(self, page, is_write):
                    self._count(is_write)
                    self.mm.serve_hit(page, is_write)
        """, select=["R009"])
        assert findings == []

    def test_partial_path_is_not_definite(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def access(self, page, is_write):
                    if is_write:
                        self.mm.record_request(is_write)
                    self.mm.serve_hit(page, is_write)
        """, select=["R009"])
        assert findings == []  # R010's job, not R009's

    def test_only_access_is_checked(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class P(HybridMemoryPolicy):
                name = "p"

                def _fill(self, page, is_write):
                    self.mm.fault_fill(page, DEST, is_write)
        """, select=["R009"])
        assert findings == []


def test_repo_tree_is_typestate_clean():
    src_root = Path(repro.__file__).parent
    findings = lint_paths([src_root], select=["R008", "R009"])
    assert findings == [], "\n".join(f.render() for f in findings)
