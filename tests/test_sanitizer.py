"""Tests for the runtime simulation sanitizer (repro.analysis.sanitizer)."""

from __future__ import annotations

import inspect

import pytest

from repro.analysis import lint_paths
from repro.analysis.sanitizer import (
    SANITIZE_ENV,
    SanitizedPolicy,
    SanitizerError,
    SimulationSanitizer,
    sanitize_default,
)
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.mmu.simulator import HybridMemorySimulator, simulate
from repro.policies.base import HybridMemoryPolicy
from repro.policies.registry import policy_factory
from repro.trace.trace import Trace


def _serve(mm: MemoryManager, page: int, is_write: bool) -> None:
    """Minimal but correct NVM-only servicing used by the test policies."""
    if mm.is_resident(page):
        mm.serve_hit(page, is_write)
        return
    if not mm.has_free(PageLocation.NVM):
        victim = next(
            entry.page for entry in mm.page_table.entries()
            if entry.location is PageLocation.NVM
        )
        mm.evict_to_disk(victim)
    mm.fault_fill(page, PageLocation.NVM, is_write)


class CleanPolicy(HybridMemoryPolicy):
    name = "test-clean"

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        _serve(self.mm, page, is_write)


class DoubleRecordPolicy(HybridMemoryPolicy):
    name = "test-double-record"

    def access(self, page: int, is_write: bool) -> None:  # noqa: R010 - violation under test
        self.mm.record_request(is_write)
        self.mm.record_request(is_write)
        _serve(self.mm, page, is_write)


class NoRecordPolicy(HybridMemoryPolicy):
    name = "test-no-record"

    def access(self, page: int, is_write: bool) -> None:  # noqa: R010 - violation under test
        _serve(self.mm, page, is_write)


class MisdirectedPolicy(HybridMemoryPolicy):
    name = "test-misdirected"

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(not is_write)
        _serve(self.mm, page, is_write)


class LeakyFramePolicy(HybridMemoryPolicy):
    """Allocates a DRAM frame no page-table entry ever references."""

    name = "test-leaky-frame"

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if not self.mm.is_resident(page) and self.mm.has_free(
                PageLocation.DRAM):
            self.mm.dram.allocate()
        _serve(self.mm, page, is_write)


class BrokenValidatePolicy(CleanPolicy):
    name = "test-broken-validate"

    def validate(self) -> None:
        raise AssertionError("policy structures out of sync")


@pytest.fixture
def walk_trace() -> Trace:
    """36 requests over 18 distinct pages: forces evictions on 12 NVM frames."""
    pairs = [(page, page % 3 == 0) for page in range(18)]
    pairs += [(page, page % 2 == 0) for page in range(18)]
    return Trace.from_pairs(pairs, name="walk")


# ----------------------------------------------------------------------
# Catching buggy policies through the simulator
# ----------------------------------------------------------------------
class TestBuggyPolicies:
    def test_clean_policy_passes(self, small_spec, walk_trace):
        result = simulate(walk_trace, small_spec, CleanPolicy, sanitize=True)
        assert result.accounting.total_requests == len(walk_trace)

    def test_double_record_caught(self, small_spec, walk_trace):
        with pytest.raises(SanitizerError, match="record_request 2 times"):
            simulate(walk_trace, small_spec, DoubleRecordPolicy,
                     sanitize=True)

    def test_double_record_also_caught_by_lint(self, tmp_path):
        # The same defect must be caught statically: R001 flags the
        # double call without running a single request.
        source = inspect.getsource(DoubleRecordPolicy)
        source = source.replace("  # noqa: R010 - violation under test", "")
        (tmp_path / "double.py").write_text(source, encoding="utf-8")
        findings = lint_paths([tmp_path], select=["R001"])
        assert len(findings) == 1
        assert "more than once" in findings[0].message

    def test_no_record_caught(self, small_spec, walk_trace):
        with pytest.raises(SanitizerError, match="record_request 0 times"):
            simulate(walk_trace, small_spec, NoRecordPolicy, sanitize=True)

    def test_no_record_also_caught_by_lint(self, tmp_path):
        source = inspect.getsource(NoRecordPolicy)
        source = source.replace("  # noqa: R010 - violation under test", "")
        (tmp_path / "norecord.py").write_text(source, encoding="utf-8")
        findings = lint_paths([tmp_path], select=["R001"])
        assert len(findings) == 1
        assert "never calls" in findings[0].message

    def test_misdirected_request_caught(self, small_spec, walk_trace):
        with pytest.raises(SanitizerError, match="direction miscounted"):
            simulate(walk_trace, small_spec, MisdirectedPolicy,
                     sanitize=True)

    def test_leaked_frame_caught_at_end_of_run(self, small_spec, walk_trace):
        # The leak is structural, not per-request: the end-of-run
        # validation (policy.validate -> mm.validate) sees it.  The
        # policy's own validate fires first, so the error surfaces as a
        # plain AssertionError rather than the sanitizer's subclass.
        with pytest.raises(AssertionError, match="frames in use"):
            simulate(walk_trace, small_spec, LeakyFramePolicy,
                     sanitize=True)

    def test_leaked_frame_caught_per_request_when_deep_every_1(
            self, small_spec):
        policy = LeakyFramePolicy(MemoryManager(small_spec))
        wrapped = SanitizedPolicy(policy, deep_every=1)
        with pytest.raises(SanitizerError):
            wrapped.access(0, False)

    def test_broken_validate_enforced_without_sanitizer(
            self, small_spec, walk_trace):
        # End-of-run policy validation is simulator behaviour, not a
        # sanitizer feature: it fires even with sanitize=False.
        with pytest.raises(AssertionError, match="out of sync"):
            simulate(walk_trace, small_spec, BrokenValidatePolicy,
                     sanitize=False)


# ----------------------------------------------------------------------
# Tampered-state detection (driving the wrapper by hand)
# ----------------------------------------------------------------------
class TestTamperedState:
    def _wrapped(self, spec: HybridMemorySpec) -> SanitizedPolicy:
        return SanitizedPolicy(CleanPolicy(MemoryManager(spec)))

    def test_counter_rollback_detected(self, small_spec):
        wrapped = self._wrapped(small_spec)
        wrapped.access(0, False)
        wrapped.access(1, False)
        # Roll back by more than the next request re-adds, so the
        # counter is seen going backwards (a rollback of exactly one
        # request surfaces as the missing-record_request failure).
        wrapped.mm.accounting.read_requests -= 2
        with pytest.raises(SanitizerError, match="decreased"):
            wrapped.access(2, False)

    def test_wear_rollback_detected(self, small_spec):
        wrapped = self._wrapped(small_spec)
        wrapped.access(0, True)
        wrapped.access(0, True)  # NVM write hit -> request_writes > 0
        assert wrapped.mm.wear.request_writes > 0
        wrapped.mm.wear.request_writes = 0
        with pytest.raises(SanitizerError, match="wear"):
            wrapped.access(1, False)

    def test_phantom_migration_detected(self, small_spec):
        # An accounting-only migration with no matching DMA transfer.
        wrapped = self._wrapped(small_spec)
        wrapped.access(0, False)
        wrapped.mm.accounting.migrations_to_dram += 1
        with pytest.raises(SanitizerError, match="DMA transfer log"):
            wrapped.access(1, False)

    def test_resident_page_in_disk_location(self, small_spec):
        wrapped = self._wrapped(small_spec)
        wrapped.access(0, False)
        wrapped.mm.page_table.lookup(0).location = PageLocation.DISK
        with pytest.raises(SanitizerError):
            wrapped.sanitizer.check_deep(include_policy=False)

    def test_unallocated_frame_reference(self, small_spec):
        wrapped = self._wrapped(small_spec)
        wrapped.access(0, False)
        entry = wrapped.mm.page_table.lookup(0)
        wrapped.mm.nvm.release(entry.frame)
        with pytest.raises(SanitizerError):
            wrapped.sanitizer.check_deep(include_policy=False)

    def test_copy_on_dram_resident_page(self, small_spec):
        mm = MemoryManager(small_spec)
        sanitizer = SimulationSanitizer(mm)
        mm.record_request(False)
        mm.fault_fill(0, PageLocation.DRAM, False)
        entry = mm.page_table.lookup(0)
        entry.copy_frame = mm.dram.allocate()
        with pytest.raises(SanitizerError, match="two tiers"):
            sanitizer.check_deep()

    def test_per_page_wear_rollback(self, small_spec):
        mm = MemoryManager(small_spec)
        sanitizer = SimulationSanitizer(mm)
        mm.record_request(True)
        mm.fault_fill(0, PageLocation.NVM, True)
        mm.record_request(True)
        mm.serve_hit(0, True)
        sanitizer.check_deep()
        mm.wear.page_writes[0] -= 1
        with pytest.raises(SanitizerError, match="per-page wear"):
            sanitizer.check_deep()


# ----------------------------------------------------------------------
# Warm-up epochs
# ----------------------------------------------------------------------
class TestWarmupEpochs:
    def test_warmup_reset_does_not_false_positive(
            self, small_spec, walk_trace):
        # reset_accounting() swaps the counters mid-run while the DMA
        # log keeps counting; the sanitizer must re-align its baselines.
        result = simulate(walk_trace, small_spec, CleanPolicy,
                          warmup_fraction=0.5, sanitize=True)
        assert result.accounting.total_requests == len(walk_trace) - 18

    def test_registry_policy_with_warmup(self, small_spec, zipf_trace):
        result = simulate(zipf_trace, small_spec,
                          policy_factory("proposed"),
                          warmup_fraction=0.3, sanitize=True)
        assert result.accounting.total_requests > 0

    def test_double_record_caught_after_warmup_reset(
            self, small_spec, walk_trace):
        with pytest.raises(SanitizerError):
            simulate(walk_trace, small_spec, DoubleRecordPolicy,
                     warmup_fraction=0.5, sanitize=True)


# ----------------------------------------------------------------------
# Wiring: env default, simulator flag, wrapper transparency
# ----------------------------------------------------------------------
class TestWiring:
    @pytest.mark.parametrize("value, expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False), ("no", False),
    ])
    def test_sanitize_default_env(self, monkeypatch, value, expected):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitize_default() is expected

    def test_simulator_env_default_wraps(self, small_spec, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        simulator = HybridMemorySimulator(small_spec, CleanPolicy)
        assert isinstance(simulator.policy, SanitizedPolicy)

    def test_simulator_env_default_off(self, small_spec, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "0")
        simulator = HybridMemorySimulator(small_spec, CleanPolicy)
        assert isinstance(simulator.policy, CleanPolicy)

    def test_explicit_false_overrides_env(self, small_spec, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        simulator = HybridMemorySimulator(small_spec, CleanPolicy,
                                          sanitize=False)
        assert isinstance(simulator.policy, CleanPolicy)

    def test_wrapper_delegates_attributes(self, small_spec):
        policy = CleanPolicy(MemoryManager(small_spec))
        policy.custom_marker = 41
        wrapped = SanitizedPolicy(policy)
        assert wrapped.custom_marker == 41
        assert wrapped.name == "test-clean"
        assert wrapped.mm is policy.mm
        assert "sanitized" in repr(wrapped)

    def test_result_identical_with_and_without_sanitizer(
            self, small_spec, walk_trace):
        plain = simulate(walk_trace, small_spec, CleanPolicy,
                         sanitize=False)
        checked = simulate(walk_trace, small_spec, CleanPolicy,
                           sanitize=True)
        assert plain.summary() == checked.summary()

    def test_deep_every_must_be_positive(self, small_spec):
        with pytest.raises(ValueError):
            SimulationSanitizer(MemoryManager(small_spec), deep_every=0)
