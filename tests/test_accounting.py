"""Tests for event accounting and Table I probability identities."""

from __future__ import annotations

import pytest

from repro.memory.accounting import AccessAccounting, WearAccounting


def _sample() -> AccessAccounting:
    acct = AccessAccounting(
        read_requests=70,
        write_requests=30,
        dram_read_hits=40,
        dram_write_hits=20,
        nvm_read_hits=25,
        nvm_write_hits=8,
        read_faults=5,
        write_faults=2,
        faults_filled_dram=6,
        faults_filled_nvm=1,
        migrations_to_dram=3,
        migrations_to_nvm=4,
        clean_evictions=2,
        dirty_evictions=1,
    )
    acct.validate()
    return acct


class TestTotals:
    def test_totals(self):
        acct = _sample()
        assert acct.total_requests == 100
        assert acct.hits == 93
        assert acct.page_faults == 7
        assert acct.migrations == 7
        assert acct.evictions_to_disk == 3

    def test_probabilities_partition_unity(self):
        acct = _sample()
        assert acct.p_hit_dram + acct.p_hit_nvm + acct.p_miss == \
            pytest.approx(1.0)

    def test_within_module_shares(self):
        acct = _sample()
        assert acct.p_read_dram + acct.p_write_dram == pytest.approx(1.0)
        assert acct.p_read_nvm + acct.p_write_nvm == pytest.approx(1.0)
        assert acct.p_read_dram == pytest.approx(40 / 60)
        assert acct.p_write_nvm == pytest.approx(8 / 33)

    def test_fault_fill_shares(self):
        acct = _sample()
        assert acct.p_disk_to_dram == pytest.approx(6 / 7)
        assert acct.p_disk_to_nvm == pytest.approx(1 / 7)

    def test_migration_probabilities(self):
        acct = _sample()
        assert acct.p_mig_d == pytest.approx(0.03)
        assert acct.p_mig_n == pytest.approx(0.04)

    def test_empty_accounting_is_all_zero(self):
        acct = AccessAccounting()
        acct.validate()
        assert acct.p_hit_dram == 0.0
        assert acct.p_miss == 0.0
        assert acct.hit_ratio == 0.0


class TestValidation:
    def test_detects_unbalanced_hits(self):
        acct = _sample()
        acct.dram_read_hits += 1
        with pytest.raises(ValueError):
            acct.validate()

    def test_detects_unbalanced_fills(self):
        acct = _sample()
        acct.faults_filled_dram += 1  # fills no longer partition faults
        with pytest.raises(ValueError):
            acct.validate()

    def test_detects_negative_counters(self):
        acct = _sample()
        acct.clean_evictions = -1
        with pytest.raises(ValueError):
            acct.validate()


class TestMergeSnapshot:
    def test_merge_adds_counters(self):
        merged = _sample().merge(_sample())
        assert merged.total_requests == 200
        assert merged.migrations_to_dram == 6
        merged.validate()

    def test_snapshot_round_trip(self):
        snap = _sample().snapshot()
        rebuilt = AccessAccounting(**snap)
        assert rebuilt == _sample()


class TestWearAccounting:
    def test_sources_accumulate(self):
        wear = WearAccounting(page_factor=64)
        wear.record_fault_fill(1)
        wear.record_migration_in(1)
        wear.record_request_write(1)
        wear.record_request_write(2)
        assert wear.fault_fill_writes == 64
        assert wear.migration_writes == 64
        assert wear.request_writes == 2
        assert wear.total_writes == 130
        assert wear.page_writes[1] == 129
        assert wear.page_writes[2] == 1
        assert wear.max_page_writes == 129
        assert wear.touched_pages == 2

    def test_page_factor_respected(self):
        wear = WearAccounting(page_factor=8)
        wear.record_fault_fill(0)
        assert wear.total_writes == 8
