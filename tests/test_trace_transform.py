"""Tests for trace transformations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import transform
from repro.trace.stats import characterize
from repro.trace.trace import Trace


class TestDensify:
    def test_first_touch_numbering(self):
        trace = Trace([100, 7, 100, 50], [False] * 4)
        dense = transform.densify(trace)
        assert list(dense.pages) == [0, 1, 0, 2]

    def test_preserves_statistics(self, zipf_trace):
        dense = transform.densify(zipf_trace)
        assert dense.unique_pages == zipf_trace.unique_pages
        assert dense.write_count == zipf_trace.write_count
        assert int(dense.pages.max()) == dense.unique_pages - 1


class TestSlicing:
    def test_head_and_tail(self, zipf_trace):
        assert len(transform.head(zipf_trace, 10)) == 10
        assert len(transform.tail(zipf_trace, 10)) == 10
        assert transform.tail(zipf_trace, 0).pages.shape[0] == 0

    def test_drop_warmup(self, zipf_trace):
        kept = transform.drop_warmup(zipf_trace, 0.25)
        assert len(kept) == len(zipf_trace) - int(0.25 * len(zipf_trace))
        with pytest.raises(ValueError):
            transform.drop_warmup(zipf_trace, 1.0)

    def test_subsample(self, zipf_trace):
        sampled = transform.subsample(zipf_trace, 10)
        assert len(sampled) == (len(zipf_trace) + 9) // 10
        with pytest.raises(ValueError):
            transform.subsample(zipf_trace, 0)

    def test_split_reassembles(self, zipf_trace):
        parts = transform.split(zipf_trace, 3)
        assert sum(len(part) for part in parts) == len(zipf_trace)
        joined = parts[0]
        for part in parts[1:]:
            joined = joined.concat(part)
        assert joined == zipf_trace


class TestPerturbations:
    def test_flip_writes_changes_only_direction(self, zipf_trace):
        flipped = transform.flip_writes(zipf_trace, 0.9, seed=1)
        assert np.array_equal(flipped.pages, zipf_trace.pages)
        assert flipped.write_ratio == pytest.approx(0.9, abs=0.05)

    def test_flip_writes_validates_ratio(self, zipf_trace):
        with pytest.raises(ValueError):
            transform.flip_writes(zipf_trace, 1.5)

    def test_remap_random_is_bijective(self, zipf_trace):
        remapped = transform.remap_random(zipf_trace, seed=5)
        assert remapped.unique_pages == zipf_trace.unique_pages
        assert np.array_equal(remapped.is_write, zipf_trace.is_write)
        # temporal structure (reuse) is untouched
        original = characterize(zipf_trace)
        renamed = characterize(remapped)
        assert renamed.median_reuse_distance == pytest.approx(
            original.median_reuse_distance
        )
        assert renamed.max_burst_length == original.max_burst_length

    def test_remap_deterministic_per_seed(self, zipf_trace):
        a = transform.remap_random(zipf_trace, seed=5)
        b = transform.remap_random(zipf_trace, seed=5)
        c = transform.remap_random(zipf_trace, seed=6)
        assert a == b
        assert a != c
