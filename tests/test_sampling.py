"""Sampled-engine contract tests (``RunSpec(engine="sampled")``).

The engine's load-bearing promises, pinned:

* **Rate-1 identity** — a 1-in-1 sample replays the full trace on the
  full machine, so the sampled engine must reproduce the exact
  simulator *bit for bit* for every registered policy, while still
  occupying its own digest/cache namespace.
* **Identity & caching** — sampled specs digest distinctly from their
  simulate/analytic twins, pre-sampling digests stay byte-identical
  (warm caches survive), and sampled results round-trip losslessly
  through the on-disk result cache and the worker pool.
* **Validation** — the one-engine-one-meaning rules: ``events=`` only
  on the simulator, ``sampling=`` only on the sampled engine, and
  policies that declare ``sampling_safe=False`` are refused.
* **Membership consistency** — the unique-level fast path
  (:func:`page_membership`) selects exactly the pages the request-level
  :func:`sample_mask` does, for every per-page scheme.
* **Rate adaptation** — the ``min_faults`` floor escalates sparse-fault
  samples toward exact replay instead of reporting noise.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.executor import ParallelExecutor, ResultCache
from repro.experiments.runspec import RunSpec
from repro.memory.specs import HybridMemorySpec
from repro.policies.registry import available_policies
from repro.sampling import MetricInterval, SamplingConfig, SamplingSummary
from repro.sampling.engine import SamplingError, sample_spec
from repro.trace.sampling import (
    SAMPLING_SCHEMES,
    page_membership,
    sample_mask,
)
from repro.workloads.mix import mix_workloads
from repro.workloads.parsec import WorkloadInstance
from repro.workloads.synthetic import zipf_workload

# ----------------------------------------------------------------------
# Fixtures: one rendered instance per module, reused by every policy
# ----------------------------------------------------------------------
_ZIPF_PAGES = 400


@pytest.fixture(scope="module")
def zipf_instance() -> WorkloadInstance:
    trace = zipf_workload(pages=_ZIPF_PAGES, requests=25_000, alpha=1.2,
                          write_ratio=0.3, seed=7)
    return WorkloadInstance(
        profile=None,
        trace=trace,
        spec=HybridMemorySpec.for_footprint(trace.unique_pages),
        warmup_fraction=0.1,
        inter_request_gap=10e-9,
    )


@pytest.fixture(scope="module")
def mix_instance():
    return mix_workloads(("bodytrack", "streamcluster"),
                         request_scale=1 / 2000, footprint_scale=1 / 128)


def _identity_pair(instance, policy: str) -> tuple[dict, dict]:
    """(full simulate, rate-1 sample) result dicts for one policy."""
    sampled = RunSpec.core("zipf-or-mix", policy, engine="sampled",
                           sampling=SamplingConfig(rate=1))
    exact = replace(sampled, engine="simulate", sampling=None)
    full = exact.execute(instance=instance).to_dict()
    samp = sampled.execute(instance=instance).to_dict()
    return full, samp


def _strip_sampling(payload: dict) -> dict:
    trimmed = dict(payload)
    trimmed.pop("sampling", None)
    return trimmed


# ----------------------------------------------------------------------
# Rate-1 identity: the sampled engine degenerates to the exact simulator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", available_policies())
def test_rate_one_is_bit_identical_on_zipf(zipf_instance, policy):
    full, samp = _identity_pair(zipf_instance, policy)
    assert samp["sampling"] is not None
    assert samp["sampling"]["effective_rate"] == 1
    assert _strip_sampling(samp) == _strip_sampling(full)


@pytest.mark.parametrize("policy", available_policies())
def test_rate_one_is_bit_identical_on_parsec_mix(mix_instance, policy):
    full, samp = _identity_pair(mix_instance, policy)
    assert _strip_sampling(samp) == _strip_sampling(full)


@pytest.mark.parametrize("scheme", SAMPLING_SCHEMES)
def test_rate_one_identity_holds_for_every_scheme(zipf_instance, scheme):
    sampled = RunSpec("dedup", engine="sampled",
                      sampling=SamplingConfig(rate=1, scheme=scheme))
    exact = replace(sampled, engine="simulate", sampling=None)
    full = exact.execute(instance=zipf_instance).to_dict()
    samp = sampled.execute(instance=zipf_instance).to_dict()
    assert _strip_sampling(samp) == _strip_sampling(full)


# ----------------------------------------------------------------------
# Identity: digests and cache behaviour
# ----------------------------------------------------------------------
class TestSpecIdentity:
    def test_sampled_specs_digest_distinctly(self):
        base = RunSpec("dedup")
        sampled = RunSpec("dedup", engine="sampled")
        assert sampled.digest() != base.digest()
        assert sampled.digest() != RunSpec("dedup",
                                           engine="analytic").digest()
        assert RunSpec(
            "dedup", engine="sampled", sampling=SamplingConfig(rate=1)
        ).digest() != sampled.digest()

    def test_golden_digests_are_pinned(self):
        # Byte-for-byte digest stability: pre-sampling specs keep their
        # historical addresses (warm caches survive the new engine) and
        # sampled specs keep theirs from this point on.
        assert RunSpec("dedup").digest() == "40b471fba25ce8a941b10cec"
        assert RunSpec("dedup", engine="sampled").digest() \
            == "6dd3cf635518d7a36eace9fc"
        assert RunSpec(
            "dedup", engine="sampled", sampling=SamplingConfig(rate=1)
        ).digest() == "9a95d4f053c20b39c1b82af1"

    def test_sampled_spec_round_trips_through_json(self):
        spec = RunSpec("dedup", engine="sampled",
                       sampling=SamplingConfig(rate=4, scheme="spatial",
                                               salt=3, groups=4))
        back = RunSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.digest() == spec.digest()

    def test_label_names_the_rate(self):
        spec = RunSpec("dedup", engine="sampled",
                       sampling=SamplingConfig(rate=8))
        assert "sampled@1/8" in spec.label()

    def test_sampled_result_round_trips_through_the_cache(self, tmp_path):
        spec = RunSpec("dedup", request_scale=0.005, footprint_scale=1 / 64,
                       engine="sampled",
                       sampling=SamplingConfig(rate=4, groups=4,
                                               min_faults=0))
        result = spec.execute()
        assert isinstance(result.sampling, SamplingSummary)
        cache = ResultCache(tmp_path)
        cache.put(spec, result)
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert isinstance(loaded.sampling, SamplingSummary)
        for interval in loaded.sampling.intervals.values():
            assert isinstance(interval, MetricInterval)

    def test_parallel_merge_matches_serial_exactly(self):
        specs = [
            RunSpec.core(workload, policy, request_scale=0.005,
                         footprint_scale=1 / 64, engine="sampled",
                         sampling=SamplingConfig(rate=4, min_faults=0))
            for workload in ("dedup", "vips")
            for policy in ("proposed", "clock-dwf")
        ]
        serial = ParallelExecutor(jobs=1).submit(specs)
        parallel = ParallelExecutor(jobs=2).submit(specs)
        assert [r.to_dict() for r in serial] \
            == [r.to_dict() for r in parallel]


# ----------------------------------------------------------------------
# Validation: one engine, one meaning
# ----------------------------------------------------------------------
class TestValidation:
    def test_sampled_engine_rejects_event_collection(self):
        from repro.obs.config import EventConfig

        with pytest.raises(ValueError, match="no event stream"):
            RunSpec("dedup", engine="sampled", events=EventConfig(trace=True))

    def test_sampling_config_requires_the_sampled_engine(self):
        with pytest.raises(ValueError, match="engine"):
            RunSpec("dedup", sampling=SamplingConfig(rate=4))
        with pytest.raises(ValueError, match="engine"):
            RunSpec("dedup", engine="analytic",
                    sampling=SamplingConfig(rate=4))

    def test_sampled_specs_always_carry_a_config(self):
        assert RunSpec("dedup", engine="sampled").sampling \
            == SamplingConfig()

    def test_sampling_unsafe_factory_is_refused(self, zipf_instance):
        spec = RunSpec("dedup", engine="sampled",
                       sampling=SamplingConfig(rate=2))

        def factory(manager):  # pragma: no cover - never called
            raise AssertionError("factory must not run")

        factory.sampling_safe = False
        with pytest.raises(SamplingError, match="sampling_safe"):
            sample_spec(spec, instance=zipf_instance, factory=factory)


# ----------------------------------------------------------------------
# Membership: unique-level fast path == request-level reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme",
                         [s for s in SAMPLING_SCHEMES if s != "temporal"])
@pytest.mark.parametrize("rate", [1, 2, 8, 16])
def test_page_membership_matches_sample_mask(zipf_instance, scheme, rate):
    trace = zipf_instance.trace
    pages, inverse, counts = np.unique(trace.pages, return_inverse=True,
                                       return_counts=True)
    member = page_membership(pages, counts, rate, scheme, salt=3)
    mask = sample_mask(trace, rate, scheme, salt=3)
    assert np.array_equal(member[inverse], mask)


def test_page_membership_rejects_temporal(zipf_instance):
    trace = zipf_instance.trace
    pages, counts = np.unique(trace.pages, return_counts=True)
    with pytest.raises(ValueError):
        page_membership(pages, counts, 4, "temporal", salt=0)


# ----------------------------------------------------------------------
# Rate adaptation and uncertainty reporting
# ----------------------------------------------------------------------
class TestAdaptation:
    def test_min_faults_escalates_to_exact_replay(self, zipf_instance):
        spec = RunSpec("dedup", engine="sampled",
                       sampling=SamplingConfig(rate=4, min_faults=10 ** 6))
        result = spec.execute(instance=zipf_instance)
        assert result.sampling.effective_rate == 1
        exact = replace(spec, engine="simulate", sampling=None)
        assert _strip_sampling(result.to_dict()) \
            == _strip_sampling(exact.execute(instance=zipf_instance)
                               .to_dict())

    def test_min_faults_zero_disables_escalation(self, zipf_instance):
        spec = RunSpec("dedup", engine="sampled",
                       sampling=SamplingConfig(rate=4, min_faults=0))
        result = spec.execute(instance=zipf_instance)
        assert result.sampling.effective_rate == 4
        assert 0 < result.sampling.sampled_pages \
            < result.sampling.total_pages

    def test_intervals_bracket_the_estimates(self, zipf_instance):
        spec = RunSpec("dedup", engine="sampled",
                       sampling=SamplingConfig(rate=4, groups=4,
                                               min_faults=0))
        summary = spec.execute(instance=zipf_instance).sampling
        assert set(summary.intervals) == {"amat", "appr", "nvm_writes"}
        for interval in summary.intervals.values():
            assert interval.lo <= interval.estimate <= interval.hi
            assert interval.se >= 0.0

    def test_single_group_disables_intervals(self, zipf_instance):
        spec = RunSpec("dedup", engine="sampled",
                       sampling=SamplingConfig(rate=4, groups=1,
                                               min_faults=0))
        summary = spec.execute(instance=zipf_instance).sampling
        assert summary.intervals == {}
