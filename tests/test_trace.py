"""Tests for trace records, containers and interleaving."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.record import ACCESS_SIZE, PAGE_SIZE, AccessKind, CPUAccess, MemoryAccess
from repro.trace.trace import CPUTrace, Trace, interleave


class TestAccessKind:
    def test_parse_tokens(self):
        assert AccessKind.parse("R") is AccessKind.READ
        assert AccessKind.parse("w") is AccessKind.WRITE
        assert AccessKind.parse("READ") is AccessKind.READ
        assert AccessKind.parse("1") is AccessKind.WRITE

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            AccessKind.parse("x")

    def test_round_trip_token(self):
        for kind in AccessKind:
            assert AccessKind.parse(kind.token) is kind

    def test_from_is_write(self):
        assert AccessKind.from_is_write(True) is AccessKind.WRITE
        assert AccessKind.from_is_write(False) is AccessKind.READ


class TestRecords:
    def test_memory_access_fields(self):
        access = MemoryAccess(42, AccessKind.WRITE)
        assert access.page == 42
        assert access.is_write

    def test_cpu_access_page_and_line(self):
        access = CPUAccess(PAGE_SIZE * 3 + 100, AccessKind.READ, core=2)
        assert access.page() == 3
        assert access.line() == (PAGE_SIZE * 3 + 100) // ACCESS_SIZE
        assert access.core == 2
        assert not access.is_write


class TestTrace:
    def test_construction_and_lengths(self, tiny_trace):
        assert len(tiny_trace) == 8
        assert tiny_trace.read_count == 5
        assert tiny_trace.write_count == 3
        assert tiny_trace.unique_pages == 4
        assert tiny_trace.footprint_bytes == 4 * PAGE_SIZE

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trace([1, 2], [True])

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            Trace([-1], [False])

    def test_indexing_and_slicing(self, tiny_trace):
        assert tiny_trace[0] == MemoryAccess(0, AccessKind.READ)
        assert tiny_trace[1].is_write
        tail = tiny_trace[4:]
        assert isinstance(tail, Trace)
        assert len(tail) == 4
        assert tail[0].page == 3

    def test_iteration_matches_pairs(self, tiny_trace):
        via_iter = [(a.page, a.is_write) for a in tiny_trace]
        via_pairs = list(tiny_trace.iter_pairs())
        assert via_iter == via_pairs

    def test_iter_pairs_yields_native_types(self, tiny_trace):
        # The batched kernels compare and hash these values millions of
        # times; numpy scalars would be both slower and a type leak
        # into policy state (e.g. np.int64 keys in the page table).
        for page, is_write in tiny_trace.iter_pairs():
            assert type(page) is int
            assert type(is_write) is bool

    def test_iter_yields_native_types(self, tiny_trace):
        for access in tiny_trace:
            assert type(access.page) is int
            assert type(access.is_write) is bool

    def test_equality(self, tiny_trace):
        clone = Trace(tiny_trace.pages, tiny_trace.is_write)
        assert clone == tiny_trace
        assert tiny_trace != tiny_trace[1:]

    def test_concat(self, tiny_trace):
        joined = tiny_trace.concat(tiny_trace)
        assert len(joined) == 16
        assert joined[8] == tiny_trace[0]

    def test_concat_page_size_mismatch(self, tiny_trace):
        other = Trace([1], [False], page_size=8192)
        with pytest.raises(ValueError):
            tiny_trace.concat(other)

    def test_arrays_are_read_only(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.pages[0] = 9

    def test_write_ratio(self, tiny_trace):
        assert tiny_trace.write_ratio == pytest.approx(3 / 8)
        assert Trace.empty().write_ratio == 0.0

    def test_renamed(self, tiny_trace):
        assert tiny_trace.renamed("other").name == "other"

    def test_from_accesses(self):
        trace = Trace.from_accesses(
            [MemoryAccess(1, AccessKind.WRITE), (2, AccessKind.READ)]
        )
        assert len(trace) == 2
        assert trace[0].is_write
        assert not trace[1].is_write


class TestCPUTrace:
    def test_round_trip_accesses(self):
        accesses = [
            CPUAccess(0x1000, AccessKind.READ, 0),
            CPUAccess(0x2040, AccessKind.WRITE, 3),
        ]
        trace = CPUTrace.from_accesses(accesses)
        assert list(trace) == accesses
        assert trace.core_count == 4

    def test_to_memory_trace_unfiltered(self):
        trace = CPUTrace([0, PAGE_SIZE, PAGE_SIZE + 8], [False, True, False])
        memory = trace.to_memory_trace()
        assert list(memory.pages) == [0, 1, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CPUTrace([1, 2], [True], [0])


class TestInterleave:
    def test_round_robin_order(self):
        a = Trace([0, 1], [False, False], name="a")
        b = Trace([0], [True], name="b")
        merged = interleave([a, b])
        # round robin: a0, b0, a1 — b offset by a's page span (2)
        assert list(merged.pages) == [0, 2, 1]
        assert list(merged.is_write) == [False, True, False]

    def test_empty_input(self):
        assert len(interleave([])) == 0

    def test_no_page_collisions(self):
        rng = np.random.default_rng(0)
        traces = [
            Trace(rng.integers(0, 50, 100), rng.random(100) < 0.5)
            for _ in range(3)
        ]
        merged = interleave(traces)
        assert len(merged) == 300
        # each source's pages occupy a disjoint range
        assert merged.unique_pages >= max(t.unique_pages for t in traces)


@settings(max_examples=60, deadline=None)
@given(
    pages=st.lists(st.integers(min_value=0, max_value=1000), max_size=60),
    seed=st.integers(min_value=0, max_value=5),
)
def test_trace_roundtrip_properties(pages, seed):
    rng = np.random.default_rng(seed)
    writes = rng.random(len(pages)) < 0.5
    trace = Trace(pages, writes)
    assert len(trace) == len(pages)
    assert trace.read_count + trace.write_count == len(trace)
    assert trace.unique_pages == len(set(pages))
    # slicing then concatenating reconstructs the trace
    if len(trace) >= 2:
        mid = len(trace) // 2
        assert trace[:mid].concat(trace[mid:]) == trace
