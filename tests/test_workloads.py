"""Tests for the synthetic workload framework and PARSEC profiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.stats import characterize
from repro.workloads.base import (
    AlignedWrites,
    BernoulliWrites,
    BurstPattern,
    ComponentPhase,
    LoopPattern,
    MixturePattern,
    PageBiasedWrites,
    Phase,
    PhasedWorkload,
    ReadOnly,
    SequentialScan,
    UniformPattern,
    WorkingSetPattern,
    ZipfPattern,
    solve_cold_ratio,
)
from repro.workloads.parsec import (
    PROFILES,
    WORKLOAD_NAMES,
    parsec_workload,
    scaled_pages,
    scaled_requests,
)


_rng = lambda seed=0: np.random.default_rng(seed)  # noqa: E731


class TestPatterns:
    def test_uniform_stays_in_universe(self):
        pages = UniformPattern(50).generate(_rng(), 1000)
        assert pages.min() >= 0
        assert pages.max() < 50

    def test_zipf_skew_increases_with_alpha(self):
        flat = ZipfPattern(100, alpha=0.5).generate(_rng(1), 20_000)
        steep = ZipfPattern(100, alpha=2.0).generate(_rng(1), 20_000)
        def top_share(pages):
            _, counts = np.unique(pages, return_counts=True)
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()
        assert top_share(steep) > top_share(flat)

    def test_zipf_top_pages_and_traffic_share(self):
        zipf = ZipfPattern(100, alpha=1.0)
        top = zipf.top_pages(10)
        assert top.shape[0] == 10
        assert 0 < zipf.traffic_share(10) < 1
        assert zipf.traffic_share(100) == pytest.approx(1.0)
        assert zipf.traffic_share(0) == 0.0
        # the top pages really are the most accessed
        pages = zipf.generate(_rng(2), 50_000)
        unique, counts = np.unique(pages, return_counts=True)
        observed_top = set(unique[np.argsort(counts)[::-1][:5]])
        assert observed_top <= set(top.tolist()) | set(zipf.top_pages(15))

    def test_sequential_scan_wraps_and_persists(self):
        scan = SequentialScan(5)
        first = scan.generate(_rng(), 7)
        assert first.tolist() == [0, 1, 2, 3, 4, 0, 1]
        second = scan.generate(_rng(), 3)
        assert second.tolist() == [2, 3, 4]

    def test_scan_with_stride(self):
        scan = SequentialScan(10, stride=3)
        assert scan.generate(_rng(), 4).tolist() == [0, 3, 6, 9]

    def test_loop_pattern_sweeps_window(self):
        loop = LoopPattern(100, window=4)
        pages = loop.generate(_rng(), 8)
        assert pages.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_loop_jitter_escapes_window(self):
        loop = LoopPattern(1000, window=4, jitter=0.5)
        pages = loop.generate(_rng(3), 2000)
        assert (pages >= 4).any()

    def test_burst_lengths_in_range(self):
        burst = BurstPattern(50, burst_low=3, burst_high=6)
        pages = burst.generate(_rng(4), 5000)
        runs = np.diff(np.flatnonzero(
            np.concatenate(([True], np.diff(pages) != 0, [True]))
        ))
        # bursts can be clipped at chunk boundaries or merged when the
        # same page repeats, so check the bulk
        assert np.median(runs) >= 3

    def test_working_set_drifts(self):
        pattern = WorkingSetPattern(1000, hot_pages=50,
                                    hot_probability=1.0,
                                    phase_length=100, drift=500)
        first = pattern.generate(_rng(5), 100)
        second = pattern.generate(_rng(5), 100)
        assert first.max() < 50
        assert second.min() >= 500 - 1  # window slid by ~500

    def test_mixture_draws_from_all_components(self):
        mixture = MixturePattern([
            (UniformPattern(10), 0.5),
            (SequentialScan(1000, start=500), 0.5),
        ])
        pages = mixture.generate(_rng(6), 2000)
        assert (pages < 10).any()
        assert (pages >= 500).any()

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            UniformPattern(0)
        with pytest.raises(ValueError):
            ZipfPattern(10, alpha=-1)
        with pytest.raises(ValueError):
            SequentialScan(10, stride=0)
        with pytest.raises(ValueError):
            LoopPattern(10, jitter=2.0)
        with pytest.raises(ValueError):
            BurstPattern(10, burst_low=5, burst_high=2)
        with pytest.raises(ValueError):
            MixturePattern([])


class TestWriteModels:
    def test_bernoulli_ratio(self):
        pages = UniformPattern(100).generate(_rng(7), 50_000)
        flags = BernoulliWrites(0.3).flags(_rng(7), pages)
        assert flags.mean() == pytest.approx(0.3, abs=0.02)

    def test_read_only(self):
        pages = UniformPattern(10).generate(_rng(), 100)
        assert not ReadOnly().flags(_rng(), pages).any()

    def test_page_biased_concentration(self):
        pages = UniformPattern(1000).generate(_rng(8), 50_000)
        model = PageBiasedWrites(0.1, hot_write_ratio=0.9,
                                 cold_write_ratio=0.0)
        flags = model.flags(_rng(8), pages)
        written_pages = set(pages[flags].tolist())
        # writes land on ~10% of pages only
        assert len(written_pages) < 250

    def test_aligned_writes_target_members(self):
        member_pages = np.arange(5)
        model = AlignedWrites(member_pages, hot_write_ratio=1.0,
                              cold_write_ratio=0.0)
        pages = UniformPattern(100).generate(_rng(9), 10_000)
        flags = model.flags(_rng(9), pages)
        assert set(pages[flags].tolist()) <= set(range(5))
        assert flags[pages < 5].all()

    def test_solve_cold_ratio(self):
        cold = solve_cold_ratio(0.3, member_traffic_share=0.5,
                                hot_write_ratio=0.5)
        # 0.5*0.5 + 0.5*cold = 0.3 -> cold = 0.1
        assert cold == pytest.approx(0.1)
        assert solve_cold_ratio(0.1, 0.5, 0.9) == 0.0  # clamped
        assert solve_cold_ratio(0.9, 1.0, 0.5) == 0.0  # no remainder


class TestPhasedWorkload:
    def test_lengths_and_determinism(self):
        workload = PhasedWorkload("demo", [
            Phase(SequentialScan(20), ReadOnly(), 20),
            Phase(UniformPattern(20), BernoulliWrites(0.5), 100),
        ])
        a = workload.build(seed=1)
        b = workload.build(seed=1)
        c = workload.build(seed=2)
        assert len(a) == 120
        assert a == b
        assert a != c
        assert workload.total_requests == 120

    def test_component_phase_per_component_writes(self):
        class _HighPages(UniformPattern):
            """Uniform over [500, 500 + pages): disjoint from comp 1."""

            def generate(self, rng, count):
                return super().generate(rng, count) + 500

        phase = ComponentPhase([
            (UniformPattern(10), 1.0, ReadOnly()),
            (_HighPages(100), 1.0, BernoulliWrites(1.0)),
        ], 4000)
        workload = PhasedWorkload("split", [phase])
        trace = workload.build(seed=3)
        pages = np.asarray(trace.pages)
        writes = np.asarray(trace.is_write)
        # component 1 pages (< 10) are never written; component 2
        # pages (>= 500) are always written
        assert not writes[pages < 10].any()
        assert writes[pages >= 500].all()
        assert (pages >= 500).any() and (pages < 10).any()

    def test_empty_phase_list_rejected(self):
        with pytest.raises(ValueError):
            PhasedWorkload("empty", [])


class TestParsecProfiles:
    def test_all_twelve_present(self):
        assert len(WORKLOAD_NAMES) == 12
        assert set(PROFILES) == set(WORKLOAD_NAMES)

    def test_table_iii_constants(self):
        # spot-check rows against the paper's Table III
        blackscholes = PROFILES["blackscholes"]
        assert blackscholes.working_set_kb == 5_188
        assert blackscholes.read_requests == 26_242
        assert blackscholes.write_requests == 0
        streamcluster = PROFILES["streamcluster"]
        assert streamcluster.read_requests == 168_666_464
        assert streamcluster.write_ratio < 0.01
        dedup = PROFILES["dedup"]
        assert dedup.working_set_kb == 512_460

    def test_scaling_helpers(self):
        dedup = PROFILES["dedup"]
        assert scaled_pages(dedup, 1.0) == dedup.footprint_pages
        assert scaled_pages(dedup, 1 / 64) < dedup.footprint_pages
        assert scaled_requests(dedup, 1e-9) == 20_000  # clamped at min
        assert scaled_requests(PROFILES["streamcluster"], 1.0) == 250_000

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            parsec_workload("nonexistent")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_rendered_workload_matches_profile(self, name):
        instance = parsec_workload(name, request_scale=1 / 2000,
                                   footprint_scale=1 / 128)
        profile = PROFILES[name]
        stats = characterize(instance.trace)
        # write ratio within 8 percentage points of Table III
        assert abs(stats.write_ratio - profile.write_ratio) < 0.08
        # footprint matches the scaled page budget
        assert stats.unique_pages == pytest.approx(
            scaled_pages(profile, 1 / 128), rel=0.05
        )
        # machine sizing follows the paper's rule
        spec = instance.spec
        assert spec.total_pages == pytest.approx(
            0.75 * stats.unique_pages, rel=0.1
        )
        assert spec.dram_pages == pytest.approx(
            0.1 * spec.total_pages, rel=0.15
        )
        assert 0 < instance.warmup_fraction < 1
        assert instance.inter_request_gap >= 0

    def test_determinism_per_seed(self):
        a = parsec_workload("ferret", seed=1)
        b = parsec_workload("ferret", seed=1)
        c = parsec_workload("ferret", seed=2)
        assert a.trace == b.trace
        assert a.trace != c.trace

    def test_static_compensation_restores_paper_capacity(self):
        instance = parsec_workload("dedup", footprint_scale=1 / 64)
        profile = PROFILES["dedup"]
        # modelled static power ~= paper-scale capacity * Table IV rates:
        # 10% of the memory is DRAM at 1 J/(GiB s), 90% NVM at 0.1
        paper_bytes = 0.75 * profile.footprint_pages * 4096
        expected = (0.1 * 1.0 + 0.9 * 0.1) * paper_bytes / (1 << 30)
        assert instance.spec.static_power == pytest.approx(expected,
                                                           rel=0.2)


@settings(max_examples=40, deadline=None)
@given(
    pages=st.integers(min_value=2, max_value=300),
    requests=st.integers(min_value=0, max_value=2000),
    alpha=st.floats(min_value=0.0, max_value=3.0),
    seed=st.integers(min_value=0, max_value=10),
)
def test_zipf_pattern_properties(pages, requests, alpha, seed):
    pattern = ZipfPattern(pages, alpha=alpha, permute_seed=seed)
    generated = pattern.generate(np.random.default_rng(seed), requests)
    assert generated.shape[0] == requests
    if requests:
        assert generated.min() >= 0
        assert generated.max() < pages
