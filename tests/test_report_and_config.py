"""Coverage for the report renderer and the migration configuration."""

from __future__ import annotations

import pytest

from repro.core.config import (
    DEFAULT_CONFIG,
    EAGER_CONFIG,
    RELUCTANT_CONFIG,
    MigrationConfig,
)
from repro.experiments.report import render_figure, render_table
from repro.experiments.results import FigureData


class TestMigrationConfig:
    def test_defaults_follow_write_priority(self):
        # bigger write window (counters survive longer) and lower write
        # threshold (earlier promotion): writes get priority
        assert DEFAULT_CONFIG.write_window_fraction > \
            DEFAULT_CONFIG.read_window_fraction
        assert DEFAULT_CONFIG.write_threshold < \
            DEFAULT_CONFIG.read_threshold

    def test_window_pages(self):
        config = MigrationConfig(read_window_fraction=0.1,
                                 write_window_fraction=0.2)
        assert config.read_window_pages(100) == 10
        assert config.write_window_pages(100) == 20
        # non-zero fractions floor at one page
        assert config.read_window_pages(3) == 1
        assert MigrationConfig(read_window_fraction=0.0) \
            .read_window_pages(100) == 0
        assert config.read_window_pages(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationConfig(read_window_fraction=1.5)
        with pytest.raises(ValueError):
            MigrationConfig(write_threshold=-1)

    def test_housekeeping_overhead_matches_paper(self):
        # the paper: "about 0.04% for 4KB data pages"
        overhead = DEFAULT_CONFIG.housekeeping_overhead()
        assert overhead == pytest.approx(0.001, abs=0.001)
        assert overhead < 0.002

    def test_named_presets(self):
        assert EAGER_CONFIG.read_threshold <= 1
        assert RELUCTANT_CONFIG.read_threshold > \
            DEFAULT_CONFIG.read_threshold


class TestRenderTable:
    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text
        assert len(text.splitlines()) == 2

    def test_column_alignment(self):
        text = render_table(["x", "y"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        # separator width matches the widest cells
        assert len(lines[1]) == len(lines[2])

    def test_non_string_cells(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestRenderFigure:
    def test_empty_figure(self):
        figure = FigureData("f", "t", "y", ("A",))
        text = render_figure(figure)
        assert "f: t" in text

    def test_zero_valued_bars(self):
        figure = FigureData("f", "t", "y", ("A", "B"))
        figure.add_bar("w", A=0.0, B=0.0)
        text = render_figure(figure)
        assert "w" in text
        assert "0.000" in text

    def test_segments_scale_to_max(self):
        figure = FigureData("f", "t", "y", ("A",))
        figure.add_bar("small", A=1.0)
        figure.add_bar("big", A=10.0)
        text = render_figure(figure, bar_width=10)
        lines = [line for line in text.splitlines() if "|" in line]
        small_line = next(line for line in lines if "small" in line)
        big_line = next(line for line in lines if "big" in line)
        assert big_line.count("#") == 10
        assert small_line.count("#") == 1

    def test_grouped_labels(self):
        figure = FigureData("f", "t", "y", ("A",))
        figure.add_bar("w", group="left", A=1.0)
        text = render_figure(figure)
        assert "w/left" in text
