"""Tests for the custom lint pass (repro.analysis rules R002-R012)."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import DEFAULT_RULES, lint_paths
from repro.analysis.rules import analyze_record_request_paths
from repro.cli import main


def _lint_snippet(tmp_path: Path, source: str,
                  filename: str = "mod.py", select=None):
    """Write ``source`` into ``tmp_path`` and lint just that tree."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path], select=select)


def _access_counts(source: str) -> set[int]:
    """Path analysis of the single function in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return analyze_record_request_paths(func)


# ----------------------------------------------------------------------
# R010 — the record_request path analysis (fixpoint engine)
# ----------------------------------------------------------------------
class TestPathAnalysis:
    def test_straight_line_once(self):
        assert _access_counts("""
            def access(self, page, is_write):
                self.mm.record_request(is_write)
                self.mm.serve_hit(page, is_write)
        """) == {1}

    def test_never_called(self):
        assert _access_counts("""
            def access(self, page, is_write):
                self.mm.serve_hit(page, is_write)
        """) == {0}

    def test_double_call(self):
        assert _access_counts("""
            def access(self, page, is_write):
                self.mm.record_request(is_write)
                self.mm.record_request(is_write)
        """) == {2}

    def test_branch_skips(self):
        assert _access_counts("""
            def access(self, page, is_write):
                if is_write:
                    self.mm.record_request(is_write)
        """) == {0, 1}

    def test_branch_both_arms_ok(self):
        assert _access_counts("""
            def access(self, page, is_write):
                if is_write:
                    self.mm.record_request(True)
                else:
                    self.mm.record_request(False)
                return None
        """) == {1}

    def test_early_return_after_recording(self):
        assert _access_counts("""
            def access(self, page, is_write):
                self.mm.record_request(is_write)
                if self.mm.is_resident(page):
                    self.mm.serve_hit(page, is_write)
                    return
                self.mm.fault_fill(page, DEST, is_write)
        """) == {1}

    def test_raise_paths_are_exempt(self):
        # Error paths need not charge the request.
        assert _access_counts("""
            def access(self, page, is_write):
                if page < 0:
                    raise ValueError("bad page")
                self.mm.record_request(is_write)
        """) == {1}

    def test_call_inside_loop_may_repeat(self):
        counts = _access_counts("""
            def access(self, page, is_write):
                for _ in range(2):
                    self.mm.record_request(is_write)
        """)
        assert 0 in counts and 2 in counts  # zero or many iterations

    def test_call_in_try_with_returning_handler(self):
        # The handler may run before the body's call happened.
        counts = _access_counts("""
            def access(self, page, is_write):
                try:
                    self.mm.record_request(is_write)
                    self.mm.serve_hit(page, is_write)
                except KeyError:
                    return
        """)
        assert counts == {0, 1}

    def test_thirty_branch_policy_is_tractable(self):
        # The PR 1 path enumerator walked every path combination; the
        # fixpoint engine must settle in one worklist pass regardless
        # of branch count.
        lines = ["def access(self, page, is_write):",
                 "    self.mm.record_request(is_write)"]
        for i in range(30):
            lines.append(f"    if page % {i + 2}:")
            lines.append("        self.mm.serve_hit(page, is_write)")
        assert _access_counts("\n".join(lines)) == {1}

    def test_thirty_branch_skip_detected(self):
        lines = ["def access(self, page, is_write):"]
        for i in range(30):
            lines.append(f"    if page % {i + 2}:")
            lines.append("        self.mm.serve_hit(page, is_write)")
        lines.append("    if is_write:")
        lines.append("        self.mm.record_request(is_write)")
        assert _access_counts("\n".join(lines)) == {0, 1}

    def test_nested_function_does_not_count(self):
        assert _access_counts("""
            def access(self, page, is_write):
                def later():
                    self.mm.record_request(is_write)
                self.mm.record_request(is_write)
        """) == {1}


class TestR010:
    def test_clean_policy_passes(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class GoodPolicy(HybridMemoryPolicy):
                name = "good"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)
                    if self.mm.is_resident(page):
                        self.mm.serve_hit(page, is_write)
        """, select=["R010"])
        assert findings == []

    def test_missing_call_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class BadPolicy(HybridMemoryPolicy):
                name = "bad"

                def access(self, page, is_write):
                    self.mm.serve_hit(page, is_write)
        """, select=["R010"])
        assert len(findings) == 1
        assert findings[0].rule_id == "R010"
        assert "never calls" in findings[0].message

    def test_conditional_skip_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class SometimesPolicy(HybridMemoryPolicy):
                name = "sometimes"

                def access(self, page, is_write):
                    if is_write:
                        self.mm.record_request(is_write)
                    self.mm.serve_hit(page, is_write)
        """, select=["R010"])
        assert len(findings) == 1
        assert "skips" in findings[0].message

    def test_double_call_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class EagerPolicy(HybridMemoryPolicy):
                name = "eager"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)
                    self.mm.record_request(is_write)
        """, select=["R010"])
        assert len(findings) == 1
        assert "more than once" in findings[0].message

    def test_abstract_class_exempt(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import abc

            class PartialPolicy(HybridMemoryPolicy):
                @abc.abstractmethod
                def access(self, page, is_write):
                    ...
        """, select=["R010"])
        assert findings == []

    def test_non_policy_class_exempt(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class Replayer:
                def access(self, page, is_write):
                    self.log.append(page)
        """, select=["R010"])
        assert findings == []

    def test_transitive_subclass_checked(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class MiddlePolicy(HybridMemoryPolicy):
                name = "middle"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

            class Leaf(MiddlePolicy):
                name = "leaf"

                def access(self, page, is_write):
                    self.mm.serve_hit(page, is_write)
        """, select=["R010"])
        assert [f.message.split(".")[0] for f in findings] == ["Leaf"]

    def test_noqa_suppresses(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class WaivedPolicy(HybridMemoryPolicy):
                name = "waived"

                def access(self, page, is_write):  # noqa: R010
                    self.mm.serve_hit(page, is_write)
        """, select=["R010"])
        assert findings == []

    def test_noqa_r001_alias_still_suppresses(self, tmp_path):
        # R010 supersedes R001; historical suppressions keep working.
        findings = _lint_snippet(tmp_path, """
            class WaivedPolicy(HybridMemoryPolicy):
                name = "waived"

                def access(self, page, is_write):  # noqa: R001
                    self.mm.serve_hit(page, is_write)
        """, select=["R010"])
        assert findings == []

    def test_select_r001_alias_selects_r010(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class BadPolicy(HybridMemoryPolicy):
                name = "bad"

                def access(self, page, is_write):
                    self.mm.serve_hit(page, is_write)
        """, select=["R001"])
        assert [f.rule_id for f in findings] == ["R010"]


# ----------------------------------------------------------------------
# R012 — the batched-kernel accounting contract
# ----------------------------------------------------------------------
class TestR012:
    def test_deferred_counter_kernel_passes(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class FastPolicy(HybridMemoryPolicy):
                name = "fast"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    record_request = self.mm.record_request
                    read_requests = 0
                    write_requests = 0
                    try:
                        for page, is_write in zip(pages, writes):
                            if page not in self.resident:
                                record_request(is_write)
                                self.fault(page, is_write)
                                continue
                            if is_write:
                                write_requests += 1
                            else:
                                read_requests += 1
                    finally:
                        self.mm.accounting.read_requests += read_requests
                        self.mm.accounting.write_requests += write_requests
        """, select=["R012"])
        assert findings == []

    def test_delegating_loop_passes(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class PlainPolicy(HybridMemoryPolicy):
                name = "plain"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    access = self.access
                    for page, is_write in zip(pages, writes):
                        access(page, is_write)
        """, select=["R012"])
        assert findings == []

    def test_unaccounted_fast_path_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class LeakyPolicy(HybridMemoryPolicy):
                name = "leaky"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    for page, is_write in zip(pages, writes):
                        if page in self.resident:
                            self.serve(page, is_write)
                        else:
                            self.mm.record_request(is_write)
                            self.fault(page, is_write)
        """, select=["R012"])
        assert len(findings) == 1
        assert findings[0].rule_id == "R012"
        assert "skips accounting" in findings[0].message

    def test_never_accounting_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class SilentPolicy(HybridMemoryPolicy):
                name = "silent"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    for page, is_write in zip(pages, writes):
                        self.serve(page, is_write)
        """, select=["R012"])
        assert len(findings) == 1
        assert "never accounts" in findings[0].message

    def test_double_accounting_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class GreedyPolicy(HybridMemoryPolicy):
                name = "greedy"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    read_requests = 0
                    for page, is_write in zip(pages, writes):
                        self.mm.record_request(is_write)
                        read_requests += 1
        """, select=["R012"])
        assert len(findings) == 1
        assert "more than once" in findings[0].message

    def test_raising_iteration_path_exempt(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class StrictPolicy(HybridMemoryPolicy):
                name = "strict"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    for page, is_write in zip(pages, writes):
                        if page < 0:
                            raise ValueError(page)
                        self.mm.record_request(is_write)
                        self.serve(page, is_write)
        """, select=["R012"])
        assert findings == []

    def test_flush_and_prologue_not_constrained(self, tmp_path):
        # Accounting events outside the request loops (the hoisting
        # prologue, the finally flush) must not count toward any path.
        findings = _lint_snippet(tmp_path, """
            class FlushPolicy(HybridMemoryPolicy):
                name = "flush"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    write_requests = 0
                    try:
                        for page, is_write in zip(pages, writes):
                            if is_write:
                                write_requests += 1
                            else:
                                self.mm.record_request(False)
                    finally:
                        self.mm.accounting.write_requests += write_requests
        """, select=["R012"])
        assert findings == []

    def test_non_request_loop_ignored(self, tmp_path):
        # A loop over internal state (not the request parameters) is
        # not a request loop, whatever accounting it performs.
        findings = _lint_snippet(tmp_path, """
            class SweepPolicy(HybridMemoryPolicy):
                name = "sweep"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    for node in self.queue:
                        node.referenced = False
                    access = self.access
                    for page, is_write in zip(pages, writes):
                        access(page, is_write)
        """, select=["R012"])
        assert findings == []

    def test_nested_inner_loop_does_not_double_count(self, tmp_path):
        # An inner cascade loop (evictions) inside the request loop
        # contributes no accounting; the path still counts exactly one.
        findings = _lint_snippet(tmp_path, """
            class CascadePolicy(HybridMemoryPolicy):
                name = "cascade"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    for page, is_write in zip(pages, writes):
                        self.mm.record_request(is_write)
                        while self.full():
                            self.evict()
        """, select=["R012"])
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            class WaivedPolicy(HybridMemoryPolicy):
                name = "waived"

                def access(self, page, is_write):
                    self.mm.record_request(is_write)

                def access_batch(self, pages, writes):
                    for page, is_write in zip(pages, writes):  # noqa: R012
                        self.serve(page, is_write)
        """, select=["R012"])
        assert findings == []

    def test_shipped_kernels_pass(self):
        root = Path(repro.__file__).parent
        findings = lint_paths(
            [root / "core" / "migration.py",
             root / "policies" / "single_tier.py",
             root / "policies" / "clock_dwf.py",
             root / "policies" / "base.py"],
            select=["R012"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# R002 — determinism
# ----------------------------------------------------------------------
class TestR002:
    @pytest.mark.parametrize("snippet, fragment", [
        ("import random\n", "process-global"),
        ("from random import choice\n", "process-global"),
        ("import time\nstamp = time.time()\n", "wall-clock"),
        ("from datetime import datetime\nnow = datetime.now()\n",
         "wall-clock"),
        ("import numpy as np\nnp.random.seed(1)\n", "legacy global RNG"),
        ("import numpy as np\nx = np.random.rand(3)\n",
         "legacy global RNG"),
        ("import numpy as np\nrng = np.random.default_rng()\n",
         "without a seed"),
        ("from numpy.random import default_rng\nrng = default_rng()\n",
         "without a seed"),
    ])
    def test_flagged(self, tmp_path, snippet, fragment):
        findings = _lint_snippet(tmp_path, snippet, select=["R002"])
        assert len(findings) == 1, findings
        assert fragment in findings[0].message

    @pytest.mark.parametrize("snippet", [
        "import numpy as np\nrng = np.random.default_rng(7)\n",
        "import numpy as np\nseq = np.random.SeedSequence(3)\n",
        "import time\nelapsed = time.perf_counter()\n",
    ])
    def test_seeded_usage_clean(self, tmp_path, snippet):
        assert _lint_snippet(tmp_path, snippet, select=["R002"]) == []


# ----------------------------------------------------------------------
# R003 — mutable defaults
# ----------------------------------------------------------------------
class TestR003:
    @pytest.mark.parametrize("snippet", [
        "def f(x=[]):\n    return x\n",
        "def f(x={}):\n    return x\n",
        "def f(*, x=set()):\n    return x\n",
        "def f(x=list()):\n    return x\n",
        "g = lambda x=[]: x\n",
    ])
    def test_flagged(self, tmp_path, snippet):
        findings = _lint_snippet(tmp_path, snippet, select=["R003"])
        assert len(findings) == 1
        assert findings[0].rule_id == "R003"

    def test_immutable_defaults_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(x=None, y=(), z=0, name="n"):
                return x, y, z, name
        """, select=["R003"])
        assert findings == []


# ----------------------------------------------------------------------
# R004 — registry coverage
# ----------------------------------------------------------------------
_POLICIES_SOURCE = """
class ListedPolicy(HybridMemoryPolicy):
    name = "listed"

    def access(self, page, is_write):
        self.mm.record_request(is_write)


class OrphanPolicy(HybridMemoryPolicy):
    name = "orphan"

    def access(self, page, is_write):
        self.mm.record_request(is_write)
"""


class TestR004:
    def test_unregistered_policy_flagged(self, tmp_path):
        (tmp_path / "policies.py").write_text(
            textwrap.dedent(_POLICIES_SOURCE), encoding="utf-8")
        (tmp_path / "registry.py").write_text(
            'FACTORIES = {"listed": ListedPolicy}\n', encoding="utf-8")
        findings = lint_paths([tmp_path], select=["R004"])
        assert len(findings) == 1
        assert "OrphanPolicy" in findings[0].message
        assert "'orphan'" in findings[0].message

    def test_registration_by_name_string(self, tmp_path):
        (tmp_path / "policies.py").write_text(
            textwrap.dedent(_POLICIES_SOURCE), encoding="utf-8")
        # Referencing the policies' *name* strings also counts.
        (tmp_path / "registry.py").write_text(
            'KNOWN = ["listed", "orphan"]\n', encoding="utf-8")
        assert lint_paths([tmp_path], select=["R004"]) == []

    def test_without_registry_rule_is_silent(self, tmp_path):
        (tmp_path / "policies.py").write_text(
            textwrap.dedent(_POLICIES_SOURCE), encoding="utf-8")
        assert lint_paths([tmp_path], select=["R004"]) == []


# ----------------------------------------------------------------------
# R005 — magic numbers in the device layer
# ----------------------------------------------------------------------
class TestR005:
    def test_magic_latency_in_memory_layer_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            spec = DeviceSpec(read_latency=5e-08, write_energy=W)
        """, filename="memory/devices_x.py", select=["R005"])
        assert len(findings) == 1
        assert "read_latency" in findings[0].message

    def test_named_constants_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            spec = DeviceSpec(
                read_latency=50 * NANOSECOND,
                write_energy=ZERO_ENERGY,
                access_latency=0,
            )
        """, filename="memory/devices_x.py", select=["R005"])
        assert findings == []

    def test_outside_memory_layer_not_constrained(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            spec = DeviceSpec(read_latency=5e-08)
        """, filename="policies/tuning.py", select=["R005"])
        assert findings == []


class TestR011:
    def test_direct_construction_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            from repro.mmu.simulator import HybridMemorySimulator
            sim = HybridMemorySimulator(spec, factory)
        """, filename="scripts/ad_hoc.py", select=["R011"])
        assert len(findings) == 1
        assert "RunSpec.execute()" in findings[0].message

    def test_attribute_call_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import repro.mmu.simulator as sim_mod
            sim = sim_mod.HybridMemorySimulator(spec, factory)
        """, filename="scripts/ad_hoc.py", select=["R011"])
        assert len(findings) == 1

    def test_engine_packages_exempt(self, tmp_path):
        source = """
            sim = HybridMemorySimulator(spec, factory)
        """
        for filename in ("experiments/runspec_x.py", "mmu/driver.py"):
            assert _lint_snippet(tmp_path, source, filename=filename,
                                 select=["R011"]) == []

    def test_other_calls_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            result = RunSpec("dedup").execute()
        """, filename="scripts/ad_hoc.py", select=["R011"])
        assert findings == []


# ----------------------------------------------------------------------
# Driver behaviour
# ----------------------------------------------------------------------
class TestLintDriver:
    def test_syntax_error_becomes_r000(self, tmp_path):
        findings = _lint_snippet(tmp_path, "def broken(:\n")
        assert [f.rule_id for f in findings] == ["R000"]

    def test_findings_sorted_by_location(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def late(x=[]):
                return x

            def early(y={}):
                return y
        """, select=["R003"])
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_repo_source_tree_is_clean(self):
        src_root = Path(repro.__file__).parent
        findings = lint_paths([src_root])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestLintCli:
    def test_clean_path_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 0

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\n\n\ndef f(x=[]):\n    return x\n",
            encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "R003" in out
        assert "2 findings" in out

    def test_bad_policy_file_fails_lint(self, tmp_path, capsys):
        (tmp_path / "bad_policy.py").write_text(textwrap.dedent("""
            class UncountedPolicy(HybridMemoryPolicy):
                name = "uncounted"

                def access(self, page, is_write):
                    self.mm.serve_hit(page, is_write)
        """), encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 1
        assert "R010" in capsys.readouterr().out

    def test_select_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\n\n\ndef f(x=[]):\n    return x\n",
            encoding="utf-8")
        assert main(["lint", str(tmp_path), "--select", "R003"]) == 1
        out = capsys.readouterr().out
        assert "R003" in out and "R002" not in out

    def test_missing_path_is_usage_error(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope.txt")]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in DEFAULT_RULES:
            assert rule.rule_id in out
