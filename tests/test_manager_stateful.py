"""Stateful fuzzing of the MemoryManager with hypothesis.

A rule-based state machine drives the manager through arbitrary legal
operation sequences (fills, hits, migrations, swaps, copies, evictions,
accounting resets) while an independent model tracks expected placement.
Invariants are re-checked after every step: this is the strongest
correctness net over the layer every policy depends on.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation

DRAM_FRAMES = 3
NVM_FRAMES = 5
PAGES = st.integers(min_value=0, max_value=14)


class ManagerMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        spec = HybridMemorySpec(
            dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
            dram_pages=DRAM_FRAMES, nvm_pages=NVM_FRAMES,
        )
        self.mm = MemoryManager(spec)
        # model: page -> "dram" | "nvm"; set of pages with DRAM copies
        self.placed: dict[int, str] = {}
        self.copies: set[int] = set()

    # ------------------------------------------------------------------
    def _dram_used(self) -> int:
        return sum(1 for loc in self.placed.values() if loc == "dram") \
            + len(self.copies)

    def _nvm_used(self) -> int:
        return sum(1 for loc in self.placed.values() if loc == "nvm")

    # ------------------------------------------------------------------
    @precondition(lambda self: self._dram_used() < DRAM_FRAMES)
    @rule(page=PAGES, is_write=st.booleans())
    def fill_dram(self, page, is_write):
        if page in self.placed:
            return
        self.mm.record_request(is_write)
        self.mm.fault_fill(page, PageLocation.DRAM, is_write)
        self.placed[page] = "dram"

    @precondition(lambda self: self._nvm_used() < NVM_FRAMES)
    @rule(page=PAGES, is_write=st.booleans())
    def fill_nvm(self, page, is_write):
        if page in self.placed:
            return
        self.mm.record_request(is_write)
        self.mm.fault_fill(page, PageLocation.NVM, is_write)
        self.placed[page] = "nvm"

    @rule(page=PAGES, is_write=st.booleans())
    def hit(self, page, is_write):
        if page not in self.placed:
            return
        self.mm.record_request(is_write)
        self.mm.serve_hit(page, is_write)

    @precondition(lambda self: self._dram_used() < DRAM_FRAMES)
    @rule(page=PAGES)
    def promote(self, page):
        if self.placed.get(page) != "nvm" or page in self.copies:
            return
        self.mm.migrate(page, PageLocation.DRAM)
        self.placed[page] = "dram"

    @precondition(lambda self: self._nvm_used() < NVM_FRAMES)
    @rule(page=PAGES)
    def demote(self, page):
        if self.placed.get(page) != "dram":
            return
        self.mm.migrate(page, PageLocation.NVM)
        self.placed[page] = "nvm"

    @rule(page_a=PAGES, page_b=PAGES)
    def swap(self, page_a, page_b):
        if self.placed.get(page_a) != "nvm" or \
                self.placed.get(page_b) != "dram":
            return
        if page_a in self.copies:
            return
        self.mm.swap(page_a, page_b)
        self.placed[page_a] = "dram"
        self.placed[page_b] = "nvm"

    @precondition(lambda self: self._dram_used() < DRAM_FRAMES)
    @rule(page=PAGES)
    def cache(self, page):
        if self.placed.get(page) != "nvm" or page in self.copies:
            return
        self.mm.create_copy(page)
        self.copies.add(page)

    @rule(page=PAGES)
    def drop(self, page):
        if page not in self.copies:
            return
        self.mm.drop_copy(page)
        self.copies.discard(page)

    @rule(page=PAGES)
    def evict(self, page):
        if page not in self.placed or page in self.copies:
            return
        self.mm.evict_to_disk(page)
        del self.placed[page]

    @rule()
    def reset_accounting(self):
        self.mm.reset_accounting()

    # ------------------------------------------------------------------
    @invariant()
    def manager_validates(self):
        self.mm.validate()

    @invariant()
    def placement_matches_model(self):
        for page, where in self.placed.items():
            expected = (PageLocation.DRAM if where == "dram"
                        else PageLocation.NVM)
            assert self.mm.location_of(page) is expected
        assert self.mm.dram.used == self._dram_used()
        assert self.mm.nvm.used == self._nvm_used()

    @invariant()
    def copies_match_model(self):
        cached = {
            entry.page for entry in self.mm.page_table.entries()
            if entry.has_copy
        }
        assert cached == self.copies


TestManagerStateMachine = ManagerMachine.TestCase
TestManagerStateMachine.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)
