"""Unit and property tests for the O(1) LRU queue with position windows."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lru import LRUQueue


# ----------------------------------------------------------------------
# Basic queue behaviour
# ----------------------------------------------------------------------
class TestLRUQueueBasics:
    def test_empty_queue(self):
        queue = LRUQueue()
        assert len(queue) == 0
        assert queue.peek_lru() is None
        assert queue.peek_mru() is None
        assert 5 not in queue

    def test_push_front_orders_mru_first(self):
        queue = LRUQueue()
        for page in (1, 2, 3):
            queue.push_front(page)
        assert queue.pages() == [3, 2, 1]
        assert queue.peek_mru().page == 3
        assert queue.peek_lru().page == 1

    def test_push_duplicate_raises(self):
        queue = LRUQueue()
        queue.push_front(1)
        with pytest.raises(KeyError):
            queue.push_front(1)

    def test_touch_moves_to_front(self):
        queue = LRUQueue()
        for page in (1, 2, 3):
            queue.push_front(page)
        queue.touch(1)
        assert queue.pages() == [1, 3, 2]

    def test_touch_head_is_noop(self):
        queue = LRUQueue()
        for page in (1, 2):
            queue.push_front(page)
        queue.touch(2)
        assert queue.pages() == [2, 1]

    def test_touch_missing_raises(self):
        queue = LRUQueue()
        with pytest.raises(KeyError):
            queue.touch(9)

    def test_pop_lru_removes_tail(self):
        queue = LRUQueue()
        for page in (1, 2, 3):
            queue.push_front(page)
        assert queue.pop_lru().page == 1
        assert queue.pages() == [3, 2]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            LRUQueue().pop_lru()

    def test_remove_middle(self):
        queue = LRUQueue()
        for page in (1, 2, 3):
            queue.push_front(page)
        queue.remove(2)
        assert queue.pages() == [3, 1]
        assert 2 not in queue

    def test_remove_missing_raises(self):
        queue = LRUQueue()
        queue.push_front(1)
        with pytest.raises(KeyError):
            queue.remove(2)

    def test_position_of(self):
        queue = LRUQueue()
        for page in (1, 2, 3):
            queue.push_front(page)
        assert queue.position_of(3) == 0
        assert queue.position_of(1) == 2
        with pytest.raises(KeyError):
            queue.position_of(99)

    def test_single_element_lifecycle(self):
        queue = LRUQueue()
        queue.push_front(7)
        queue.touch(7)
        assert queue.pages() == [7]
        assert queue.pop_lru().page == 7
        assert len(queue) == 0
        queue.check()

    def test_counters_preserved_across_touch(self):
        queue = LRUQueue()
        node = queue.push_front(1)
        queue.push_front(2)
        node.read_counter = 5
        queue.touch(1)
        assert queue.node(1).read_counter == 5


# ----------------------------------------------------------------------
# Position windows
# ----------------------------------------------------------------------
class TestPositionWindow:
    def test_window_covers_small_queue(self):
        queue = LRUQueue()
        window = queue.add_window(3)
        for page in (1, 2):
            queue.push_front(page)
        assert window.contains(queue.node(1))
        assert window.contains(queue.node(2))
        queue.check()

    def test_window_excludes_deep_pages(self):
        queue = LRUQueue()
        window = queue.add_window(2)
        for page in (1, 2, 3, 4):
            queue.push_front(page)
        # MRU order: 4 3 2 1; window = {4, 3}
        assert window.contains(queue.node(4))
        assert window.contains(queue.node(3))
        assert not window.contains(queue.node(2))
        assert not window.contains(queue.node(1))
        assert window.boundary.page == 3
        queue.check()

    def test_exit_callback_fires_on_window_exit(self):
        exits = []
        queue = LRUQueue()
        queue.add_window(2, on_exit=lambda node: exits.append(node.page))
        for page in (1, 2, 3):
            queue.push_front(page)
        # pushing 3 pushes page 1 out of the top-2 window
        assert exits == [1]

    def test_exit_callback_not_fired_for_removed_pages(self):
        exits = []
        queue = LRUQueue()
        queue.add_window(2, on_exit=lambda node: exits.append(node.page))
        for page in (1, 2, 3):
            queue.push_front(page)
        exits.clear()
        queue.remove(3)  # in-window removal: no exit event for page 3
        assert 3 not in exits
        queue.check()

    def test_touch_outside_window_evicts_boundary(self):
        exits = []
        queue = LRUQueue()
        window = queue.add_window(2, on_exit=lambda n: exits.append(n.page))
        for page in (1, 2, 3):
            queue.push_front(page)
        exits.clear()
        queue.touch(1)  # order: 1 3 2 -> page 2 leaves the window
        assert exits == [2]
        assert window.contains(queue.node(1))
        assert window.contains(queue.node(3))
        assert not window.contains(queue.node(2))
        queue.check()

    def test_single_slot_window(self):
        queue = LRUQueue()
        window = queue.add_window(1)
        for page in (1, 2, 3):
            queue.push_front(page)
        assert window.contains(queue.node(3))
        assert not window.contains(queue.node(2))
        queue.touch(1)
        assert window.contains(queue.node(1))
        assert not window.contains(queue.node(3))
        queue.check()

    def test_zero_window_contains_nothing(self):
        queue = LRUQueue()
        window = queue.add_window(0)
        for page in (1, 2, 3):
            queue.push_front(page)
            queue.touch(page)
        assert not any(window.contains(node) for node in queue)
        queue.check()

    def test_two_windows_independent(self):
        queue = LRUQueue()
        small = queue.add_window(1)
        large = queue.add_window(3)
        for page in (1, 2, 3, 4):
            queue.push_front(page)
        assert small.contains(queue.node(4))
        assert not small.contains(queue.node(3))
        assert large.contains(queue.node(2))
        assert not large.contains(queue.node(1))
        queue.check()

    def test_window_must_attach_before_inserts(self):
        queue = LRUQueue()
        queue.push_front(1)
        with pytest.raises(RuntimeError):
            queue.add_window(2)

    def test_removal_pulls_next_page_into_window(self):
        queue = LRUQueue()
        window = queue.add_window(2)
        for page in (1, 2, 3, 4):
            queue.push_front(page)
        queue.remove(4)  # order now 3 2 1; window {3, 2}
        assert window.contains(queue.node(3))
        assert window.contains(queue.node(2))
        assert not window.contains(queue.node(1))
        queue.check()


# ----------------------------------------------------------------------
# Property tests against a naive list model
# ----------------------------------------------------------------------
_OPS = st.lists(
    st.tuples(st.sampled_from(["push", "touch", "remove", "pop"]),
              st.integers(min_value=0, max_value=11)),
    max_size=220,
)


class _NaiveModel:
    """Reference implementation: a plain python list, MRU first."""

    def __init__(self) -> None:
        self.order: list[int] = []

    def push(self, page: int) -> None:
        self.order.insert(0, page)

    def touch(self, page: int) -> None:
        self.order.remove(page)
        self.order.insert(0, page)

    def remove(self, page: int) -> None:
        self.order.remove(page)

    def pop(self) -> int:
        return self.order.pop()

    def window(self, size: int) -> set[int]:
        return set(self.order[:size])


@settings(max_examples=300, deadline=None)
@given(ops=_OPS, window_size=st.integers(min_value=0, max_value=6))
def test_queue_and_window_match_naive_model(ops, window_size):
    queue = LRUQueue()
    queue.add_window(window_size)
    window = queue._windows[0]
    model = _NaiveModel()
    for op, page in ops:
        if op == "push" and page not in model.order:
            queue.push_front(page)
            model.push(page)
        elif op == "touch" and page in model.order:
            queue.touch(page)
            model.touch(page)
        elif op == "remove" and page in model.order:
            queue.remove(page)
            model.remove(page)
        elif op == "pop" and model.order:
            assert queue.pop_lru().page == model.pop()
        # order must match exactly after every operation
        assert queue.pages() == model.order
        # window membership must match the model's top-K
        tracked = {node.page for node in queue if window.contains(node)}
        assert tracked == model.window(window_size)
        queue.check()


@settings(max_examples=120, deadline=None)
@given(ops=_OPS)
def test_counter_reset_semantics(ops):
    """Counters must be zero for every page outside the window.

    This is the induction the migration policy relies on: the exit
    callback resets counters the moment a page leaves the window, so an
    out-of-window page can never carry a stale counter.
    """
    queue = LRUQueue()
    window = queue.add_window(
        3, on_exit=lambda node: setattr(node, "read_counter", 0)
    )
    resident: set[int] = set()
    for op, page in ops:
        if op == "push" and page not in resident:
            queue.push_front(page)
            resident.add(page)
        elif op == "touch" and page in resident:
            queue.touch(page)
            node = queue.node(page)
            if window.contains(node):
                node.read_counter += 1
        elif op == "remove" and page in resident:
            queue.remove(page)
            resident.discard(page)
        elif op == "pop" and resident:
            resident.discard(queue.pop_lru().page)
        for node in queue:
            if not window.contains(node):
                assert node.read_counter == 0, (
                    f"page {node.page} left the window with a live counter"
                )
