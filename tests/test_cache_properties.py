"""Property tests for the set-associative cache and the hierarchy.

The cache is cross-checked against a naive per-set LRU model; the
hierarchy is checked for the conservation laws the trace filter relies
on (every miss produces exactly one memory read, every dirty line
leaves the system exactly once).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import CacheGeometry, SetAssociativeCache
from repro.cpu.hierarchy import CacheHierarchy

_ACCESSES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40), st.booleans()),
    max_size=300,
)


class _NaiveCache:
    """Reference: per-set ordered dicts, LRU order explicit."""

    def __init__(self, sets: int, ways: int) -> None:
        self.sets = [OrderedDict() for _ in range(sets)]
        self.ways = ways

    def access(self, line: int, is_write: bool):
        cache_set = self.sets[line % len(self.sets)]
        if line in cache_set:
            dirty = cache_set.pop(line)
            cache_set[line] = dirty or is_write
            return True, None
        victim = None
        if len(cache_set) >= self.ways:
            victim_line, dirty = cache_set.popitem(last=False)
            if dirty:
                victim = victim_line
        cache_set[line] = is_write
        return False, victim


@settings(max_examples=150, deadline=None)
@given(accesses=_ACCESSES,
       sets=st.sampled_from([1, 2, 4]),
       ways=st.integers(min_value=1, max_value=4))
def test_cache_matches_naive_model(accesses, sets, ways):
    geometry = CacheGeometry(size_bytes=sets * ways * 64,
                             associativity=ways, line_size=64)
    cache = SetAssociativeCache(geometry)
    model = _NaiveCache(sets, ways)
    for line, is_write in accesses:
        got = cache.access(line, is_write)
        expected = model.access(line, is_write)
        assert got == expected


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100),
    write_ratio=st.floats(min_value=0.0, max_value=1.0),
)
def test_hierarchy_conservation(seed, write_ratio):
    """Reads reaching memory == LLC fetch misses; after a full flush,
    every line written anywhere has reached memory exactly once per
    dirty generation (no lost or duplicated writebacks)."""
    rng = np.random.default_rng(seed)
    hierarchy = CacheHierarchy(
        cores=2,
        l1_geometry=CacheGeometry(256, 2),
        llc_geometry=CacheGeometry(1024, 2),
    )
    events = []
    for _ in range(400):
        address = int(rng.integers(0, 64)) * 64
        is_write = bool(rng.random() < write_ratio)
        core = int(rng.integers(0, 2))
        events.extend(hierarchy.access(address, is_write, core))
    events.extend(hierarchy.flush())

    reads = [line for line, w in events if not w]
    writes = [line for line, w in events if w]
    stats = hierarchy.stats
    assert len(reads) == stats.memory_reads
    assert len(writes) == stats.memory_writes
    # conservation: a line can only be written back if it was fetched
    # (or write-allocated) at some point — every written line appears
    # among the lines the CPU touched
    touched = {line for line, _ in events}
    assert set(writes) <= touched
    # after the flush nothing remains resident
    assert hierarchy.llc.resident_lines == 0
    assert all(l1.resident_lines == 0 for l1 in hierarchy.l1d)
