"""Cross-validation of the analytic engine against the simulator.

The full Fig. 4 grid (twelve PARSEC workloads x the four core
policies) is evaluated both ways at the fast scale and compared cell
by cell.  The asserted bounds are the engine's documented accuracy
contract (DESIGN.md section 14): they were calibrated empirically on
this grid and ratchet the model — a regression that widens any error
past its bound fails here before it ships.

Single-tier cells are exact by construction (Mattson stack analysis),
so their effective bound is rounding.  The hybrid cells carry the
model's approximation error; the AMAT tail is dominated by cells where
the simulator's combined eviction order deviates from global LRU by a
handful of faults, each amplified by the 25.6 us fault penalty.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import CORE_POLICIES
from repro.experiments.runspec import RunSpec
from repro.workloads.parsec import WORKLOAD_NAMES

SCALE = 0.0005

#: Per-cell bounds (documented accuracy contract).
HIT_RATIO_POINTS = 0.5
AMAT_RELATIVE = 0.30
APPR_RELATIVE = 0.40
#: NVM-write bound: relative with an absolute floor (tiny counts).
NVM_WRITES_RELATIVE = 0.45
NVM_WRITES_FLOOR = 1_000
#: Grid-mean bounds: the per-cell tails are rare, the average is tight.
MEAN_AMAT_RELATIVE = 0.05
MEAN_APPR_RELATIVE = 0.08


@pytest.fixture(scope="module")
def grid():
    """Simulated and analytic results for every Fig. 4 cell."""
    cells = {}
    for workload in WORKLOAD_NAMES:
        for policy in CORE_POLICIES:
            sim = RunSpec.core(
                workload, policy, request_scale=SCALE
            ).execute()
            ana = RunSpec.core(
                workload, policy, request_scale=SCALE, engine="analytic"
            ).execute()
            cells[workload, policy] = (sim, ana)
    return cells


def _relative(analytic: float, simulated: float) -> float:
    return abs(analytic - simulated) / simulated if simulated else 0.0


def test_hit_ratio_within_half_point(grid):
    for (workload, policy), (sim, ana) in grid.items():
        delta = abs(ana.accounting.hit_ratio - sim.accounting.hit_ratio)
        assert delta <= HIT_RATIO_POINTS / 100, (
            f"{workload}/{policy}: hit-ratio off by {delta:.4f}"
        )


def test_amat_within_bounds(grid):
    errors = []
    for (workload, policy), (sim, ana) in grid.items():
        error = _relative(ana.performance.amat, sim.performance.amat)
        errors.append(error)
        assert error <= AMAT_RELATIVE, (
            f"{workload}/{policy}: AMAT error {error:.1%} "
            f"(analytic {ana.performance.amat * 1e9:.1f} ns vs "
            f"simulated {sim.performance.amat * 1e9:.1f} ns)"
        )
    assert sum(errors) / len(errors) <= MEAN_AMAT_RELATIVE


def test_appr_within_bounds(grid):
    errors = []
    for (workload, policy), (sim, ana) in grid.items():
        error = _relative(ana.power.appr, sim.power.appr)
        errors.append(error)
        assert error <= APPR_RELATIVE, (
            f"{workload}/{policy}: APPR error {error:.1%}"
        )
    assert sum(errors) / len(errors) <= MEAN_APPR_RELATIVE


def test_nvm_writes_within_bounds(grid):
    for (workload, policy), (sim, ana) in grid.items():
        delta = abs(ana.nvm_writes.total - sim.nvm_writes.total)
        bound = max(NVM_WRITES_RELATIVE * sim.nvm_writes.total,
                    NVM_WRITES_FLOOR)
        assert delta <= bound, (
            f"{workload}/{policy}: NVM writes off by {delta:,} "
            f"(analytic {ana.nvm_writes.total:,} vs simulated "
            f"{sim.nvm_writes.total:,})"
        )


def test_single_tier_cells_are_exact(grid):
    for (workload, policy), (sim, ana) in grid.items():
        if policy not in ("dram-only", "nvm-only"):
            continue
        assert ana.accounting.hit_ratio == pytest.approx(
            sim.accounting.hit_ratio, abs=1e-9
        ), f"{workload}/{policy}"
        assert ana.accounting.read_faults == sim.accounting.read_faults
        assert ana.accounting.write_faults == sim.accounting.write_faults


def test_policy_ordering_preserved_on_energy(grid):
    """The analytic engine must agree with the simulator on Fig. 4's
    headline comparison (proposed vs CLOCK-DWF on APPR): on the grid
    mean, and cell by cell wherever the simulated margin is decisive
    (wider than the cells' combined error bound)."""
    sim_means = {"proposed": 0.0, "clock-dwf": 0.0}
    ana_means = {"proposed": 0.0, "clock-dwf": 0.0}
    for workload in WORKLOAD_NAMES:
        margins = {}
        for policy in ("proposed", "clock-dwf"):
            sim, ana = grid[workload, policy]
            sim_means[policy] += sim.power.appr
            ana_means[policy] += ana.power.appr
            margins[policy] = (sim.power.appr, ana.power.appr)
        sim_gap = _relative(margins["clock-dwf"][0],
                            margins["proposed"][0])
        if sim_gap > 2 * APPR_RELATIVE:
            sim_order = margins["proposed"][0] < margins["clock-dwf"][0]
            ana_order = margins["proposed"][1] < margins["clock-dwf"][1]
            assert ana_order == sim_order, workload
    assert (ana_means["proposed"] < ana_means["clock-dwf"]) == (
        sim_means["proposed"] < sim_means["clock-dwf"]
    )
