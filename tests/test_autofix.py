"""Tests for ``repro lint --fix``, the output formats and rule aliases."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.autofix import fix_paths
from repro.analysis.cli import run_lint
from repro.analysis.findings import aliases_of, canonical_id
from repro.analysis.lint import lint_paths
from repro.cli import main


def _write(tmp_path: Path, name: str, source: str) -> Path:
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# R003 autofix
# ----------------------------------------------------------------------
class TestFixMutableDefaults:
    def test_default_becomes_none_with_guard(self, tmp_path):
        target = _write(tmp_path, "mod.py", """
            def merge(items, extras=[], seen=None):
                \"\"\"Merge.\"\"\"
                return items + extras
        """)
        fixes = fix_paths([tmp_path])
        assert [f.rule_id for f in fixes] == ["R003"]
        text = target.read_text(encoding="utf-8")
        assert "extras=None" in text
        assert "if extras is None:" in text
        assert "extras = []" in text
        # Guard lands after the docstring.
        lines = text.splitlines()
        assert lines.index('    """Merge."""') \
            < lines.index("    if extras is None:")
        assert lint_paths([tmp_path], select=["R003"]) == []

    def test_fixed_module_behaves_correctly(self, tmp_path):
        target = _write(tmp_path, "mod.py", """
            def push(item, box=[]):
                box.append(item)
                return box
        """)
        fix_paths([tmp_path])
        namespace: dict = {}
        exec(compile(target.read_text(encoding="utf-8"),
                     str(target), "exec"), namespace)
        # The shared-default aliasing bug is gone.
        assert namespace["push"](1) == [1]
        assert namespace["push"](2) == [2]

    def test_fix_twice_is_a_no_op(self, tmp_path):
        target = _write(tmp_path, "mod.py", """
            def merge(items, extras=[], opts=dict()):
                return items + extras, opts
        """)
        assert fix_paths([tmp_path])
        first = target.read_text(encoding="utf-8")
        assert fix_paths([tmp_path]) == []
        assert target.read_text(encoding="utf-8") == first

    def test_single_line_body_is_left_alone(self, tmp_path):
        target = _write(tmp_path, "mod.py", """
            def f(x=[]): return x
        """)
        before = target.read_text(encoding="utf-8")
        assert fix_paths([tmp_path]) == []
        assert target.read_text(encoding="utf-8") == before
        assert lint_paths([tmp_path], select=["R003"])  # still flagged

    def test_lambda_default_is_left_alone(self, tmp_path):
        target = _write(tmp_path, "mod.py", """
            g = lambda x=[]: x
        """)
        assert fix_paths([tmp_path]) == []
        assert lint_paths([tmp_path], select=["R003"])


# ----------------------------------------------------------------------
# R005 autofix
# ----------------------------------------------------------------------
class TestFixMagicNumbers:
    def test_rewrites_and_imports_unit(self, tmp_path):
        target = _write(tmp_path, "memory/devices_x.py", """
            spec = DeviceSpec(read_latency=2e-9, write_energy=1e-9)
        """)
        fixes = fix_paths([tmp_path])
        assert {f.rule_id for f in fixes} == {"R005"}
        text = target.read_text(encoding="utf-8")
        assert "read_latency=2 * NANOSECOND" in text
        assert "write_energy=1 * NANOJOULE" in text
        assert "from repro.memory.devices import NANOJOULE, NANOSECOND" \
            in text
        assert lint_paths([tmp_path], select=["R005"]) == []

    def test_extends_existing_unit_import(self, tmp_path):
        target = _write(tmp_path, "memory/devices_x.py", """
            from repro.memory.devices import NANOSECOND

            spec = DeviceSpec(read_latency=50 * NANOSECOND,
                              write_energy=2e-9)
        """)
        fix_paths([tmp_path])
        text = target.read_text(encoding="utf-8")
        assert "from repro.memory.devices import NANOJOULE, NANOSECOND" \
            in text
        assert text.count("import") == 1

    def test_inexact_coefficients_are_skipped(self, tmp_path):
        # 25 * 1e-9 != 25e-9 in float arithmetic: rewriting would nudge
        # the device model by an ulp, so the number is left flagged.
        target = _write(tmp_path, "memory/devices_x.py", """
            spec = DeviceSpec(read_latency=25e-9)
        """)
        before = target.read_text(encoding="utf-8")
        assert fix_paths([tmp_path]) == []
        assert target.read_text(encoding="utf-8") == before
        assert lint_paths([tmp_path], select=["R005"])

    def test_outside_memory_layer_untouched(self, tmp_path):
        target = _write(tmp_path, "policies/tuning.py", """
            spec = DeviceSpec(read_latency=2e-9)
        """)
        before = target.read_text(encoding="utf-8")
        assert fix_paths([tmp_path]) == []
        assert target.read_text(encoding="utf-8") == before

    def test_fix_twice_is_a_no_op(self, tmp_path):
        target = _write(tmp_path, "memory/devices_x.py", """
            spec = DeviceSpec(read_latency=2e-9)
        """)
        assert fix_paths([tmp_path])
        first = target.read_text(encoding="utf-8")
        assert fix_paths([tmp_path]) == []
        assert target.read_text(encoding="utf-8") == first

    def test_select_narrows_the_fixers(self, tmp_path):
        target = _write(tmp_path, "memory/devices_x.py", """
            def f(x=[]):
                return x

            spec = DeviceSpec(read_latency=2e-9)
        """)
        fixes = fix_paths([tmp_path], select=["R005"])
        assert {f.rule_id for f in fixes} == {"R005"}
        assert "x=[]" in target.read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
class TestFormats:
    def test_json_format(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", "def f(x=[]):\n    return x\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        finding = payload["findings"][0]
        assert finding["rule_id"] == "R003"
        assert finding["path"].endswith("bad.py")
        assert finding["line"] == 1

    def test_json_format_clean(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", "VALUE = 1\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == {
            "findings": [], "count": 0}

    def test_github_format(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", "def f(x=[]):\n    return x\n")
        assert main(["lint", str(tmp_path), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert ",line=1," in out and "::R003 " in out

    def test_unknown_format_is_usage_error(self, tmp_path):
        _write(tmp_path, "ok.py", "VALUE = 1\n")
        assert run_lint([str(tmp_path)], fmt="yaml") == 2

    def test_cli_fix_flag(self, tmp_path, capsys):
        target = _write(tmp_path, "bad.py",
                        "def f(x=[]):\n    return x\n\n\ndef g(y=[]):\n"
                        "    return y\n")
        assert main(["lint", str(tmp_path), "--fix"]) == 0
        out = capsys.readouterr().out
        assert out.count("fixed ") == 2
        assert "if x is None:" in target.read_text(encoding="utf-8")

    def test_cli_deep_flag(self, tmp_path, capsys):
        _write(tmp_path, "mod.py", """
            _CACHE = {}

            def work(item):
                _CACHE[item] = item
                return item

            def main(pool, items):
                return pool.submit(work, items[0])
        """)
        assert main(["lint", str(tmp_path)]) == 0
        assert main(["lint", str(tmp_path), "--deep"]) == 1
        assert "R013" in capsys.readouterr().out

    def test_list_rules_marks_deep_tier(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R013", "R014", "R015"):
            line = next(l for l in out.splitlines()
                        if l.startswith(rule_id))
            assert line.endswith("(deep)")


# ----------------------------------------------------------------------
# Rule aliases
# ----------------------------------------------------------------------
class TestRuleAliases:
    def test_canonical_id_resolves_aliases(self):
        assert canonical_id("R001") == "R010"
        assert canonical_id("r001") == "R010"
        assert canonical_id("R003") == "R003"

    def test_aliases_of_inverts_the_table(self):
        assert aliases_of("R010") == ("R001",)
        assert aliases_of("R001") == ("R001",)
        assert aliases_of("R003") == ()

    def test_select_by_alias_runs_the_successor(self, tmp_path):
        _write(tmp_path, "bad_policy.py", """
            class UncountedPolicy(HybridMemoryPolicy):
                name = "uncounted"

                def access(self, page, is_write):
                    self.mm.serve_hit(page, is_write)
        """)
        findings = lint_paths([tmp_path], select=["R001"])
        assert findings and all(f.rule_id == "R010" for f in findings)

    def test_noqa_by_alias_suppresses_successor(self, tmp_path):
        source = textwrap.dedent("""
            class UncountedPolicy(HybridMemoryPolicy):
                name = "uncounted"

                def access(self, page, is_write):
                    self.mm.serve_hit(page, is_write)
        """)
        target = _write(tmp_path, "bad_policy.py", source)
        findings = lint_paths([tmp_path], select=["R010"])
        assert len(findings) == 1
        lines = source.splitlines()
        lines[findings[0].line - 1] += "  # noqa: R001"
        target.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert lint_paths([tmp_path], select=["R010"]) == []
