"""The resident service: payload translation, HTTP protocol, caching.

An in-thread :class:`ReproServer` on an ephemeral port exercises the
real HTTP stack end to end: cold runs, warm cache-hit re-queries
(byte-identical, zero simulation), JSONL event streaming, trace upload
feeding source-backed specs, the fast engines behind the same
endpoint, error mapping, and clean shutdown.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments.executor import ResultCache
from repro.serve import ReproServer, ReproService, ServeClient
from repro.serve.client import ServeError
from repro.serve.service import ServiceError

RUN = {"workload": "dedup", "policy": "proposed", "request_scale": 0.05}


# ----------------------------------------------------------------------
# Service core (no HTTP)
# ----------------------------------------------------------------------
class TestServiceCore:
    @pytest.fixture
    def service(self, tmp_path) -> ReproService:
        return ReproService(jobs=1, trace_root=tmp_path / "traces")

    def test_payload_translation(self, service):
        spec = service.spec_from_payload(RUN)
        assert spec.workload == "dedup"
        assert spec.policy == "proposed"
        assert spec.request_scale == 0.05

    def test_unknown_fields_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown spec field"):
            service.spec_from_payload({**RUN, "polciy": "proposed"})

    def test_unknown_workload_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown workload"):
            service.spec_from_payload({"workload": "quake"})

    def test_unknown_engine_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown engine"):
            service.spec_from_payload({**RUN, "engine": "quantum"})

    def test_unknown_source_digest_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown source digest"):
            service.spec_from_payload({"source": "feedfacedeadbeef"})

    def test_stream_rejects_fast_engines(self, service):
        with pytest.raises(ServiceError, match="no event stream"):
            service.run({**RUN, "engine": "analytic"}, stream=True)

    def test_defaults_apply_only_when_absent(self, tmp_path):
        service = ReproService(jobs=1, trace_root=tmp_path / "t",
                               defaults={"engine": "analytic"})
        assert service.spec_from_payload(RUN).engine == "analytic"
        explicit = service.spec_from_payload({**RUN, "engine": "simulate"})
        assert explicit.engine == "simulate"

    def test_ingest_registers_source(self, service):
        lines = ["# name: up\n"] + [f"R {i % 9}\n" for i in range(100)]
        source = service.ingest(iter(lines), name="up")
        assert source.requests == 100
        assert source.unique_pages == 9
        assert service.sources[source.digest] is source
        spec = service.spec_from_payload(
            {"source": source.digest, "policy": "proposed"})
        assert spec.workload == "up"


# ----------------------------------------------------------------------
# HTTP end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def endpoint(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    service = ReproService(jobs=1, cache=ResultCache(tmp / "cache"),
                           trace_root=tmp / "traces")
    server = ReproServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(port=server.server_address[1], timeout=300)
    yield client, service
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestServeHTTP:
    def test_health_and_catalog(self, endpoint):
        client, _ = endpoint
        assert client.healthz()
        assert "proposed" in client.policies()
        catalog = client.workloads()
        assert "dedup" in catalog["workloads"]
        assert "analytic" in catalog["engines"]

    def test_cold_then_warm_identical(self, endpoint):
        client, service = endpoint
        cold = client.run(RUN)
        simulated = service.executor.stats.simulated
        warm = client.run(RUN)
        assert warm["result"] == cold["result"]
        assert warm["digest"] == cold["digest"]
        # The warm query was answered from the cache, not recomputed.
        assert service.executor.stats.simulated == simulated

    def test_streamed_events_then_final(self, endpoint):
        client, _ = endpoint
        lines = list(client.run_stream(RUN))
        *events, final = lines
        assert "final" in final
        assert final["final"]["result"]["accounting"]["read_requests"] > 0
        assert events, "stream carried no simulation events"
        assert all("event" in line or "kind" in line or line
                   for line in events)
        # Warm re-query streams the identical lines from the cache.
        assert list(client.run_stream(RUN)) == lines

    def test_trace_upload_feeds_source_runs(self, endpoint):
        client, _ = endpoint
        text = "# name: uploaded\n# page_size: 4096\n" + "".join(
            f"{'W' if i % 3 == 0 else 'R'} {i % 40}\n" for i in range(2_000))
        source = client.upload_trace(text, name="uploaded")
        assert source["requests"] == 2_000
        assert source["unique_pages"] == 40
        by_digest = client.run({"source": source["digest"],
                                "policy": "proposed"})
        by_dict = client.run({"source": source, "policy": "proposed"})
        assert by_digest["result"] == by_dict["result"]
        assert by_digest["digest"] == by_dict["digest"]
        assert by_digest["label"].startswith("uploaded@")

    def test_fast_engines_same_endpoint(self, endpoint):
        client, _ = endpoint
        analytic = client.run({**RUN, "engine": "analytic"})
        sampled = client.run({**RUN, "engine": "sampled"})
        assert analytic["result"]["accounting"]["read_requests"] > 0
        assert sampled["result"]["accounting"]["read_requests"] > 0
        assert analytic["digest"] != sampled["digest"]

    def test_batch_preserves_order(self, endpoint):
        client, _ = endpoint
        results = client.batch([
            {**RUN, "policy": "proposed"},
            {**RUN, "policy": "clock-dwf"},
        ])
        assert [r["label"] for r in results] \
            == ["dedup:proposed", "dedup:clock-dwf"]

    def test_error_mapping(self, endpoint):
        client, _ = endpoint
        with pytest.raises(ServeError) as bad_payload:
            client.run({"workload": "quake"})
        assert bad_payload.value.status == 400
        with pytest.raises(ServeError) as bad_path:
            client._json("GET", "/nope")
        assert bad_path.value.status == 404

    def test_stats_counts_runs(self, endpoint):
        client, _ = endpoint
        stats = client.stats()
        assert stats["runs"] > 0
        assert stats["executor"]["submitted"] >= stats["runs"]
        assert stats["uptime_seconds"] >= 0


class TestServeShutdown:
    def test_shutdown_endpoint_stops_server(self, tmp_path):
        service = ReproService(jobs=1, trace_root=tmp_path / "traces")
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(port=server.server_address[1], timeout=60)
        assert client.healthz()
        client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()


class TestEventPersistence:
    def test_events_dir_persists_streamed_runs(self, tmp_path):
        service = ReproService(jobs=1, trace_root=tmp_path / "traces",
                               events_dir=tmp_path / "events")
        spec, result = service.run(RUN, stream=True)
        target = (tmp_path / "events"
                  / f"dedup-proposed-{spec.digest()}.jsonl")
        assert target.is_file()
        lines = target.read_text("utf-8").splitlines()
        assert lines == list(result.events.trace_lines)
        for line in lines:
            json.loads(line)
