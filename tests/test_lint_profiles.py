"""End-to-end tests for the per-directory lint profiles.

Builds one fixture project with ``src``/``tests``/``examples``
subtrees, seeds the same violations in each, and asserts the profile
table switches exactly the right rules off per directory.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.lint import PROFILES, disabled_for, lint_paths

_RANDOM_AND_DEFAULT = """
    import random

    def pick(items, extras=[]):
        return random.choice(items + extras)
"""

_POLICY = """
    class {name}(HybridMemoryPolicy):
        name = "{key}"

        def access(self, page, is_write):
            self.mm.record_request(is_write)
"""

_WORKER_MUTATION = """
    _CACHE = {}

    def work(item):
        _CACHE[item] = item
        return item

    def main(pool, items):
        return pool.submit(work, items[0])
"""


def _build_project(tmp_path: Path) -> Path:
    proj = tmp_path / "proj"
    for rel, source in {
        "src/sim.py": _RANDOM_AND_DEFAULT,
        "tests/test_sim.py": _RANDOM_AND_DEFAULT,
        "src/policies.py": _POLICY.format(
            name="OrphanPolicy", key="orphan"),
        "examples/demo.py": "import random\n" + textwrap.dedent(
            _POLICY.format(name="ShowcasePolicy", key="showcase")),
        "src/registry.py": 'FACTORIES = {}\n',
        "src/worker.py": _WORKER_MUTATION,
        "tests/worker_helper.py": _WORKER_MUTATION,
    }.items():
        target = proj / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return proj


class TestDisabledFor:
    def test_src_has_no_exemptions(self):
        assert disabled_for(Path("proj/src/sim.py")) == frozenset()

    def test_tests_profile(self):
        assert disabled_for(
            Path("proj/tests/test_sim.py")) == PROFILES["tests"]

    def test_nested_test_dirs_match_by_part(self):
        assert "R002" in disabled_for(Path("a/b/tests/unit/test_x.py"))

    def test_profiles_cover_deep_tier(self):
        for profile in PROFILES.values():
            assert {"R013", "R014", "R015"} <= profile


class TestProjectTree:
    def test_profiles_end_to_end(self, tmp_path):
        proj = _build_project(tmp_path)
        findings = lint_paths([proj], deep=True)
        got = {
            (str(Path(f.path).relative_to(proj)), f.rule_id)
            for f in findings
        }
        assert got == {
            # src gets the full rule set.
            ("src/sim.py", "R002"),
            ("src/sim.py", "R003"),
            ("src/policies.py", "R004"),
            ("src/worker.py", "R013"),
            # tests keep R003 but drop R002/R004 and the deep tier.
            ("tests/test_sim.py", "R003"),
            # examples drop R004 and the deep tier but keep R002/R003.
            ("examples/demo.py", "R002"),
        }, "\n".join(f.render() for f in findings)

    def test_select_still_respects_profiles(self, tmp_path):
        proj = _build_project(tmp_path)
        findings = lint_paths([proj], select=["R013"])
        assert {f.path for f in findings} == {
            str(proj / "src" / "worker.py")
        }
