"""Behavioural tests for the proposed scheme (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.config import MigrationConfig
from repro.core.migration import MigrationLRUPolicy
from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation


def _policy(dram=2, nvm=6, **config_kwargs):
    spec = HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=dram, nvm_pages=nvm,
    )
    defaults = dict(
        read_window_fraction=1.0,
        write_window_fraction=1.0,
        read_threshold=2,
        write_threshold=1,
    )
    defaults.update(config_kwargs)
    mm = MemoryManager(spec)
    policy = MigrationLRUPolicy(mm, MigrationConfig(**defaults))
    return policy, mm


class TestFaultPath:
    def test_faults_fill_dram(self):
        policy, mm = _policy()
        policy.access(1, False)
        assert mm.location_of(1) is PageLocation.DRAM
        assert mm.accounting.faults_filled_dram == 1
        assert mm.accounting.faults_filled_nvm == 0
        policy.validate()

    def test_read_fault_also_fills_dram(self):
        # contrast with CLOCK-DWF, which sends read faults to NVM
        policy, mm = _policy()
        policy.access(1, False)
        policy.access(2, True)
        assert mm.location_of(1) is PageLocation.DRAM
        assert mm.location_of(2) is PageLocation.DRAM

    def test_dram_overflow_demotes_lru_to_nvm(self):
        policy, mm = _policy(dram=2)
        for page in (1, 2, 3):
            policy.access(page, False)
        assert mm.location_of(1) is PageLocation.NVM  # LRU demoted
        assert mm.location_of(2) is PageLocation.DRAM
        assert mm.location_of(3) is PageLocation.DRAM
        assert mm.accounting.migrations_to_nvm == 1
        policy.validate()

    def test_nvm_overflow_evicts_to_disk(self):
        policy, mm = _policy(dram=1, nvm=1)
        for page in (1, 2, 3):
            policy.access(page, False)
        # page 1 was demoted to NVM, then evicted to disk by page 2's
        # demotion when page 3 faulted in
        assert mm.location_of(1) is PageLocation.DISK
        assert mm.accounting.evictions_to_disk == 1
        policy.validate()

    def test_demoted_page_enters_nvm_queue_head(self):
        policy, mm = _policy(dram=1, nvm=3)
        for page in (1, 2, 3):
            policy.access(page, False)
        # demotion order: 1 then 2; NVM queue MRU-first must be [2, 1]
        assert policy.nvm_lru.pages() == [2, 1]


class TestNVMHitPath:
    def test_nvm_hit_served_in_place(self):
        policy, mm = _policy(read_threshold=100, write_threshold=100)
        policy.access(1, False)
        policy.access(2, False)
        policy.access(3, False)  # dram=2 -> page 1 now in NVM
        policy.access(1, True)   # write hit in NVM, no promotion
        assert mm.location_of(1) is PageLocation.NVM
        assert mm.accounting.nvm_write_hits == 1
        assert mm.accounting.migrations_to_dram == 0

    def test_promotion_after_threshold_reads(self):
        policy, mm = _policy(read_threshold=2)
        policy.access(1, False)
        policy.access(2, False)
        policy.access(3, False)  # 1 demoted to NVM
        for _ in range(2):
            policy.access(1, False)
        assert mm.location_of(1) is PageLocation.NVM  # counter == threshold
        policy.access(1, False)  # counter exceeds threshold
        assert mm.location_of(1) is PageLocation.DRAM
        assert mm.accounting.migrations_to_dram == 1
        policy.validate()

    def test_promotion_after_threshold_writes(self):
        policy, mm = _policy(write_threshold=1)
        policy.access(1, False)
        policy.access(2, False)
        policy.access(3, False)
        policy.access(1, True)
        assert mm.location_of(1) is PageLocation.NVM
        policy.access(1, True)
        assert mm.location_of(1) is PageLocation.DRAM

    def test_write_priority_promotes_sooner(self):
        # write threshold below read threshold: the same number of
        # writes promotes while reads do not
        policy, mm = _policy(read_threshold=5, write_threshold=1)
        policy.access(1, False)
        policy.access(2, False)
        policy.access(3, False)
        policy.access(1, False)
        policy.access(1, False)
        assert mm.location_of(1) is PageLocation.NVM
        policy.access(1, True)
        policy.access(1, True)
        assert mm.location_of(1) is PageLocation.DRAM

    def test_promotion_with_full_dram_swaps(self):
        policy, mm = _policy(dram=2, read_threshold=1)
        for page in (1, 2, 3):
            policy.access(page, False)  # DRAM {2,3}, NVM {1}
        policy.access(1, False)
        policy.access(1, False)  # promote 1; DRAM full -> swap with LRU 2
        assert mm.location_of(1) is PageLocation.DRAM
        assert mm.location_of(2) is PageLocation.NVM
        assert mm.accounting.migrations_to_dram == 1
        assert mm.accounting.migrations_to_nvm == 2  # demote on fault + swap
        policy.validate()

    def test_counter_resets_on_window_exit(self):
        # window covers only the top position; deeper pages lose their
        # counters, so alternating pages never accumulate to threshold
        policy, mm = _policy(
            dram=1, nvm=4,
            read_window_fraction=0.25,  # 1 page of 4
            read_threshold=2,
        )
        for page in (1, 2, 3, 4):
            policy.access(page, False)
        # NVM holds 3 pages; alternate accesses between two of them
        nvm_pages = policy.nvm_lru.pages()
        a, b = nvm_pages[0], nvm_pages[1]
        for _ in range(6):
            policy.access(a, False)
            policy.access(b, False)
        # neither should ever pass a threshold of 2 because each access
        # to one page pushes the other out of the 1-page window
        assert mm.location_of(a) is PageLocation.NVM
        assert mm.location_of(b) is PageLocation.NVM
        assert mm.accounting.migrations_to_dram == 0
        policy.validate()

    def test_burst_within_window_promotes(self):
        policy, mm = _policy(
            dram=1, nvm=4, read_window_fraction=0.25, read_threshold=2
        )
        for page in (1, 2, 3, 4):
            policy.access(page, False)
        victim = policy.nvm_lru.pages()[0]
        for _ in range(3):
            policy.access(victim, False)
        assert mm.location_of(victim) is PageLocation.DRAM


class TestDramHitPath:
    def test_dram_hit_is_plain_lru(self):
        policy, mm = _policy()
        policy.access(1, False)
        policy.access(2, False)
        policy.access(1, False)
        assert policy.dram_lru.pages() == [1, 2]
        assert mm.accounting.dram_read_hits == 1

    def test_zero_threshold_promotes_on_first_hit(self):
        policy, mm = _policy(read_threshold=0)
        policy.access(1, False)
        policy.access(2, False)
        policy.access(3, False)
        policy.access(1, False)  # counter 1 > 0 -> immediate promote
        assert mm.location_of(1) is PageLocation.DRAM


class TestHitRatioPreservation:
    def test_almost_same_hit_ratio_as_global_lru(self, zipf_trace):
        """Section IV: "the proposed scheme will have almost the same
        hit ratio as an unmodified LRU".  It is not *exactly* LRU — an
        NVM hit refreshes the page within the NVM queue but does not
        lift it above the DRAM residents — so we assert the hit counts
        agree within 1%."""
        from repro.policies.replacement import LRUReplacement

        spec = HybridMemorySpec.for_footprint(zipf_trace.unique_pages)
        mm = MemoryManager(spec)
        policy = MigrationLRUPolicy(mm, MigrationConfig(
            read_window_fraction=0.0, write_window_fraction=0.0,
            read_threshold=1 << 40, write_threshold=1 << 40,
        ))
        global_lru = LRUReplacement(spec.total_pages)
        lru_hits = 0
        for page, is_write in zipf_trace.iter_pairs():
            policy.access(page, is_write)
            if page in global_lru:
                global_lru.hit(page)
                lru_hits += 1
            else:
                if global_lru.full:
                    global_lru.evict()
                global_lru.insert(page)
        assert mm.accounting.hits == pytest.approx(lru_hits, rel=0.01)
