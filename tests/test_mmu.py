"""Tests for the memory-management layer: frames, page table, DMA,
and the MemoryManager's operation/accounting contract."""

from __future__ import annotations

import pytest

from repro.mmu.dma import Channel, DMAEngine
from repro.mmu.frames import FrameAllocator
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation, PageTableEntry
from repro.mmu.page_table import PageTable


class TestFrameAllocator:
    def test_allocate_until_full(self):
        alloc = FrameAllocator(2)
        first, second = alloc.allocate(), alloc.allocate()
        assert first != second
        assert alloc.full
        with pytest.raises(MemoryError):
            alloc.allocate()

    def test_release_recycles(self):
        alloc = FrameAllocator(1)
        frame = alloc.allocate()
        alloc.release(frame)
        assert alloc.allocate() == frame

    def test_release_unallocated_rejected(self):
        alloc = FrameAllocator(4)
        with pytest.raises(ValueError):
            alloc.release(0)

    def test_counters(self):
        alloc = FrameAllocator(3)
        assert alloc.empty
        alloc.allocate()
        assert alloc.used == 1
        assert alloc.free_count == 2
        assert not alloc.full

    def test_zero_capacity(self):
        alloc = FrameAllocator(0)
        assert alloc.full
        with pytest.raises(MemoryError):
            alloc.allocate()


class TestPageTable:
    def test_insert_lookup_remove(self):
        table = PageTable()
        entry = PageTableEntry(page=5, location=PageLocation.DRAM, frame=0)
        table.insert(entry)
        assert table.lookup(5) is entry
        assert 5 in table
        assert len(table) == 1
        removed = table.remove(5)
        assert removed is entry
        assert table.lookup(5) is None

    def test_double_insert_rejected(self):
        table = PageTable()
        table.insert(PageTableEntry(1, PageLocation.NVM, 0))
        with pytest.raises(KeyError):
            table.insert(PageTableEntry(1, PageLocation.DRAM, 1))

    def test_disk_entries_rejected(self):
        with pytest.raises(ValueError):
            PageTable().insert(PageTableEntry(1, PageLocation.DISK, 0))

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            PageTable().remove(3)

    def test_pages_in_location(self):
        table = PageTable()
        table.insert(PageTableEntry(1, PageLocation.DRAM, 0))
        table.insert(PageTableEntry(2, PageLocation.NVM, 0))
        table.insert(PageTableEntry(3, PageLocation.NVM, 1))
        assert table.pages_in(PageLocation.DRAM) == [1]
        assert sorted(table.pages_in(PageLocation.NVM)) == [2, 3]
        assert table.count_in(PageLocation.NVM) == 2

    def test_mark_access_sets_dirty_on_write(self):
        entry = PageTableEntry(1, PageLocation.DRAM, 0)
        entry.mark_access(is_write=False)
        assert not entry.dirty
        assert entry.referenced
        entry.mark_access(is_write=True)
        assert entry.dirty
        assert entry.access_count == 2
        assert entry.write_count == 1


class TestDMAEngine:
    def test_transfer_counting(self):
        dma = DMAEngine(page_size=4096)
        dma.transfer_page(PageLocation.DISK, PageLocation.DRAM)
        dma.transfer_page(PageLocation.DRAM, PageLocation.NVM)
        dma.transfer_page(PageLocation.DRAM, PageLocation.NVM)
        assert dma.total_pages_moved == 3
        assert dma.pages_moved(source=PageLocation.DRAM) == 2
        assert dma.pages_moved(destination=PageLocation.DRAM) == 1
        assert dma.bytes_moved(PageLocation.DRAM, PageLocation.NVM) == 8192

    def test_self_transfer_rejected(self):
        dma = DMAEngine(page_size=4096)
        with pytest.raises(ValueError):
            dma.transfer_page(PageLocation.DRAM, PageLocation.DRAM)

    def test_summary_keys(self):
        dma = DMAEngine(page_size=4096)
        dma.transfer_page(PageLocation.NVM, PageLocation.DISK)
        assert dma.summary() == {"NVM->DISK": 1}

    def test_channel_str(self):
        channel = Channel(PageLocation.DISK, PageLocation.NVM)
        assert str(channel) == "DISK->NVM"


class TestMemoryManager:
    def test_fault_fill_accounting(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(False)
        mm.fault_fill(7, PageLocation.DRAM, is_write=False)
        assert mm.location_of(7) is PageLocation.DRAM
        assert mm.accounting.read_faults == 1
        assert mm.accounting.faults_filled_dram == 1
        assert mm.dram.used == 1
        mm.validate()

    def test_fault_fill_nvm_records_wear(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(True)
        mm.fault_fill(3, PageLocation.NVM, is_write=True)
        assert mm.wear.fault_fill_writes == small_spec.page_factor
        assert mm.page_table.lookup(3).dirty

    def test_double_fill_rejected(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(False)
        mm.fault_fill(1, PageLocation.DRAM, False)
        with pytest.raises(KeyError):
            mm.fault_fill(1, PageLocation.NVM, False)

    def test_serve_hit_directions(self, small_spec):
        mm = MemoryManager(small_spec)
        for page, loc in ((1, PageLocation.DRAM), (2, PageLocation.NVM)):
            mm.record_request(False)
            mm.fault_fill(page, loc, False)
        mm.record_request(False)
        mm.serve_hit(1, False)
        mm.record_request(True)
        mm.serve_hit(1, True)
        mm.record_request(True)
        mm.serve_hit(2, True)
        acct = mm.accounting
        assert acct.dram_read_hits == 1
        assert acct.dram_write_hits == 1
        assert acct.nvm_write_hits == 1
        # the NVM write hit is one line write of wear
        assert mm.wear.request_writes == 1
        mm.validate()

    def test_serve_hit_missing_page_rejected(self, small_spec):
        mm = MemoryManager(small_spec)
        with pytest.raises(KeyError):
            mm.serve_hit(99, False)

    def test_migrate_moves_and_counts(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(True)
        mm.fault_fill(1, PageLocation.DRAM, True)
        mm.migrate(1, PageLocation.NVM)
        assert mm.location_of(1) is PageLocation.NVM
        assert mm.accounting.migrations_to_nvm == 1
        assert mm.wear.migration_writes == small_spec.page_factor
        assert mm.dram.used == 0 and mm.nvm.used == 1
        # dirty state survives migration
        assert mm.page_table.lookup(1).dirty
        mm.validate()

    def test_migrate_to_same_location_rejected(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(False)
        mm.fault_fill(1, PageLocation.DRAM, False)
        with pytest.raises(ValueError):
            mm.migrate(1, PageLocation.DRAM)

    def test_swap_exchanges_modules(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(False)
        mm.fault_fill(1, PageLocation.DRAM, False)
        mm.record_request(False)
        mm.fault_fill(2, PageLocation.NVM, False)
        mm.swap(2, 1)
        assert mm.location_of(2) is PageLocation.DRAM
        assert mm.location_of(1) is PageLocation.NVM
        assert mm.accounting.migrations_to_dram == 1
        assert mm.accounting.migrations_to_nvm == 1
        mm.validate()

    def test_swap_same_module_rejected(self, small_spec):
        mm = MemoryManager(small_spec)
        for page in (1, 2):
            mm.record_request(False)
            mm.fault_fill(page, PageLocation.NVM, False)
        with pytest.raises(ValueError):
            mm.swap(1, 2)

    def test_evict_dirty_writes_back(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(True)
        mm.fault_fill(1, PageLocation.DRAM, True)
        mm.evict_to_disk(1)
        assert mm.accounting.dirty_evictions == 1
        assert mm.location_of(1) is PageLocation.DISK
        assert mm.dram.used == 0
        mm.validate()

    def test_evict_clean(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(False)
        mm.fault_fill(1, PageLocation.NVM, False)
        mm.evict_to_disk(1)
        assert mm.accounting.clean_evictions == 1

    def test_reset_accounting_keeps_contents(self, small_spec):
        mm = MemoryManager(small_spec)
        mm.record_request(False)
        mm.fault_fill(1, PageLocation.DRAM, False)
        mm.reset_accounting()
        assert mm.accounting.total_requests == 0
        assert mm.location_of(1) is PageLocation.DRAM
        mm.validate()  # fill-credit keeps the invariant satisfied
        # post-reset activity still validates
        mm.record_request(False)
        mm.serve_hit(1, False)
        mm.validate()

    def test_capacity_exhaustion_raises(self, small_spec):
        mm = MemoryManager(small_spec)
        for page in range(small_spec.dram_pages):
            mm.record_request(False)
            mm.fault_fill(page, PageLocation.DRAM, False)
        mm.record_request(False)
        with pytest.raises(MemoryError):
            mm.fault_fill(99, PageLocation.DRAM, False)
