"""Tests for the deep lint tier (R013-R015): snippets and seeded bugs.

The golden-mutant tests copy real source files into a fixture tree,
seed one bug of the kind each rule exists to catch, and assert the
rule fires at the expected location — and that the unmodified copies
lint to zero.
"""

from __future__ import annotations

import shutil
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.lint import lint_paths

SRC_ROOT = Path(repro.__file__).parent


def _lint_snippet(tmp_path: Path, source: str,
                  filename: str = "mod.py", select=None, deep=False):
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path], select=select, deep=deep)


# ----------------------------------------------------------------------
# R013 — worker purity
# ----------------------------------------------------------------------
class TestR013:
    def test_pool_submitted_global_mutation_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            _CACHE = {}

            def work(item):
                _CACHE[item] = item
                return item

            def main(pool, items):
                return pool.submit(work, items[0])
        """, select=["R013"])
        assert len(findings) == 1
        assert findings[0].rule_id == "R013"
        assert "_CACHE" in findings[0].message
        assert "submitted to a worker pool" in findings[0].message
        assert findings[0].line == 5

    def test_worker_local_marker_opts_out(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            _CACHE = {}  # repro: worker-local

            def work(item):
                _CACHE[item] = item
                return item

            def main(pool, items):
                return pool.submit(work, items[0])
        """, select=["R013"])
        assert findings == []

    def test_policy_access_reaches_helper(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            SEEN = []

            def note(page):
                SEEN.append(page)

            class DemoPolicy(HybridMemoryPolicy):
                name = "demo"

                def access(self, page, is_write):
                    note(page)
        """, select=["R013"])
        assert len(findings) == 1
        assert "SEEN" in findings[0].message
        assert "policy access" in findings[0].message
        assert "access -> note" in findings[0].message

    def test_worker_created_closure_is_fine(self, tmp_path):
        # The cell lives in a frame that itself runs inside the worker,
        # so mutating it is worker-local, not a cross-process hazard.
        findings = _lint_snippet(tmp_path, """
            class DemoPolicy(HybridMemoryPolicy):
                name = "demo"

                def access(self, page, is_write):
                    total = 0

                    def bump():
                        nonlocal total
                        total += 1

                    bump()
                    return total
        """, select=["R013"])
        assert findings == []

    def test_local_mutation_is_fine(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def work(item):
                box = []
                box.append(item)
                return box

            def main(pool, items):
                return pool.submit(work, items[0])
        """, select=["R013"])
        assert findings == []

    def test_seeded_bug_unmarked_executor_cache(self, tmp_path):
        """Golden mutant: strip the worker-local marker from the
        executor's per-process instance cache; the pool-submission seed
        must reach the mutating line."""
        original = (SRC_ROOT / "experiments" / "executor.py") \
            .read_text(encoding="utf-8")
        mutated = original.replace(
            "_INSTANCES: dict[tuple, WorkloadInstance] = {}"
            "  # repro: worker-local",
            "_INSTANCES: dict[tuple, WorkloadInstance] = {}",
        )
        assert mutated != original, "marker line moved; update the test"
        target = tmp_path / "executor.py"
        target.write_text(mutated, encoding="utf-8")
        findings = [
            f for f in lint_paths([tmp_path], select=["R013"])
            if f.rule_id == "R013"
        ]
        assert findings, "seeded bug not detected"
        expected_line = next(
            i for i, line in enumerate(mutated.splitlines(), start=1)
            if "_INSTANCES[key] =" in line
        )
        assert any(f.line == expected_line for f in findings), \
            "\n".join(f.render() for f in findings)
        # The unmodified copy is clean.
        target.write_text(original, encoding="utf-8")
        assert lint_paths([tmp_path], select=["R013"]) == []


# ----------------------------------------------------------------------
# R014 — sync-before-emit
# ----------------------------------------------------------------------
_KERNEL_PROLOGUE = textwrap.dedent("""
    class DemoPolicy(HybridMemoryPolicy):
        name = "demo"

        def access(self, page, is_write):
            self.mm.record_request(is_write)

""")


class TestR014:
    def _lint(self, tmp_path, body):
        source = _KERNEL_PROLOGUE + textwrap.indent(
            textwrap.dedent(body).strip("\n") + "\n", "    ")
        (tmp_path / "mod.py").write_text(source, encoding="utf-8")
        return lint_paths([tmp_path], select=["R014"])

    def test_callout_with_debt_flagged(self, tmp_path):
        findings = self._lint(tmp_path, """
            def access_batch(self, mm, pages, writes):
                bus = mm.events
                read_requests = 0
                synced = 0
                for page in pages:
                    read_requests += 1
                if bus is not None:
                    bus.page_fault(page=0)
                if bus is not None:
                    bus.clock += read_requests - synced
                    synced = read_requests
                return read_requests
        """)
        assert len(findings) == 1
        assert findings[0].rule_id == "R014"
        assert "event-emitting code with unflushed request debt" \
            in findings[0].message

    def test_flush_before_callout_clean(self, tmp_path):
        findings = self._lint(tmp_path, """
            def access_batch(self, mm, pages, writes):
                bus = mm.events
                read_requests = 0
                synced = 0
                for page in pages:
                    read_requests += 1
                if bus is not None:
                    bus.clock += read_requests - synced
                    synced = read_requests
                if bus is not None:
                    bus.page_fault(page=0)
                return read_requests
        """)
        assert findings == []

    def test_early_return_with_debt_flagged(self, tmp_path):
        findings = self._lint(tmp_path, """
            def access_batch(self, mm, pages, writes):
                bus = mm.events
                read_requests = 0
                synced = 0
                for page in pages:
                    read_requests += 1
                    if page < 0:
                        return read_requests
                if bus is not None:
                    bus.clock += read_requests - synced
                    synced = read_requests
                return read_requests
        """)
        assert any("may return with unflushed request debt"
                   in f.message for f in findings)

    def test_flushing_finally_covers_exits(self, tmp_path):
        findings = self._lint(tmp_path, """
            def access_batch(self, mm, pages, writes):
                bus = mm.events
                read_requests = 0
                synced = 0
                try:
                    for page in pages:
                        read_requests += 1
                        if page < 0:
                            return read_requests
                finally:
                    if bus is not None:
                        bus.clock += read_requests - synced
                        synced = read_requests
                return read_requests
        """)
        assert findings == []

    def test_kernel_without_deferred_accounting_exempt(self, tmp_path):
        findings = self._lint(tmp_path, """
            def access_batch(self, mm, pages, writes):
                bus = mm.events
                for page in pages:
                    mm.record_request(False)
                    if bus is not None:
                        bus.page_fault(page=page)
        """)
        assert findings == []

    def test_seeded_bug_dropped_fold_in_migration_kernel(self, tmp_path):
        """Golden mutant: delete one guarded debt-flush block from the
        shipped migration kernel; the following callout must be
        flagged."""
        shutil.copy(SRC_ROOT / "core" / "migration.py",
                    tmp_path / "migration.py")
        shutil.copy(SRC_ROOT / "mmu" / "manager.py",
                    tmp_path / "manager.py")
        kernel = tmp_path / "migration.py"
        lines = kernel.read_text(encoding="utf-8").splitlines(
            keepends=True)
        start = next(
            i for i, line in enumerate(lines)
            if line.strip() == "if bus is not None:"
            and "bus.clock +=" in lines[i + 1]
            and "synced =" in lines[i + 2]
        )
        del lines[start:start + 3]
        kernel.write_text("".join(lines), encoding="utf-8")
        findings = [
            f for f in lint_paths([tmp_path], select=["R014"])
            if f.rule_id == "R014"
        ]
        assert findings, "seeded bug not detected"
        assert all(f.path.endswith("migration.py") for f in findings)
        # The unmodified copies are clean.
        shutil.copy(SRC_ROOT / "core" / "migration.py", kernel)
        assert lint_paths([tmp_path], select=["R014"]) == []


# ----------------------------------------------------------------------
# R015 — digest stability
# ----------------------------------------------------------------------
_STABLE_RUNSPEC = """
    import json
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class RunSpec:
        workload: str = "w"
        seed: int = 2016

        def to_dict(self):
            return {"workload": self.workload, "seed": self.seed}

        def digest(self):
            return json.dumps(self.to_dict(), sort_keys=True)
"""


class TestR015:
    def test_stable_runspec_clean(self, tmp_path):
        assert _lint_snippet(
            tmp_path, _STABLE_RUNSPEC, select=["R015"]) == []

    def test_unfrozen_runspec_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            _STABLE_RUNSPEC.replace("@dataclass(frozen=True)",
                                    "@dataclass"),
            select=["R015"])
        assert any("frozen dataclass" in f.message for f in findings)

    def test_mutable_identity_field_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            _STABLE_RUNSPEC.replace('workload: str = "w"',
                                    "workload: dict = None"),
            select=["R015"])
        assert any("mutable/unordered type `dict`" in f.message
                   for f in findings)

    def test_unsorted_digest_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            _STABLE_RUNSPEC.replace(
                "json.dumps(self.to_dict(), sort_keys=True)",
                "json.dumps(self.to_dict())"),
            select=["R015"])
        assert any("sort_keys=True" in f.message for f in findings)

    def test_nondeterministic_to_dict_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            _STABLE_RUNSPEC.replace(
                'return {"workload": self.workload, "seed": self.seed}',
                "return vars(self)"),
            select=["R015"])
        assert any("constant-keyed dict literal" in f.message
                   for f in findings)

    def test_reachable_identity_type_checked(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            import json
            from dataclasses import dataclass

            @dataclass
            class EventConfig:
                interval: int = 0

                def to_dict(self):
                    return {"interval": self.interval}

            @dataclass(frozen=True)
            class RunSpec:
                events: EventConfig | None = None

                def to_dict(self):
                    return {"events": self.events}

                def digest(self):
                    return json.dumps(self.to_dict(), sort_keys=True)
        """, select=["R015"])
        assert any("`EventConfig`" in f.message
                   and "frozen dataclass" in f.message for f in findings)

    def test_seeded_bug_unfrozen_shipped_runspec(self, tmp_path):
        """Golden mutant: unfreeze the shipped RunSpec dataclass."""
        for rel in (("experiments", "runspec.py"), ("obs", "config.py")):
            target = tmp_path / rel[-1]
            shutil.copy(SRC_ROOT.joinpath(*rel), target)
        spec = tmp_path / "runspec.py"
        text = spec.read_text(encoding="utf-8")
        lines = text.splitlines()
        class_line = next(
            i for i, line in enumerate(lines)
            if line.startswith("class RunSpec")
        )
        frozen_line = next(
            i for i in range(class_line - 1, -1, -1)
            if "@dataclass(frozen=True)" in lines[i]
        )
        lines[frozen_line] = lines[frozen_line].replace(
            "@dataclass(frozen=True)", "@dataclass")
        spec.write_text("\n".join(lines) + "\n", encoding="utf-8")
        findings = [
            f for f in lint_paths([tmp_path], select=["R015"])
            if f.rule_id == "R015"
        ]
        assert findings, "seeded bug not detected"
        assert any(
            f.line == class_line + 1 or f.line == frozen_line + 1
            for f in findings
        ), "\n".join(f.render() for f in findings)
        # The unmodified copies are clean.
        spec.write_text(text, encoding="utf-8")
        assert lint_paths([tmp_path], select=["R015"]) == []


# ----------------------------------------------------------------------
# The shipped tree and the time budget
# ----------------------------------------------------------------------
class TestDeepTier:
    def test_repo_source_tree_is_deep_clean(self):
        findings = lint_paths([SRC_ROOT], deep=True)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_deep_run_stays_under_budget(self):
        start = time.perf_counter()
        lint_paths([SRC_ROOT], deep=True)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"deep lint took {elapsed:.1f}s"

    def test_deep_rules_not_selected_by_default(self, tmp_path):
        (tmp_path / "mod.py").write_text(textwrap.dedent("""
            _CACHE = {}

            def work(item):
                _CACHE[item] = item
                return item

            def main(pool, items):
                return pool.submit(work, items[0])
        """), encoding="utf-8")
        assert lint_paths([tmp_path]) == []
        assert lint_paths([tmp_path], deep=True) != []
