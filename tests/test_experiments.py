"""Tests for the evaluation harness: results, runner, figures, tables,
report rendering and sweeps.

Heavier grid computations run at a reduced scale so the whole file
stays fast; the full-scale shape checks live in the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import FIGURE_BUILDERS, build_figure
from repro.experiments.report import figure_summary, render_figure, render_table
from repro.experiments.results import (
    ARITH_MEAN_LABEL,
    GEO_MEAN_LABEL,
    FigureData,
    arith_mean,
    geo_mean,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweep import (
    adaptive_comparison,
    dram_ratio_sweep,
    threshold_sweep,
    window_sweep,
)
from repro.experiments.tables import table_ii, table_iii, table_iv


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    """A reduced-scale runner over three representative workloads."""
    return ExperimentRunner(
        request_scale=1 / 4000,
        footprint_scale=1 / 256,
        workloads=("bodytrack", "canneal", "streamcluster"),
    )


class TestMeans:
    def test_geo_mean(self):
        assert geo_mean([1, 4]) == pytest.approx(2.0)
        assert geo_mean([2, 2, 2]) == pytest.approx(2.0)
        assert geo_mean([]) == 0.0

    def test_geo_mean_survives_zero(self):
        assert geo_mean([0.0, 1.0]) >= 0.0

    def test_arith_mean(self):
        assert arith_mean([1, 2, 3]) == pytest.approx(2.0)
        assert arith_mean([]) == 0.0


class TestFigureData:
    def _figure(self) -> FigureData:
        figure = FigureData("figX", "demo", "norm", ("A", "B"))
        figure.add_bar("w1", A=0.5, B=0.5)
        figure.add_bar("w2", A=2.0, B=2.0)
        return figure

    def test_totals(self):
        figure = self._figure()
        assert figure.totals() == {"w1": 1.0, "w2": 4.0}

    def test_unknown_segment_rejected(self):
        figure = self._figure()
        with pytest.raises(ValueError):
            figure.add_bar("w3", C=1.0)

    def test_means_appended(self):
        figure = self._figure()
        figure.append_means()
        labels = [bar.label for bar in figure.bars]
        assert GEO_MEAN_LABEL in labels
        assert ARITH_MEAN_LABEL in labels
        assert figure.mean_total(GEO_MEAN_LABEL) == pytest.approx(2.0)
        assert figure.mean_total(ARITH_MEAN_LABEL) == pytest.approx(2.5)

    def test_mean_bars_preserve_segment_shares(self):
        figure = self._figure()
        figure.append_means()
        gmean = next(b for b in figure.bars if b.label == GEO_MEAN_LABEL)
        assert gmean.segments["A"] == pytest.approx(gmean.segments["B"])

    def test_grouped_means(self):
        figure = FigureData("figY", "demo", "norm", ("A",))
        figure.add_bar("w1", group="left", A=1.0)
        figure.add_bar("w1", group="right", A=3.0)
        figure.append_means()
        assert figure.mean_total(GEO_MEAN_LABEL, group="left") == \
            pytest.approx(1.0)
        assert figure.mean_total(GEO_MEAN_LABEL, group="right") == \
            pytest.approx(3.0)

    def test_mean_total_requires_append(self):
        with pytest.raises(KeyError):
            self._figure().mean_total()


class TestRunner:
    def test_submit_memoises(self, runner):
        spec = runner.spec_for("bodytrack", "proposed")
        first = runner.submit([spec])[0]
        second = runner.submit([spec])[0]
        assert first is second

    def test_run_shim_removed(self, runner):
        with pytest.raises(RuntimeError, match="RunSpec"):
            runner.run("bodytrack", "proposed")

    def test_baseline_specs_single_module(self, runner):
        dram_run, nvm_run, hybrid = runner.submit([
            runner.spec_for("bodytrack", "dram-only"),
            runner.spec_for("bodytrack", "nvm-only"),
            runner.spec_for("bodytrack", "proposed"),
        ])
        assert dram_run.spec.nvm_pages == 0
        assert nvm_run.spec.dram_pages == 0
        assert dram_run.spec.total_pages == hybrid.spec.total_pages

    def test_grid_covers_requested_cells(self, runner):
        grid = runner.grid(policies=("dram-only", "proposed"))
        assert set(grid) == {"bodytrack", "canneal", "streamcluster"}
        for runs in grid.values():
            assert set(runs.policies) == {"dram-only", "proposed"}


class TestFigures:
    @pytest.mark.parametrize("figure_id", sorted(FIGURE_BUILDERS))
    def test_every_figure_builds(self, runner, figure_id):
        figure = build_figure(figure_id, runner)
        assert figure.figure_id == figure_id
        assert figure.bars
        for bar in figure.bars:
            assert bar.total >= 0.0
        # every non-mean bar is one of the runner's workloads
        labels = {bar.label for bar in figure.bars}
        assert labels & set(runner.workload_names)

    def test_unknown_figure_rejected(self, runner):
        with pytest.raises(KeyError):
            build_figure("fig9z", runner)

    def test_fig1_bars_sum_to_one(self, runner):
        figure = build_figure("fig1", runner)
        for bar in figure.bars:
            assert bar.total == pytest.approx(1.0, abs=1e-6)

    def test_fig4a_has_two_groups(self, runner):
        figure = build_figure("fig4a", runner)
        groups = {bar.group for bar in figure.bars}
        assert groups == {"clock-dwf", "proposed"}

    def test_fig4c_normalises_to_clock_dwf(self, runner):
        figure = build_figure("fig4c", runner)
        dwf, proposed = runner.submit([
            runner.spec_for("bodytrack", "clock-dwf"),
            runner.spec_for("bodytrack", "proposed"),
        ])
        expected = (proposed.performance.memory_time
                    / dwf.performance.memory_time)
        assert figure.totals()["bodytrack"] == pytest.approx(expected)


class TestTables:
    def test_table_iv_rows(self):
        rows = table_iv()
        assert rows[0] == ("DRAM", "50/50", "3.2/3.2", "1")
        assert rows[1][0] == "NVM (PCM)"
        assert rows[1][1] == "100/350"
        assert rows[1][2] == "6.4/32.0"

    def test_table_ii_mentions_table_constants(self):
        rows = dict(table_ii())
        assert "32KB" in rows["L1 Data Cache"]
        assert "2MB" in rows["Last-Level Cache"]
        assert "5 milliseconds" in rows["Secondary Storage"]

    def test_table_iii_rows_cover_selected_workloads(self):
        rows = table_iii(request_scale=1 / 4000, footprint_scale=1 / 256,
                         names=("bodytrack", "vips"))
        assert [row.workload for row in rows] == ["bodytrack", "vips"]
        for row in rows:
            assert row.write_ratio_error < 8.0
            assert row.measured_reads > 0


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_figure_mentions_all_bars(self, runner):
        figure = build_figure("fig2b", runner)
        text = render_figure(figure)
        for bar in figure.bars:
            assert bar.label in text
        assert figure.title in text

    def test_figure_summary_compact(self, runner):
        figure = build_figure("fig2a", runner)
        summary = figure_summary(figure)
        assert summary.startswith("fig2a:")
        assert "G-Mean" in summary


class TestSweeps:
    _SCALE = dict(seed=7)

    def test_threshold_sweep_monotone_migrations(self):
        points = threshold_sweep("raytrace", thresholds=(1, 8, 64))
        migrations = [point.migrations_to_dram for point in points]
        assert migrations[0] > migrations[-1]
        assert all(p.parameter == "read_threshold" for p in points)

    def test_window_sweep_runs(self):
        points = window_sweep("bodytrack", fractions=(0.05, 0.5))
        assert len(points) == 2
        assert all(p.amat_ns > 0 for p in points)

    def test_dram_ratio_sweep_static_power_rises(self):
        points = dram_ratio_sweep("bodytrack", ratios=(0.1, 0.5))
        # more DRAM -> faster requests but pricier background power;
        # at minimum the sweep must produce distinct machines
        assert points[0].appr_nj != points[1].appr_nj

    def test_adaptive_comparison(self):
        comparison = adaptive_comparison("raytrace")
        assert comparison.workload == "raytrace"
        assert 0.0 <= comparison.promotion_efficiency <= 1.0
        # on the bait workload, adaptation must cut migrations
        assert comparison.adaptive.migrations_to_dram <= \
            comparison.fixed.migrations_to_dram
