"""Tests for homogeneous baselines, ablation variants and the registry."""

from __future__ import annotations

import pytest

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.mmu.simulator import simulate
from repro.policies.registry import (
    available_policies,
    make_policy,
    policy_factory,
    proposed_with,
    register_policy,
)
from repro.policies.single_tier import DramOnlyPolicy, NvmOnlyPolicy
from repro.policies.variants import (
    EagerMigrationPolicy,
    NeverMigratePolicy,
    StaticPartitionPolicy,
)
from repro.core.config import MigrationConfig


def _hybrid_spec(dram=4, nvm=12) -> HybridMemorySpec:
    return HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=dram, nvm_pages=nvm,
    )


class TestSingleTier:
    def test_dram_only_uses_dram_frames(self, zipf_trace):
        spec = _hybrid_spec().as_dram_only()
        result = simulate(zipf_trace, spec, DramOnlyPolicy)
        assert result.accounting.nvm_hits == 0
        assert result.accounting.faults_filled_nvm == 0
        assert result.accounting.migrations == 0

    def test_nvm_only_uses_nvm_frames(self, zipf_trace):
        spec = _hybrid_spec().as_nvm_only()
        result = simulate(zipf_trace, spec, NvmOnlyPolicy)
        assert result.accounting.dram_hits == 0
        assert result.accounting.faults_filled_dram == 0
        # every served write request is an NVM line write
        assert result.nvm_writes.request_writes == \
            result.accounting.nvm_write_hits

    def test_rejects_zero_capacity(self):
        spec = _hybrid_spec(dram=0, nvm=8)
        with pytest.raises(ValueError):
            DramOnlyPolicy(MemoryManager(spec))

    def test_nvm_only_amat_slower_than_dram_only(self, zipf_trace):
        spec = _hybrid_spec()
        dram = simulate(zipf_trace, spec.as_dram_only(), DramOnlyPolicy)
        nvm = simulate(zipf_trace, spec.as_nvm_only(), NvmOnlyPolicy)
        # identical replacement -> identical hit ratio, slower device
        assert nvm.accounting.hits == dram.accounting.hits
        assert nvm.performance.memory_time > dram.performance.memory_time

    def test_nvm_only_static_power_lower(self, zipf_trace):
        spec = _hybrid_spec()
        dram = simulate(zipf_trace, spec.as_dram_only(), DramOnlyPolicy)
        nvm = simulate(zipf_trace, spec.as_nvm_only(), NvmOnlyPolicy)
        assert nvm.power.static < dram.power.static


class TestVariants:
    def test_eager_migrates_on_every_nvm_hit(self, zipf_trace):
        spec = _hybrid_spec()
        eager = simulate(zipf_trace, spec, EagerMigrationPolicy)
        proposed = simulate(zipf_trace, spec,
                            policy_factory("proposed"))
        assert eager.accounting.migrations_to_dram > \
            proposed.accounting.migrations_to_dram
        # eager serves no request from NVM twice in a row: every NVM
        # hit promotes, so NVM hits equal promotions
        assert eager.accounting.nvm_hits == \
            eager.accounting.migrations_to_dram

    def test_never_migrate_has_zero_promotions(self, zipf_trace):
        result = simulate(zipf_trace, _hybrid_spec(), NeverMigratePolicy)
        assert result.accounting.migrations_to_dram == 0
        # demotions still happen (fault path), promotions never
        assert result.accounting.migrations_to_nvm > 0

    def test_static_partition_never_migrates(self, zipf_trace):
        result = simulate(zipf_trace, _hybrid_spec(), StaticPartitionPolicy)
        assert result.accounting.migrations == 0

    def test_static_partition_is_deterministic_split(self):
        spec = _hybrid_spec()
        policy = StaticPartitionPolicy(MemoryManager(spec))
        homes = {page: policy._home(page) for page in range(200)}
        # same mapping every time
        policy2 = StaticPartitionPolicy(MemoryManager(spec))
        assert homes == {page: policy2._home(page) for page in range(200)}
        dram_share = sum(
            1 for home in homes.values() if home is PageLocation.DRAM
        ) / len(homes)
        assert dram_share == pytest.approx(spec.dram_pages /
                                           spec.total_pages, abs=0.1)


class TestRegistry:
    def test_known_policies_instantiate(self, zipf_trace):
        spec = _hybrid_spec(dram=8, nvm=24)
        for name in available_policies():
            if name.startswith("dram-only"):
                run_spec = spec.as_dram_only()
            elif name.startswith("nvm-only"):
                run_spec = spec.as_nvm_only()
            else:
                run_spec = spec
            policy = make_policy(name, MemoryManager(run_spec))
            assert policy.name
            # drive a few accesses to prove it works end to end
            for page in range(6):
                policy.access(page, page % 3 == 0)
            policy.validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            policy_factory("no-such-policy")

    def test_register_custom_policy(self):
        factory = policy_factory("proposed", {"read_threshold": 3,
                                              "write_threshold": 1})
        register_policy("custom-test-policy", factory)
        try:
            policy = make_policy("custom-test-policy",
                                 MemoryManager(_hybrid_spec()))
            assert policy.read_threshold == 3
        finally:
            from repro.policies import registry
            del registry._FACTORIES["custom-test-policy"]

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):
            register_policy("proposed", lambda mm: None)

    def test_proposed_with_removed(self):
        with pytest.raises(RuntimeError, match="policy_factory"):
            proposed_with(MigrationConfig(read_threshold=3,
                                          write_threshold=1))
