"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.trace.io import save_trace, write_text_trace
from repro.trace.trace import Trace


@pytest.fixture
def trace_files(tmp_path):
    rng = np.random.default_rng(0)
    trace = Trace(rng.integers(0, 64, 3000), rng.random(3000) < 0.3,
                  name="cli-demo")
    text_path = tmp_path / "demo.trc"
    npz_path = tmp_path / "demo.npz"
    write_text_trace(trace, text_path)
    save_trace(trace, npz_path)
    return str(text_path), str(npz_path)


class TestListingCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "streamcluster" in out

    def test_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "proposed" in out
        assert "clock-dwf" in out
        assert "pdram" in out


class TestCharacterize:
    def test_text_trace(self, trace_files, capsys):
        text_path, _ = trace_files
        assert main(["characterize", text_path]) == 0
        out = capsys.readouterr().out
        assert "3,000" in out
        assert "distinct pages" in out

    def test_npz_trace(self, trace_files, capsys):
        _, npz_path = trace_files
        assert main(["characterize", npz_path]) == 0
        assert "working set" in capsys.readouterr().out


class TestSimulate:
    def test_parsec_workload(self, capsys):
        assert main(["simulate", "--workload", "bodytrack",
                     "--policy", "proposed"]) == 0
        out = capsys.readouterr().out
        assert "bodytrack" in out
        assert "APPR" in out
        assert "hit ratio" in out

    def test_trace_file(self, trace_files, capsys):
        text_path, _ = trace_files
        assert main(["simulate", "--trace", text_path,
                     "--policy", "clock-dwf", "--warmup", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "clock-dwf" in out

    def test_baseline_spec_switch(self, trace_files, capsys):
        text_path, _ = trace_files
        assert main(["simulate", "--trace", text_path,
                     "--policy", "dram-only", "--warmup", "0"]) == 0
        out = capsys.readouterr().out
        assert "/ 0.000" in out  # zero NVM hit share


class TestFiguresAndTables:
    def test_single_figure_small_seeded(self, capsys):
        # use the tiny cli-level path: full-scale is exercised in
        # benchmarks; here we just prove the wiring end to end
        assert main(["figure", "fig2b"]) == 0
        out = capsys.readouterr().out
        assert "Normalized AMAT" in out
        assert "G-Mean" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "nope"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_sweep(self, capsys):
        assert main(["sweep", "threshold", "--workload", "raytrace"]) == 0
        out = capsys.readouterr().out
        assert "read_threshold" in out


class TestRun:
    ARGS = ["run", "--workload", "raytrace", "--policy", "proposed"]

    def test_grid_through_executor(self, capsys):
        assert main([*self.ARGS, "--no-cache", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "raytrace" in out
        assert "simulated 1" in out

    def test_persistent_cache_round_trip(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main([*self.ARGS, *cache, "--jobs", "1"]) == 0
        first = capsys.readouterr().out
        assert "simulated 1, cache hits 0, cache misses 1" in first
        assert main([*self.ARGS, *cache, "--jobs", "1"]) == 0
        second = capsys.readouterr().out
        assert "simulated 0, cache hits 1, cache misses 0" in second
        # cached metrics identical to the freshly-simulated ones
        assert second.splitlines()[:4] == first.splitlines()[:4]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--workload", "doom"])
