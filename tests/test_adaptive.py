"""Tests for the adaptive-threshold extension."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.config import MigrationConfig
from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.workloads.synthetic import burst_workload, zipf_workload


def _adaptive(dram=2, nvm=6, **kwargs):
    spec = HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=dram, nvm_pages=nvm,
    )
    mm = MemoryManager(spec)
    config = MigrationConfig(
        read_window_fraction=1.0, write_window_fraction=1.0,
        read_threshold=2, write_threshold=1,
    )
    return AdaptiveMigrationPolicy(mm, config, **kwargs), mm


class TestAdaptiveMechanics:
    def test_promotion_is_tracked(self):
        policy, mm = _adaptive()
        policy.access(1, False)
        policy.access(2, False)
        policy.access(3, False)  # 1 demoted
        for _ in range(3):
            policy.access(1, False)  # promote
        assert mm.location_of(1) is PageLocation.DRAM
        assert 1 in policy._records

    def test_wasted_promotion_raises_threshold(self):
        policy, mm = _adaptive(dram=1, nvm=4)
        threshold_before = policy.read_threshold
        # warm: pages 1..4; DRAM holds the latest fault
        for page in (1, 2, 3, 4):
            policy.access(page, False)
        # promote an NVM page, then immediately flood with faults so it
        # demotes without earning any DRAM hits
        victim = policy.nvm_lru.pages()[0]
        for _ in range(3):
            policy.access(victim, False)
        assert mm.location_of(victim) is PageLocation.DRAM
        policy.access(99, False)  # fault -> victim demoted unused
        assert policy.wasted_promotions == 1
        assert policy.read_threshold == threshold_before + 1

    def test_threshold_clamped(self):
        policy, _ = _adaptive(min_threshold=1, max_threshold=3)
        policy.read_threshold = 3
        policy._nudge(False, +1)
        assert policy.read_threshold == 3
        policy.write_threshold = 1
        policy._nudge(True, -1)
        assert policy.write_threshold == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            _adaptive(min_threshold=5, max_threshold=2)
        with pytest.raises(ValueError):
            _adaptive(surplus_factor=0.5)

    def test_promotion_efficiency_starts_at_one(self):
        policy, _ = _adaptive()
        assert policy.promotion_efficiency == 1.0


class TestAdaptiveBehaviour:
    def test_bursty_trace_drives_thresholds_up(self):
        """On promotion-bait bursts, the controller learns to promote
        less: thresholds end higher than they started and most
        concluded promotions are flagged as wasted."""
        trace = burst_workload(pages=256, requests=30_000,
                               burst_low=4, burst_high=8,
                               write_ratio=0.0, seed=3)
        spec = HybridMemorySpec.for_footprint(trace.unique_pages)
        mm = MemoryManager(spec)
        policy = AdaptiveMigrationPolicy(mm, MigrationConfig(
            read_window_fraction=0.3, write_window_fraction=0.3,
            read_threshold=2, write_threshold=2,
        ))
        for page, is_write in trace.iter_pairs():
            policy.access(page, is_write)
        assert policy.read_threshold > 2
        assert policy.wasted_promotions > policy.beneficial_promotions

    def test_adaptive_beats_fixed_on_bait_trace(self):
        """With bait bursts, adaptation should cut migrations compared
        to the same initial thresholds held fixed."""
        from repro.core.migration import MigrationLRUPolicy

        trace = burst_workload(pages=256, requests=30_000,
                               burst_low=4, burst_high=8,
                               write_ratio=0.0, seed=3)
        spec = HybridMemorySpec.for_footprint(trace.unique_pages)
        config = MigrationConfig(
            read_window_fraction=0.3, write_window_fraction=0.3,
            read_threshold=2, write_threshold=2,
        )
        fixed_mm = MemoryManager(spec)
        fixed = MigrationLRUPolicy(fixed_mm, config)
        adaptive_mm = MemoryManager(spec)
        adaptive = AdaptiveMigrationPolicy(adaptive_mm, config)
        for page, is_write in trace.iter_pairs():
            fixed.access(page, is_write)
            adaptive.access(page, is_write)
        assert adaptive_mm.accounting.migrations < \
            fixed_mm.accounting.migrations

    def test_adaptive_matches_fixed_on_friendly_trace(self):
        """On a stable zipf workload the controller should not destroy
        the scheme's advantage: hit ratios stay comparable."""
        from repro.core.migration import MigrationLRUPolicy

        trace = zipf_workload(pages=256, requests=20_000, seed=4)
        spec = HybridMemorySpec.for_footprint(trace.unique_pages)
        fixed_mm = MemoryManager(spec)
        fixed = MigrationLRUPolicy(fixed_mm)
        adaptive_mm = MemoryManager(spec)
        adaptive = AdaptiveMigrationPolicy(adaptive_mm)
        for page, is_write in trace.iter_pairs():
            fixed.access(page, is_write)
            adaptive.access(page, is_write)
        assert adaptive_mm.accounting.hit_ratio == pytest.approx(
            fixed_mm.accounting.hit_ratio, abs=0.02
        )
