"""Tests for the CFG builder and the generic fixpoint engine."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.flow import (
    FlowAnalysis,
    build_cfg,
    head_expressions,
    solve_backward,
    solve_forward,
)
from repro.analysis.flow.engine import FixpointDivergence, MAX_VISITS_PER_BLOCK
from repro.analysis.flow.lattice import TOP, flat_join, map_join

import pytest


def _func(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    return next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))


def _cfg(source: str):
    return build_cfg(_func(source))


def _reachable_stmts(cfg) -> list[ast.stmt]:
    return [stmt for block in cfg.reverse_postorder() for stmt in block.stmts]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class TestCfgShape:
    def test_straight_line_single_block(self):
        cfg = _cfg("""
            def f():
                a = 1
                b = 2
                return a + b
        """)
        order = cfg.reverse_postorder()
        assert order[0].index == cfg.entry
        assert len(_reachable_stmts(cfg)) == 3
        # the return edges into exit
        assert cfg.exit in [
            s for block in order for s in block.succs
        ]

    def test_if_creates_diamond(self):
        cfg = _cfg("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        head = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.If) for s in b.stmts)
        )
        assert len(head.succs) == 2

    def test_while_loop_has_back_edge(self):
        cfg = _cfg("""
            def f(x):
                while x:
                    x -= 1
                return x
        """)
        head = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.While) for s in b.stmts)
        )
        # some reachable block edges back to the loop head
        assert any(head.index in b.succs for b in cfg.blocks if b is not head)

    def test_raise_reaches_raise_exit_not_exit(self):
        cfg = _cfg("""
            def f(x):
                if x < 0:
                    raise ValueError(x)
                return x
        """)
        raise_block = next(
            b for b in cfg.blocks
            if any(isinstance(s, ast.Raise) for s in b.stmts)
        )
        assert cfg.raise_exit in raise_block.succs
        assert cfg.exit not in raise_block.succs

    def test_try_body_boundaries_edge_to_handler(self):
        cfg = _cfg("""
            def f(x):
                try:
                    a = x.one()
                    b = x.two()
                except KeyError:
                    b = 0
                return b
        """)
        handler_stmts = [
            s for s in _reachable_stmts(cfg)
            if isinstance(s, ast.Assign)
            and isinstance(s.value, ast.Constant)
        ]
        assert handler_stmts, "handler body must be reachable"

    def test_break_exits_loop(self):
        cfg = _cfg("""
            def f(items):
                for item in items:
                    if item:
                        break
                return items
        """)
        # the Return must still be reachable
        assert any(isinstance(s, ast.Return) for s in _reachable_stmts(cfg))

    def test_statements_after_return_unreachable(self):
        cfg = _cfg("""
            def f():
                return 1
                x = 2
        """)
        assert not any(
            isinstance(s, ast.Assign) for s in _reachable_stmts(cfg)
        )

    def test_head_expressions_for_compound_statements(self):
        func = _func("""
            def f(xs, y):
                for x in xs:
                    pass
                while y:
                    pass
                if y:
                    pass
                with y as z:
                    pass
        """)
        kinds = {}
        for stmt in func.body:
            heads = head_expressions(stmt)
            kinds[type(stmt).__name__] = len(heads)
        assert kinds == {"For": 1, "While": 1, "If": 1, "With": 1}
        assert head_expressions(func.body[0])[0] is func.body[0].iter


# ----------------------------------------------------------------------
# The fixpoint engine
# ----------------------------------------------------------------------
class _ReachingConstants(FlowAnalysis[dict]):
    """name -> constant value, TOP-dropping join (forward)."""

    def initial(self) -> dict:
        return {}

    def join(self, a: dict, b: dict) -> dict:
        return map_join(a, b)

    def transfer(self, stmt: ast.stmt, state: dict) -> dict:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.targets[0], ast.Name):
            state = dict(state)
            name = stmt.targets[0].id
            if isinstance(stmt.value, ast.Constant):
                state[name] = stmt.value.value
            else:
                state.pop(name, None)
        return state


class _Liveness(FlowAnalysis[frozenset]):
    """Backward live-variable analysis over Name loads/stores."""

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, stmt: ast.stmt, state: frozenset) -> frozenset:
        killed = set()
        used = set()
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    killed.add(node.id)
                else:
                    used.add(node.id)
        return (state - killed) | used


class TestEngine:
    def test_constants_agree_across_branches(self):
        cfg = _cfg("""
            def f(cond):
                if cond:
                    x = 1
                else:
                    x = 1
                return x
        """)
        solution = solve_forward(cfg, _ReachingConstants())
        assert solution.block_in[cfg.exit] == {"x": 1}

    def test_disagreeing_branches_drop_to_top(self):
        cfg = _cfg("""
            def f(cond):
                if cond:
                    x = 1
                else:
                    x = 2
                return x
        """)
        solution = solve_forward(cfg, _ReachingConstants())
        assert solution.block_in[cfg.exit] == {}

    def test_loop_reaches_fixpoint(self):
        cfg = _cfg("""
            def f(n):
                x = 0
                while n:
                    x = 1
                return x
        """)
        solution = solve_forward(cfg, _ReachingConstants())
        # 0 on the zero-trip path, 1 after an iteration: joins to TOP.
        assert solution.block_in[cfg.exit] == {}

    def test_backward_liveness(self):
        cfg = _cfg("""
            def f(a, b):
                c = a + b
                d = c + 1
                return d
        """)
        solution = solve_backward(cfg, _Liveness())
        # Backward states flow against execution order: block_out of the
        # entry block is the state at the function's first instruction,
        # where the parameters feeding the return are live.
        assert {"a", "b"} <= solution.block_out[cfg.entry]

    def test_states_through_replays_transfers(self):
        cfg = _cfg("""
            def f():
                x = 1
                y = 2
                return x
        """)
        solution = solve_forward(cfg, _ReachingConstants())
        pairs = [
            (stmt, dict(state))
            for block in cfg.reverse_postorder()
            for stmt, state in solution.states_through(block)
        ]
        assign_states = [
            state for stmt, state in pairs if isinstance(stmt, ast.Assign)
        ]
        assert assign_states[0] == {}
        assert assign_states[1] == {"x": 1}

    def test_divergence_guard(self):
        class Diverging(FlowAnalysis[int]):
            def initial(self) -> int:
                return 0

            def join(self, a: int, b: int) -> int:
                return max(a, b)

            def transfer(self, stmt: ast.stmt, state: int) -> int:
                return state + 1  # not a finite-height lattice

        cfg = _cfg("""
            def f(n):
                while n:
                    n -= 1
        """)
        with pytest.raises(FixpointDivergence):
            solve_forward(cfg, Diverging())
        assert MAX_VISITS_PER_BLOCK >= 100


class TestLattice:
    def test_flat_join(self):
        assert flat_join(1, 1) == 1
        assert flat_join(1, 2) is TOP
        assert flat_join(TOP, 1) is TOP

    def test_map_join_intersects(self):
        joined = map_join({"a": 1, "b": 2}, {"a": 1, "b": 3, "c": 4})
        assert joined == {"a": 1}
