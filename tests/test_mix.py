"""Tests for multi-programmed workload mixes."""

from __future__ import annotations

import pytest

from repro.mmu.simulator import simulate
from repro.policies.registry import policy_factory
from repro.workloads.mix import mix_workloads

_SCALE = dict(request_scale=1 / 4000, footprint_scale=1 / 256)


class TestMixConstruction:
    def test_members_and_name(self):
        mix = mix_workloads(("bodytrack", "streamcluster"), **_SCALE)
        assert mix.name == "bodytrack+streamcluster"
        assert mix.members == ("bodytrack", "streamcluster")

    def test_requests_are_preserved(self):
        mix = mix_workloads(("bodytrack", "streamcluster"), **_SCALE)
        from repro.workloads.parsec import parsec_workload

        a = parsec_workload("bodytrack", seed=2016, **_SCALE)
        b = parsec_workload("streamcluster", seed=2017, **_SCALE)
        assert len(mix.trace) == len(a.trace) + len(b.trace)

    def test_address_spaces_disjoint(self):
        mix = mix_workloads(("bodytrack", "canneal"), **_SCALE)
        from repro.workloads.parsec import parsec_workload

        a = parsec_workload("bodytrack", seed=2016, **_SCALE)
        b = parsec_workload("canneal", seed=2017, **_SCALE)
        # union footprint = sum of member footprints (no collisions)
        assert mix.trace.unique_pages == \
            a.trace.unique_pages + b.trace.unique_pages

    def test_gap_is_request_weighted(self):
        mix = mix_workloads(("blackscholes", "streamcluster"), **_SCALE)
        from repro.workloads.parsec import PROFILES

        fast = PROFILES["streamcluster"].compute_gap_ns * 1e-9
        slow = PROFILES["blackscholes"].compute_gap_ns * 1e-9
        assert fast < mix.inter_request_gap < slow
        # streamcluster dominates the request count, so the mean leans
        # toward its (tiny) gap
        assert mix.inter_request_gap < (fast + slow) / 2

    def test_spec_sized_for_union(self):
        mix = mix_workloads(("bodytrack", "canneal"), **_SCALE)
        assert mix.spec.total_pages == pytest.approx(
            0.75 * mix.trace.unique_pages, rel=0.05
        )

    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            mix_workloads(("bodytrack",), **_SCALE)


class TestMixSimulation:
    def test_policies_run_on_mixes(self):
        mix = mix_workloads(("bodytrack", "streamcluster"), **_SCALE)
        for policy in ("proposed", "clock-dwf"):
            result = simulate(
                mix.trace, mix.spec, policy_factory(policy),
                inter_request_gap=mix.inter_request_gap,
                warmup_fraction=mix.warmup_fraction,
            )
            result.accounting.validate()
            assert result.hit_ratio > 0.5

    def test_proposed_still_beats_dwf_on_mix(self):
        mix = mix_workloads(("bodytrack", "vips", "canneal"), **_SCALE)
        proposed = simulate(
            mix.trace, mix.spec, policy_factory("proposed"),
            warmup_fraction=mix.warmup_fraction,
        )
        dwf = simulate(
            mix.trace, mix.spec, policy_factory("clock-dwf"),
            warmup_fraction=mix.warmup_fraction,
        )
        assert proposed.performance.memory_time < \
            dwf.performance.memory_time
        assert proposed.nvm_writes.total < dwf.nvm_writes.total
