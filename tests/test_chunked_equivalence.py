"""Chunk-boundary equivalence of the streaming drive path.

The tentpole contract of the chunk-first :class:`TraceSource` API is
*bit-identical replay across chunkings*: driving any policy through
``run_source`` with chunk size 1, a ragged prime, a mid-size chunk or
the whole trace at once must produce exactly the same ``RunResult`` —
metrics, accounting, wear, and the event stream line for line.  These
tests pin that contract for every registered policy, plus the memory
side of the bargain: chunked ingest of a long stream peaks at
one-chunk memory, independent of trace length.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import HybridMemorySimulator
from repro.obs.config import EventConfig
from repro.policies.registry import available_policies, policy_factory
from repro.trace.source import IterableTraceSource, scan_source
from repro.workloads.synthetic import zipf_workload

#: The chunkings every policy must agree across: pathological (1),
#: ragged prime (7), mid-size (64), and the whole trace (None).
CHUNK_SIZES = (1, 7, 64, None)


def _trace():
    return zipf_workload(pages=150, requests=3_000, alpha=1.2,
                         write_ratio=0.3, seed=13)


def _spec_for(policy: str, pages: int) -> HybridMemorySpec:
    spec = HybridMemorySpec.for_footprint(pages)
    if policy.startswith("dram-only"):
        return spec.as_dram_only()
    if policy.startswith("nvm-only"):
        return spec.as_nvm_only()
    return spec


def _run(trace, policy: str, chunk_size, **kwargs) -> dict:
    simulator = HybridMemorySimulator(
        _spec_for(policy, 150), policy_factory(policy), sanitize=False,
        **kwargs,
    )
    return simulator.run_source(trace, chunk_size=chunk_size,
                                warmup_fraction=0.25).to_dict()


class TestChunkedMetricsEquivalence:
    @pytest.mark.parametrize("policy", available_policies())
    def test_all_policies_bit_identical_across_chunkings(self, policy):
        trace = _trace()
        whole = _run(trace, policy, None)
        for chunk_size in CHUNK_SIZES[:-1]:
            assert _run(trace, policy, chunk_size) == whole, (
                f"{policy}: chunk_size={chunk_size} diverged from "
                "whole-trace replay"
            )


class TestChunkedEventStreamEquivalence:
    @pytest.mark.parametrize("policy", ["proposed", "clock-dwf",
                                        "eager-migration"])
    def test_event_streams_identical_line_for_line(self, policy):
        trace = _trace()
        events = EventConfig(buckets=6, trace=True, classify=True)
        whole = _run(trace, policy, None, events=events)
        for chunk_size in CHUNK_SIZES[:-1]:
            chunked = _run(trace, policy, chunk_size, events=events)
            assert chunked["events"]["trace_lines"] \
                == whole["events"]["trace_lines"]
            assert chunked == whole

    def test_generator_source_matches_materialised(self):
        trace = _trace()
        events = EventConfig(buckets=6, trace=True)
        whole = _run(trace, "proposed", None, events=events)
        source = IterableTraceSource(
            lambda: iter(trace.iter_pairs()),
            name=trace.name, page_size=trace.page_size,
            request_count=len(trace),
        )
        streamed = _run(source, "proposed", 77, events=events)
        assert streamed == whole


class TestBoundedIngestMemory:
    def test_chunked_scan_peaks_at_one_chunk(self):
        """Peak memory of chunked ingest is bounded by the chunk size,
        not the stream length (the constant-memory contract)."""
        requests = 600_000  # materialised: ~5.4 MB of arrays alone
        chunk = 2_048

        def pairs():
            for i in range(requests):
                yield (i * 2_654_435_761) % 4_096, i % 3 == 0

        source = IterableTraceSource(pairs, name="long-stream")
        tracemalloc.start()
        try:
            scan = scan_source(source, chunk_size=chunk)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert scan.requests == requests
        assert scan.unique_pages == 4_096
        # One chunk of boxed pairs plus parse buffers is well under
        # 2 MB; a whole-trace materialisation could not fit.
        assert peak < 2 * 1024 * 1024

    def test_simulate_streams_at_constant_memory(self):
        requests = 200_000
        spec = HybridMemorySpec.for_footprint(512)

        def pairs():
            for i in range(requests):
                yield (i * 48_271) % 512, i % 4 == 0

        source = IterableTraceSource(pairs, name="drive-stream",
                                     request_count=requests)
        simulator = HybridMemorySimulator(
            spec, policy_factory("proposed"), sanitize=False)
        tracemalloc.start()
        try:
            result = simulator.run_source(source, chunk_size=4_096)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.accounting.total_requests == requests
        assert peak < 4 * 1024 * 1024
