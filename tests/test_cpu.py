"""Tests for the COTSon-substitute cache hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.cache import CacheGeometry, SetAssociativeCache
from repro.cpu.filter import filter_trace
from repro.cpu.hierarchy import (
    COTSON_CORES,
    L1_GEOMETRY,
    LLC_GEOMETRY,
    CacheHierarchy,
    cotson_hierarchy,
)
from repro.cpu.multicore import synthesize_cpu_trace
from repro.trace.trace import CPUTrace


class TestCacheGeometry:
    def test_table_ii_l1(self):
        assert L1_GEOMETRY.size_bytes == 32 * 1024
        assert L1_GEOMETRY.associativity == 4
        assert L1_GEOMETRY.line_size == 64
        assert L1_GEOMETRY.sets == 128

    def test_table_ii_llc(self):
        assert LLC_GEOMETRY.size_bytes == 2 * 1024 * 1024
        assert LLC_GEOMETRY.associativity == 16
        assert LLC_GEOMETRY.sets == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheGeometry(100, 4)  # not a line multiple
        with pytest.raises(ValueError):
            CacheGeometry(128, 3, line_size=64)  # lines % assoc != 0


class TestSetAssociativeCache:
    def _tiny(self) -> SetAssociativeCache:
        # 2 sets x 2 ways of 64B lines
        return SetAssociativeCache(CacheGeometry(256, 2))

    def test_hit_after_fill(self):
        cache = self._tiny()
        hit, _ = cache.access(0, False)
        assert not hit
        hit, _ = cache.access(0, False)
        assert hit
        assert cache.stats.hit_ratio == 0.5

    def test_lru_within_set(self):
        cache = self._tiny()
        # lines 0, 2, 4 all map to set 0 (2 sets)
        cache.access(0, False)
        cache.access(2, False)
        cache.access(0, False)          # refresh 0
        cache.access(4, False)          # evicts 2
        assert cache.contains(0)
        assert not cache.contains(2)

    def test_dirty_eviction_reported(self):
        cache = self._tiny()
        cache.access(0, True)           # dirty
        cache.access(2, False)
        _, writeback = cache.access(4, False)  # evicts 0 (LRU, dirty)
        assert writeback == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_silent(self):
        cache = self._tiny()
        cache.access(0, False)
        cache.access(2, False)
        _, writeback = cache.access(4, False)
        assert writeback is None

    def test_invalidate(self):
        cache = self._tiny()
        cache.access(0, True)
        assert cache.invalidate(0) is True   # was dirty
        assert not cache.contains(0)
        assert cache.invalidate(0) is False  # already gone

    def test_flush_returns_dirty_lines(self):
        cache = self._tiny()
        cache.access(0, True)
        cache.access(1, False)
        dirty = cache.flush()
        assert dirty == [0]
        assert cache.resident_lines == 0


class TestCacheHierarchy:
    def test_hot_line_is_fully_absorbed(self):
        hierarchy = cotson_hierarchy()
        events = hierarchy.access(0x1000, False)
        assert len(events) == 1  # compulsory miss fetch
        for _ in range(100):
            assert hierarchy.access(0x1000, False) == []
        assert hierarchy.stats.memory_reads == 1

    def test_writes_surface_as_evictions_not_stores(self):
        hierarchy = CacheHierarchy(
            cores=1,
            l1_geometry=CacheGeometry(256, 2),
            llc_geometry=CacheGeometry(1024, 2),
        )
        hierarchy.access(0, True)
        assert hierarchy.stats.memory_writes == 0  # write-back: not yet
        # stream enough lines to force the dirty line out of the LLC
        for index in range(1, 64):
            hierarchy.access(index * 64, False)
        assert hierarchy.stats.memory_writes >= 1

    def test_coherence_invalidation_on_remote_write(self):
        hierarchy = cotson_hierarchy()
        hierarchy.access(0x4000, False, core=0)
        hierarchy.access(0x4000, False, core=1)
        invalidations_before = hierarchy.stats.coherence_invalidations
        hierarchy.access(0x4000, True, core=2)
        assert hierarchy.stats.coherence_invalidations > \
            invalidations_before

    def test_dirty_remote_invalidation_writes_back(self):
        hierarchy = cotson_hierarchy()
        hierarchy.access(0x4000, True, core=0)   # core 0 holds dirty
        hierarchy.access(0x4000, True, core=1)   # forces writeback path
        # the line survives in the LLC; no memory write needed yet
        assert hierarchy.stats.memory_writes == 0
        assert hierarchy.stats.coherence_invalidations >= 1

    def test_core_range_checked(self):
        hierarchy = cotson_hierarchy()
        with pytest.raises(ValueError):
            hierarchy.access(0, False, core=COTSON_CORES)

    def test_instruction_stream_uses_l1i(self):
        hierarchy = cotson_hierarchy()
        hierarchy.access(0x8000, False, core=0, is_instruction=True)
        hierarchy.access(0x8000, False, core=0, is_instruction=True)
        assert hierarchy.l1i[0].stats.hits == 1
        assert hierarchy.l1d[0].stats.accesses == 0

    def test_flush_drains_dirty_lines(self):
        hierarchy = cotson_hierarchy()
        hierarchy.access(0x1000, True)
        events = hierarchy.flush()
        assert (0x1000 // 64, True) in events


class TestFilterTrace:
    def test_filtering_reduces_traffic(self):
        cpu = synthesize_cpu_trace(shared_pages=256, requests=50_000,
                                   seed=2)
        hierarchy = cotson_hierarchy()
        memory = filter_trace(cpu, hierarchy)
        assert len(memory) < len(cpu)
        assert hierarchy.stats.llc_filter_ratio > 0.2
        assert memory.name.endswith("-filtered")

    def test_filtered_trace_page_bounds(self):
        cpu = synthesize_cpu_trace(shared_pages=64, private_pages=16,
                                   requests=20_000, cores=4, seed=3)
        memory = filter_trace(cpu)
        max_page = 64 + 4 * 16
        assert int(np.asarray(memory.pages).max()) < max_page

    def test_write_back_changes_write_ratio(self):
        # post-LLC write ratio differs from the CPU-level ratio because
        # stores coalesce into eviction-time writebacks
        cpu = synthesize_cpu_trace(shared_pages=512, requests=50_000,
                                   write_ratio=0.5, seed=4)
        memory = filter_trace(cpu)
        assert memory.write_ratio < 0.5

    def test_flush_at_end_appends_writebacks(self):
        cpu = synthesize_cpu_trace(shared_pages=64, requests=5_000,
                                   write_ratio=0.5, seed=5)
        without = filter_trace(cpu, cotson_hierarchy())
        with_flush = filter_trace(cpu, cotson_hierarchy(),
                                  flush_at_end=True)
        assert len(with_flush) > len(without)

    def test_deterministic(self):
        cpu = synthesize_cpu_trace(requests=10_000, seed=6)
        first = filter_trace(cpu, cotson_hierarchy())
        second = filter_trace(cpu, cotson_hierarchy())
        assert first == second


class TestSynthesizeCPUTrace:
    def test_basic_shape(self):
        cpu = synthesize_cpu_trace(requests=1000, cores=4, seed=7)
        assert len(cpu) == 1000
        assert cpu.core_count == 4
        assert isinstance(cpu, CPUTrace)

    def test_write_ratio(self):
        cpu = synthesize_cpu_trace(requests=50_000, write_ratio=0.25,
                                   seed=8)
        assert np.asarray(cpu.is_write).mean() == pytest.approx(0.25,
                                                                abs=0.02)

    def test_private_regions_disjoint_per_core(self):
        cpu = synthesize_cpu_trace(shared_pages=100, private_pages=10,
                                   requests=20_000, cores=2,
                                   shared_fraction=0.0, seed=9)
        pages = np.asarray(cpu.addresses) // 4096
        cores = np.asarray(cpu.cores)
        pages0 = set(pages[cores == 0].tolist())
        pages1 = set(pages[cores == 1].tolist())
        assert pages0.isdisjoint(pages1)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_cpu_trace(cores=0)
        with pytest.raises(ValueError):
            synthesize_cpu_trace(shared_fraction=1.5)
