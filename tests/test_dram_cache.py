"""Tests for DRAM-copy support in the manager and the DRAM-cache policy."""

from __future__ import annotations

import pytest

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.mmu.simulator import simulate
from repro.policies.dram_cache import DramCachePolicy
from repro.policies.registry import policy_factory
from repro.workloads.synthetic import scan_loop_workload, zipf_workload


def _mm(dram=2, nvm=6) -> MemoryManager:
    return MemoryManager(HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=dram, nvm_pages=nvm,
    ))


class TestManagerCopies:
    def _resident_nvm_page(self, mm, page=1, is_write=False):
        mm.record_request(is_write)
        mm.fault_fill(page, PageLocation.NVM, is_write)
        return page

    def test_create_copy_charges_a_fill(self):
        mm = _mm()
        page = self._resident_nvm_page(mm)
        mm.create_copy(page)
        entry = mm.page_table.lookup(page)
        assert entry.has_copy
        assert mm.dram.used == 1
        assert mm.accounting.migrations_to_dram == 1
        mm.validate()

    def test_copied_page_hits_count_as_dram(self):
        mm = _mm()
        page = self._resident_nvm_page(mm)
        mm.create_copy(page)
        mm.record_request(False)
        mm.serve_hit(page, False)
        mm.record_request(True)
        mm.serve_hit(page, True)
        assert mm.accounting.dram_read_hits == 1
        assert mm.accounting.dram_write_hits == 1
        assert mm.accounting.nvm_hits == 0
        # the write dirtied the copy, not NVM
        assert mm.page_table.lookup(page).copy_dirty
        assert mm.wear.request_writes == 0

    def test_drop_clean_copy_is_free(self):
        mm = _mm()
        page = self._resident_nvm_page(mm)
        mm.create_copy(page)
        assert mm.drop_copy(page) is False
        assert mm.accounting.migrations_to_nvm == 0
        assert mm.dram.used == 0
        mm.validate()

    def test_drop_dirty_copy_writes_back(self):
        mm = _mm()
        page = self._resident_nvm_page(mm)
        mm.create_copy(page)
        mm.record_request(True)
        mm.serve_hit(page, True)
        assert mm.drop_copy(page) is True
        assert mm.accounting.migrations_to_nvm == 1
        assert mm.wear.migration_writes == mm.spec.page_factor
        mm.validate()

    def test_guards(self):
        mm = _mm()
        page = self._resident_nvm_page(mm)
        with pytest.raises(KeyError):
            mm.drop_copy(page)  # no copy yet
        mm.create_copy(page)
        with pytest.raises(ValueError):
            mm.create_copy(page)  # double copy
        with pytest.raises(ValueError):
            mm.migrate(page, PageLocation.DRAM)  # copied pages pinned
        with pytest.raises(ValueError):
            mm.evict_to_disk(page)  # must drop the copy first
        mm.record_request(True)
        mm.fault_fill(2, PageLocation.DRAM, True)
        with pytest.raises(ValueError):
            mm.create_copy(2)  # only NVM pages can be cached

    def test_copy_of_missing_page_rejected(self):
        mm = _mm()
        with pytest.raises(KeyError):
            mm.create_copy(42)


class TestDramCachePolicy:
    def test_fault_fills_nvm_and_caches(self):
        mm = _mm(dram=2, nvm=4)
        policy = DramCachePolicy(mm)
        policy.access(1, False)
        entry = mm.page_table.lookup(1)
        assert entry.location is PageLocation.NVM
        assert entry.has_copy
        policy.validate()

    def test_repeated_hits_served_from_dram(self):
        mm = _mm(dram=2, nvm=4)
        policy = DramCachePolicy(mm)
        policy.access(1, False)
        for _ in range(5):
            policy.access(1, False)
        assert mm.accounting.dram_read_hits == 5
        assert mm.accounting.nvm_hits == 0

    def test_cache_eviction_is_lru(self):
        mm = _mm(dram=2, nvm=6)
        policy = DramCachePolicy(mm)
        for page in (1, 2, 3):
            policy.access(page, False)
        cached = {
            entry.page for entry in mm.page_table.entries()
            if entry.has_copy
        }
        assert cached == {2, 3}
        policy.validate()

    def test_dirty_copy_eviction_writes_nvm(self):
        mm = _mm(dram=1, nvm=6)
        policy = DramCachePolicy(mm)
        policy.access(1, True)   # fault; cached; copy dirty? fault fill
        policy.access(1, True)   # write hit in cache -> dirty copy
        migrations_before = mm.accounting.migrations_to_nvm
        policy.access(2, False)  # evicts page 1's dirty copy
        assert mm.accounting.migrations_to_nvm == migrations_before + 1
        policy.validate()

    def test_capacity_is_nvm_only(self, zipf_trace):
        """Inclusion halves nothing but does cost capacity: resident
        pages are bounded by NVM frames, unlike migration policies that
        use DRAM + NVM."""
        spec = HybridMemorySpec.for_footprint(zipf_trace.unique_pages)
        cache_run = simulate(zipf_trace, spec, policy_factory("dram-cache"))
        migration_run = simulate(zipf_trace, spec,
                                 policy_factory("proposed"))
        assert cache_run.hit_ratio <= migration_run.hit_ratio + 1e-9

    def test_low_locality_loop_hurts_cache(self):
        """Section III: "if the locality of the requests drops below a
        threshold, the performance of the cache will be decreased" —
        on a loop larger than the DRAM cache, every access misses the
        cache and pays fill traffic."""
        trace = scan_loop_workload(pages=100, window=100,
                                   requests=20_000, seed=4)
        # the loop fits entirely in NVM, but not in the DRAM cache
        spec = HybridMemorySpec(
            dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
            dram_pages=12, nvm_pages=120,
        )
        cache_run = simulate(trace, spec, policy_factory("dram-cache"))
        proposed_run = simulate(trace, spec, policy_factory("proposed"))
        # the cache constantly refills (one migration-equivalent per
        # access), the proposed scheme's thresholds stay quiet
        assert cache_run.accounting.migrations_to_dram > \
            10 * max(proposed_run.accounting.migrations_to_dram, 1)
        assert cache_run.performance.memory_time > \
            proposed_run.performance.memory_time

    def test_requires_both_modules(self):
        spec = HybridMemorySpec(
            dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
            dram_pages=0, nvm_pages=4,
        )
        with pytest.raises(ValueError):
            DramCachePolicy(MemoryManager(spec))

    def test_full_run_validates(self):
        trace = zipf_workload(pages=128, requests=10_000, seed=6)
        spec = HybridMemorySpec.for_footprint(trace.unique_pages)
        result = simulate(trace, spec, policy_factory("dram-cache"),
                          validate_every=333)
        result.accounting.validate()
