"""Tests for device specifications (paper Table IV / Table II)."""

from __future__ import annotations

import pytest

from repro.memory.devices import (
    GIB,
    MemoryDeviceSpec,
    dram_spec,
    hdd_spec,
    pcm_spec,
    ssd_spec,
    sttram_spec,
)


class TestTableIVConstants:
    """The presets must match Table IV exactly."""

    def test_dram_latencies(self):
        dram = dram_spec()
        assert dram.read_latency == pytest.approx(50e-9)
        assert dram.write_latency == pytest.approx(50e-9)

    def test_dram_energy(self):
        dram = dram_spec()
        assert dram.read_energy == pytest.approx(3.2e-9)
        assert dram.write_energy == pytest.approx(3.2e-9)

    def test_dram_static_power(self):
        assert dram_spec().static_power_per_gb == pytest.approx(1.0)

    def test_pcm_latencies(self):
        pcm = pcm_spec()
        assert pcm.read_latency == pytest.approx(100e-9)
        assert pcm.write_latency == pytest.approx(350e-9)

    def test_pcm_energy(self):
        pcm = pcm_spec()
        assert pcm.read_energy == pytest.approx(6.4e-9)
        assert pcm.write_energy == pytest.approx(32e-9)

    def test_pcm_static_power_is_tenth_of_dram(self):
        assert pcm_spec().static_power_per_gb == pytest.approx(
            dram_spec().static_power_per_gb / 10
        )

    def test_hdd_is_5ms(self):
        assert hdd_spec().access_latency == pytest.approx(5e-3)

    def test_asymmetry_flags(self):
        assert not dram_spec().is_asymmetric
        assert pcm_spec().is_asymmetric
        assert sttram_spec().is_asymmetric

    def test_endurance(self):
        assert dram_spec().endurance_cycles is None
        assert pcm_spec().endurance_cycles == 100_000_000


class TestDeviceBehaviour:
    def test_access_helpers(self):
        pcm = pcm_spec()
        assert pcm.access_latency(True) == pcm.write_latency
        assert pcm.access_latency(False) == pcm.read_latency
        assert pcm.access_energy(True) == pcm.write_energy
        assert pcm.access_energy(False) == pcm.read_energy

    def test_static_power_scales_with_capacity(self):
        dram = dram_spec()
        assert dram.static_power(GIB) == pytest.approx(1.0)
        assert dram.static_power(GIB // 2) == pytest.approx(0.5)
        assert dram.static_power(0) == 0.0

    def test_scaled_copies(self):
        pcm = pcm_spec()
        faster = pcm.scaled(latency=0.5, energy=0.25, static=2.0)
        assert faster.read_latency == pytest.approx(pcm.read_latency / 2)
        assert faster.write_energy == pytest.approx(pcm.write_energy / 4)
        assert faster.static_power_per_gb == pytest.approx(
            pcm.static_power_per_gb * 2
        )
        # original untouched (frozen dataclass semantics)
        assert pcm.read_latency == pytest.approx(100e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryDeviceSpec("bad", -1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            MemoryDeviceSpec("bad", 1, 1, 1, 1, 1, endurance_cycles=0)

    def test_ssd_is_faster_than_hdd(self):
        assert ssd_spec().access_latency < hdd_spec().access_latency
