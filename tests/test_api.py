"""Tests for the stable public facade (:mod:`repro.api`)."""

from __future__ import annotations

import ast
from pathlib import Path

import repro.api as api

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def test_all_names_resolve():
    missing = [name for name in api.__all__ if not hasattr(api, name)]
    assert not missing


def test_all_is_sorted_within_groups_and_duplicate_free():
    assert len(set(api.__all__)) == len(api.__all__)


def test_facade_covers_every_example_import():
    """The examples are the facade's contract: everything they pull
    from ``repro.api`` must be exported (not merely importable)."""
    exported = set(api.__all__)
    for script in EXAMPLES.glob("*.py"):
        tree = ast.parse(script.read_text(), filename=str(script))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro.api":
                names = {alias.name for alias in node.names}
                assert names <= exported, (
                    f"{script.name} imports {sorted(names - exported)} "
                    "which repro.api does not export"
                )


def test_facade_reexports_are_the_canonical_objects():
    from repro.experiments.runspec import RunSpec
    from repro.obs import EventConfig

    assert api.RunSpec is RunSpec
    assert api.EventConfig is EventConfig


def test_facade_exports_the_engine_surface():
    import repro.model as model
    from repro.experiments.runspec import ENGINES

    assert api.ENGINES is ENGINES
    assert api.ANALYTIC_POLICIES is model.ANALYTIC_POLICIES
    assert api.estimate_spec is model.estimate_spec
    assert api.estimate_run is model.estimate_run
    assert api.profile_workload is model.profile_workload
    assert api.WorkloadProfile is model.WorkloadProfile
    assert api.UnsupportedPolicyError is model.UnsupportedPolicyError
    assert set(ENGINES) == {"simulate", "analytic", "sampled"}


def test_facade_exports_the_sampling_surface():
    import repro.sampling as sampling
    import repro.trace.sampling as trace_sampling

    assert api.SamplingConfig is sampling.SamplingConfig
    assert api.SamplingSummary is sampling.SamplingSummary
    assert api.MetricInterval is sampling.MetricInterval
    assert api.SAMPLING_SCHEMES is trace_sampling.SAMPLING_SCHEMES
    assert api.sample_mask is trace_sampling.sample_mask
    assert api.assign_groups is trace_sampling.assign_groups
    assert api.subset_trace is trace_sampling.subset_trace
