"""Smoke tests: every example script must run and tell its story.

Executed in-process (``runpy``) so failures surface as ordinary test
errors with usable tracebacks.  The heavyweight full-grid example
(``reproduce_paper.py``) runs in its --fast mode.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str] | None = None, capsys=None) -> str:
    old_argv = sys.argv
    sys.argv = [script] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys=capsys)
    assert "dedup on three memory designs" in out
    assert "proposed" in out and "clock-dwf" in out


def test_full_system_pipeline(capsys):
    out = _run("full_system_pipeline.py", capsys=capsys)
    assert "main-memory accesses" in out
    assert "hybrid memory on the filtered trace" in out


def test_custom_policy(capsys):
    out = _run("custom_policy.py", capsys=capsys)
    assert "write-twice" in out
    assert "eager-migration" in out


def test_threshold_tuning(capsys):
    out = _run("threshold_tuning.py", capsys=capsys)
    assert "threshold sweep: raytrace" in out
    assert "adaptive controller" in out


def test_endurance_study(capsys):
    out = _run("endurance_study.py", capsys=capsys)
    assert "Start-Gap" in out
    assert "levelling gain" in out


def test_migration_timeline(capsys):
    out = _run("migration_timeline.py", capsys=capsys)
    assert "beneficial vs non-beneficial" in out
    assert "promotions" in out
    assert "event stream" in out
    assert "timeline" in out


def test_nvm_technology_study(capsys):
    out = _run("nvm_technology_study.py", capsys=capsys)
    assert "STT-RAM-like" in out


@pytest.mark.slow
def test_reproduce_paper_fast_mode(capsys):
    out = _run("reproduce_paper.py", argv=["--fast"], capsys=capsys)
    assert "Table III" in out
    assert "fig4c" in out
    assert "done in" in out
