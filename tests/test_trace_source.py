"""The chunk-first trace-source API: protocol, identity, store, specs.

Covers the input layer of the streaming pipeline: source coercion and
chunk joins, the streaming file readers, the chunk-size-invariant
content digest, the content-addressed :class:`TraceStore`, the frozen
:class:`SourceSpec` riding on :class:`RunSpec` (identity, digests,
engines), the deprecation of the whole-trace readers, and the
concurrent-writer safety of :class:`ResultCache`.
"""

from __future__ import annotations

import dataclasses
import json
import threading

import numpy as np
import pytest

from repro.experiments.executor import (
    ParallelExecutor,
    ResultCache,
    execute_specs,
)
from repro.experiments.runspec import RunSpec
from repro.trace.io import read_text_trace, save_trace, write_text_trace
from repro.trace.source import (
    DEFAULT_CHUNK_REQUESTS,
    IterableTraceSource,
    NpzTraceSource,
    SourceSpec,
    TextTraceSource,
    TraceSource,
    TraceStore,
    as_source,
    materialize,
    open_trace_source,
    scan_source,
)
from repro.trace.trace import Trace
from repro.workloads.synthetic import zipf_workload


@pytest.fixture
def trace() -> Trace:
    rng = np.random.default_rng(21)
    return Trace(rng.integers(0, 80, 1_000), rng.random(1_000) < 0.35,
                 name="source-fixture", page_size=4096)


def _join(chunks) -> Trace:
    return Trace.from_chunks(chunks)


# ----------------------------------------------------------------------
# Protocol and chunk joins
# ----------------------------------------------------------------------
class TestSourceProtocol:
    def test_trace_is_a_source(self, trace):
        assert isinstance(trace, TraceSource)
        assert trace.request_count == len(trace)
        (whole,) = list(trace.chunks(None))
        assert whole is trace

    def test_trace_chunks_rejoin_exactly(self, trace):
        for size in (1, 7, 64, 999, 5_000):
            joined = _join(trace.chunks(size))
            assert joined == trace

    def test_as_source_coercions(self, trace, tmp_path):
        assert as_source(trace) is trace
        path = tmp_path / "t.trc"
        write_text_trace(trace, path)
        assert isinstance(as_source(path), TextTraceSource)
        assert isinstance(as_source(iter([(1, True)])), IterableTraceSource)
        with pytest.raises(TypeError):
            as_source(42)

    def test_iterable_source_chunks_and_single_shot(self):
        pairs = [(i, i % 2 == 0) for i in range(10)]
        source = IterableTraceSource(iter(pairs), name="gen")
        chunks = list(source.chunks(4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert list(_join(chunks).iter_pairs()) == pairs
        with pytest.raises(RuntimeError):
            list(source.chunks(4))  # plain iterables are one-shot

    def test_callable_source_is_replayable(self):
        pairs = [(i, False) for i in range(5)]
        source = IterableTraceSource(lambda: iter(pairs))
        assert list(_join(source.chunks(2)).pages) == [0, 1, 2, 3, 4]
        assert list(_join(source.chunks(3)).pages) == [0, 1, 2, 3, 4]

    def test_default_chunking_for_streams(self):
        source = IterableTraceSource(lambda: iter([(1, False)] * 10))
        (only,) = list(source.chunks(None))
        assert len(only) == 10
        assert DEFAULT_CHUNK_REQUESTS >= 1 << 12


class TestFileSources:
    def test_text_source_streams_file(self, trace, tmp_path):
        path = tmp_path / "t.trc"
        write_text_trace(trace, path)
        source = open_trace_source(path)
        assert isinstance(source, TextTraceSource)
        assert source.name == trace.name
        assert source.page_size == trace.page_size
        assert source.request_count is None  # unknown without a scan
        assert materialize(source) == trace

    def test_npz_source(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        source = open_trace_source(path)
        assert isinstance(source, NpzTraceSource)
        assert source.request_count == len(trace)
        assert _join(source.chunks(100)) == trace

    def test_whole_trace_readers_deprecated(self, trace, tmp_path):
        path = tmp_path / "t.trc"
        write_text_trace(trace, path)
        with pytest.deprecated_call():
            assert read_text_trace(path) == trace


# ----------------------------------------------------------------------
# Content identity
# ----------------------------------------------------------------------
class TestScanDigest:
    def test_digest_is_chunk_size_invariant(self, trace):
        digests = {scan_source(trace, chunk_size=size).digest
                   for size in (1, 13, 999, None)}
        assert len(digests) == 1

    def test_digest_covers_content_not_container(self, trace, tmp_path):
        text = tmp_path / "t.trc"
        binary = tmp_path / "t.npz"
        write_text_trace(trace, text)
        save_trace(trace, binary)
        assert scan_source(open_trace_source(text)).digest \
            == scan_source(open_trace_source(binary)).digest \
            == scan_source(trace).digest

    def test_digest_separates_pages_from_writes(self):
        # Interleave-sensitive: same multiset of bytes, different
        # (page, write) assignment must digest differently.
        a = Trace([1, 2], [True, False], name="a")
        b = Trace([1, 2], [False, True], name="a")
        assert scan_source(a).digest != scan_source(b).digest

    def test_scan_statistics(self, trace):
        scan = scan_source(trace)
        assert scan.requests == len(trace)
        assert scan.unique_pages == trace.unique_pages
        assert scan.write_requests == int(np.count_nonzero(trace.is_write))


class TestTraceStore:
    def test_spill_and_reopen_round_trips(self, trace, tmp_path):
        store = TraceStore(tmp_path / "store")
        spec = store.add(trace, name="spilled")
        assert spec.name == "spilled"
        assert spec.requests == len(trace)
        reopened = spec.open()
        assert reopened.request_count == spec.requests  # scan rides along
        assert materialize(reopened).renamed(trace.name) == trace
        assert scan_source(spec.open()).digest == spec.digest

    def test_file_backed_sources_referenced_in_place(self, trace, tmp_path):
        path = tmp_path / "t.trc"
        write_text_trace(trace, path)
        store = TraceStore(tmp_path / "store")
        spec = store.add(path)
        assert spec.path == str(path)
        assert not (tmp_path / "store").exists()  # no copy was made

    def test_same_content_converges_on_one_file(self, trace, tmp_path):
        store = TraceStore(tmp_path / "store")
        a = store.add(trace)
        b = store.add(trace)
        assert a.digest == b.digest
        assert a.path == b.path

    def test_sourcespec_identity_excludes_path(self, trace, tmp_path):
        store = TraceStore(tmp_path / "store")
        spec = store.add(trace)
        moved = dataclasses.replace(spec, path="/somewhere/else.trc")
        assert moved.identity_dict() == spec.identity_dict()
        assert "path" not in spec.identity_dict()
        assert SourceSpec.from_dict(spec.to_dict()) == spec


# ----------------------------------------------------------------------
# RunSpec integration
# ----------------------------------------------------------------------
@pytest.fixture
def stored(tmp_path) -> SourceSpec:
    trace = zipf_workload(pages=120, requests=2_500, alpha=1.15,
                          write_ratio=0.3, seed=5)
    return TraceStore(tmp_path / "traces").add(trace, name="ext")


class TestRunSpecSource:
    def test_round_trip_and_digest_path_independence(self, stored):
        spec = RunSpec.for_source(stored, policy="proposed",
                                  warmup_fraction=0.2)
        assert spec.workload == "ext"
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()
        moved = dataclasses.replace(
            spec, source=dataclasses.replace(stored, path="/elsewhere.trc"))
        assert moved.digest() == spec.digest()

    def test_sourceless_digests_unchanged(self):
        # The source field postdates the cache format; profile-rendered
        # specs keep their pinned pre-source digests.
        assert RunSpec("dedup").digest() == "40b471fba25ce8a941b10cec"

    def test_streamed_equals_materialised_execution(self, stored):
        spec = RunSpec.for_source(stored, policy="proposed",
                                  warmup_fraction=0.2)
        streamed = spec.execute()  # instance=None: streams the file
        materialised = spec.execute(instance=spec.render())
        assert streamed.to_dict() == materialised.to_dict()

    @pytest.mark.parametrize("engine", ["analytic", "sampled"])
    def test_fast_engines_accept_sources(self, stored, engine):
        spec = RunSpec.for_source(stored, policy="proposed", engine=engine)
        result = spec.execute()
        assert result.performance.amat > 0

    def test_executor_caches_source_specs(self, stored, tmp_path):
        spec = RunSpec.for_source(stored, policy="proposed")
        executor = ParallelExecutor(jobs=1,
                                    cache=ResultCache(tmp_path / "cache"))
        first = executor.submit([spec])
        second = executor.submit([spec])
        assert first[0].to_dict() == second[0].to_dict()
        assert executor.stats.cache_hits == 1
        assert executor.stats.simulated == 1

    def test_pool_path_pickles_source_specs(self, stored):
        specs = [RunSpec.for_source(stored, policy=p)
                 for p in ("proposed", "clock-dwf")]
        results = execute_specs(specs, jobs=2)
        assert len(results) == 2
        assert results[0].to_dict() != results[1].to_dict()


# ----------------------------------------------------------------------
# ResultCache concurrent writers
# ----------------------------------------------------------------------
class TestResultCacheConcurrency:
    def test_concurrent_puts_never_corrupt(self, tmp_path):
        spec = RunSpec("dedup", request_scale=0.02)
        result = spec.execute()
        cache = ResultCache(tmp_path / "cache", version="v-test")
        errors: list[BaseException] = []

        def hammer() -> None:
            try:
                for _ in range(25):
                    cache.put(spec, result)
                    got = cache.get(spec)
                    # A reader may race the very first write, but must
                    # never see a torn file (get() treats corrupt JSON
                    # as a miss — so also check the raw bytes parse).
                    if got is not None:
                        json.loads(
                            cache.path_for(spec).read_text("utf-8"))
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        final = cache.get(spec)
        assert final is not None
        assert final.to_dict() == result.to_dict()
        leftovers = list((tmp_path / "cache").glob("*.tmp"))
        assert leftovers == []
