"""Tests for hybrid-memory sizing and migration cost helpers."""

from __future__ import annotations

import pytest

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec


def _spec(dram_pages=10, nvm_pages=90, **kwargs) -> HybridMemorySpec:
    return HybridMemorySpec(
        dram=dram_spec(), nvm=pcm_spec(), disk=hdd_spec(),
        dram_pages=dram_pages, nvm_pages=nvm_pages, **kwargs,
    )


class TestPageFactor:
    def test_default_is_64(self):
        # 4 KB pages over 64 B lines (paper Section II-A + Table II)
        assert _spec().page_factor == 64

    def test_custom_granularity(self):
        assert _spec(access_size=8).page_factor == 512

    def test_page_size_must_be_multiple(self):
        with pytest.raises(ValueError):
            _spec(access_size=60)


class TestSizingRule:
    def test_for_footprint_follows_paper(self):
        # memory = 75% of pages, DRAM = 10% of memory (Section V-A)
        spec = HybridMemorySpec.for_footprint(1000)
        assert spec.total_pages == 750
        assert spec.dram_pages == 75
        assert spec.nvm_pages == 675

    def test_minimum_one_page_each(self):
        spec = HybridMemorySpec.for_footprint(3)
        assert spec.dram_pages >= 1
        assert spec.nvm_pages >= 1

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            HybridMemorySpec.for_footprint(100, memory_fraction=0.0)
        with pytest.raises(ValueError):
            HybridMemorySpec.for_footprint(100, dram_fraction=1.5)
        with pytest.raises(ValueError):
            HybridMemorySpec.for_footprint(0)

    def test_as_dram_only_preserves_capacity(self):
        spec = _spec()
        dram_only = spec.as_dram_only()
        assert dram_only.total_pages == spec.total_pages
        assert dram_only.nvm_pages == 0
        assert dram_only.is_dram_only

    def test_as_nvm_only_preserves_capacity(self):
        spec = _spec()
        nvm_only = spec.as_nvm_only()
        assert nvm_only.total_pages == spec.total_pages
        assert nvm_only.dram_pages == 0
        assert nvm_only.is_nvm_only

    def test_with_dram_fraction(self):
        spec = _spec().with_dram_fraction(0.5)
        assert spec.dram_pages == 50
        assert spec.nvm_pages == 50
        assert spec.total_pages == 100

    def test_empty_memory_rejected(self):
        with pytest.raises(ValueError):
            _spec(dram_pages=0, nvm_pages=0)


class TestCosts:
    def test_migration_latency_matches_eq1(self):
        spec = _spec()
        # PageFactor * (TRNVM + TWDRAM)
        assert spec.migration_latency_to_dram() == pytest.approx(
            64 * (100e-9 + 50e-9)
        )
        # PageFactor * (TRDRAM + TWNVM)
        assert spec.migration_latency_to_nvm() == pytest.approx(
            64 * (50e-9 + 350e-9)
        )

    def test_migration_energy_matches_eq2(self):
        spec = _spec()
        assert spec.migration_energy_to_dram() == pytest.approx(
            64 * (6.4e-9 + 3.2e-9)
        )
        assert spec.migration_energy_to_nvm() == pytest.approx(
            64 * (3.2e-9 + 32e-9)
        )

    def test_static_power_sums_modules(self):
        spec = _spec(dram_pages=256, nvm_pages=0)
        dram_only_power = spec.static_power
        hybrid = _spec(dram_pages=128, nvm_pages=128)
        # NVM static is 10x lower per GB, so the hybrid burns less
        assert hybrid.static_power < dram_only_power
        expected = (
            dram_spec().static_power(128 * 4096)
            + pcm_spec().static_power(128 * 4096)
        )
        assert hybrid.static_power == pytest.approx(expected)

    def test_byte_capacities(self):
        spec = _spec(dram_pages=2, nvm_pages=3)
        assert spec.dram_bytes == 8192
        assert spec.nvm_bytes == 12288
        assert spec.total_bytes == 20480
