"""Tests for the paper-claim audit module."""

from __future__ import annotations

import pytest

from repro.experiments.claims import ClaimResult, claims_hold, verify_claims
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def results():
    # reduced scale: claim *plumbing* is under test here; the full-scale
    # audit runs in benchmarks/test_claims_audit.py
    runner = ExperimentRunner(request_scale=1 / 1500,
                              footprint_scale=1 / 96)
    return verify_claims(runner)


class TestClaimAudit:
    def test_all_paper_sections_covered(self, results):
        ids = {result.claim_id for result in results}
        assert {"III.1", "III.2", "III.3", "III.4", "III.5"} <= ids
        assert {"V.1", "V.2", "V.3", "V.4", "V.5", "V.6", "V.7"} <= ids

    def test_results_are_well_formed(self, results):
        for result in results:
            assert isinstance(result, ClaimResult)
            assert result.statement
            assert result.paper_value
            assert result.measured
            assert isinstance(result.holds, bool)

    def test_claims_hold_aggregates(self, results):
        assert claims_hold(results) == all(r.holds for r in results)

    def test_most_claims_hold_at_reduced_scale(self, results):
        # the full-scale audit requires all 12; at a heavily reduced
        # scale the calibration coarsens, but the bulk must survive
        passing = sum(1 for result in results if result.holds)
        assert passing >= 9, [
            (r.claim_id, r.measured) for r in results if not r.holds
        ]

    def test_streamcluster_outlier_is_scale_independent(self, results):
        by_id = {result.claim_id: result for result in results}
        assert by_id["III.2"].holds
