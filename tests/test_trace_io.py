"""Round-trip tests for trace file formats."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.trace.io import (
    load_cpu_trace,
    load_trace,
    parse_text_trace,
    read_text_cpu_trace,
    read_text_trace,
    save_cpu_trace,
    save_trace,
    write_text_cpu_trace,
    write_text_trace,
)
from repro.trace.trace import CPUTrace, Trace


@pytest.fixture
def trace() -> Trace:
    rng = np.random.default_rng(3)
    return Trace(rng.integers(0, 100, 500), rng.random(500) < 0.4,
                 name="roundtrip", page_size=8192)


@pytest.fixture
def cpu_trace() -> CPUTrace:
    rng = np.random.default_rng(4)
    return CPUTrace(
        rng.integers(0, 1 << 20, 300),
        rng.random(300) < 0.25,
        rng.integers(0, 4, 300),
        name="cpu-roundtrip",
    )


class TestTextFormat:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.trc"
        write_text_trace(trace, path)
        with pytest.deprecated_call():  # whole-trace reader: use sources
            loaded = read_text_trace(path)
        assert loaded == trace
        assert loaded.name == "roundtrip"
        assert loaded.page_size == 8192

    def test_parse_comments_and_hex(self):
        text = io.StringIO(
            "# name: demo\n"
            "# page_size: 4096\n"
            "\n"
            "R 0x10\n"
            "W 17\n"
        )
        trace = parse_text_trace(text)
        assert trace.name == "demo"
        assert list(trace.pages) == [16, 17]
        assert list(trace.is_write) == [False, True]

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_text_trace(io.StringIO("R\n"))

    def test_parse_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            parse_text_trace(io.StringIO("Q 5\n"))

    def test_cpu_round_trip(self, cpu_trace, tmp_path):
        path = tmp_path / "cpu.trc"
        write_text_cpu_trace(cpu_trace, path)
        loaded = read_text_cpu_trace(path)
        assert np.array_equal(loaded.addresses, cpu_trace.addresses)
        assert np.array_equal(loaded.is_write, cpu_trace.is_write)
        assert np.array_equal(loaded.cores, cpu_trace.cores)
        assert loaded.name == cpu_trace.name


class TestBinaryFormat:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        with pytest.deprecated_call():  # whole-trace reader: use sources
            loaded = load_trace(path)
        assert loaded == trace
        assert loaded.name == trace.name

    def test_cpu_round_trip(self, cpu_trace, tmp_path):
        path = tmp_path / "cpu.npz"
        save_cpu_trace(cpu_trace, path)
        loaded = load_cpu_trace(path)
        assert np.array_equal(loaded.addresses, cpu_trace.addresses)
        assert np.array_equal(loaded.cores, cpu_trace.cores)
        assert loaded.name == cpu_trace.name

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_trace(Trace.empty(name="nothing"), path)
        with pytest.deprecated_call():  # whole-trace reader: use sources
            loaded = load_trace(path)
        assert len(loaded) == 0
        assert loaded.name == "nothing"
