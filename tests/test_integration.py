"""Cross-policy integration and metamorphic properties.

These tests treat every registered policy as a black box and check the
invariants any correct hybrid-memory policy must satisfy:

* conservation — every request is accounted exactly once;
* capacity — residency never exceeds the configured frames;
* determinism — same trace, same spec, same result;
* renaming invariance — policies may not depend on page-id values,
  only on identity, so a random bijection of page numbers must leave
  every metric unchanged (static-partition is exempt: it hashes ids by
  design);
* model sanity — AMAT and APPR respond to device parameters the way
  Eq. 1/2 dictate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import simulate
from repro.policies.registry import available_policies, policy_factory
from repro.trace.trace import Trace
from repro.trace.transform import remap_random
from repro.workloads.synthetic import (
    pingpong_workload,
    scan_loop_workload,
    zipf_workload,
)

HYBRID_POLICIES = (
    "proposed", "adaptive", "clock-dwf", "pdram", "eager-migration",
    "never-migrate", "static-partition",
)


def _spec_for(trace: Trace) -> HybridMemorySpec:
    return HybridMemorySpec.for_footprint(max(trace.unique_pages, 4))


@pytest.fixture(scope="module")
def traces() -> dict[str, Trace]:
    return {
        "zipf": zipf_workload(pages=256, requests=12_000, seed=1),
        "loop": scan_loop_workload(pages=256, window=150,
                                   requests=12_000, seed=2),
        "pingpong": pingpong_workload(pages=256, requests=12_000, seed=3),
    }


class TestConservationAndCapacity:
    @pytest.mark.parametrize("policy_name", HYBRID_POLICIES)
    @pytest.mark.parametrize("trace_name", ["zipf", "loop", "pingpong"])
    def test_invariants(self, traces, policy_name, trace_name):
        trace = traces[trace_name]
        spec = _spec_for(trace)
        result = simulate(trace, spec, policy_factory(policy_name),
                          validate_every=1234)
        acct = result.accounting
        acct.validate()
        assert acct.total_requests == len(trace)
        assert acct.read_requests == trace.read_count
        assert acct.page_faults - acct.evictions_to_disk <= \
            spec.total_pages
        # wear bookkeeping agrees with the write-breakdown model
        assert result.wear.total_writes == result.nvm_writes.total


class TestDeterminism:
    @pytest.mark.parametrize("policy_name", HYBRID_POLICIES)
    def test_bitwise_repeatability(self, traces, policy_name):
        trace = traces["zipf"]
        spec = _spec_for(trace)
        first = simulate(trace, spec, policy_factory(policy_name))
        second = simulate(trace, spec, policy_factory(policy_name))
        assert first.accounting == second.accounting
        assert first.wear.page_writes == second.wear.page_writes


class TestRenamingInvariance:
    @pytest.mark.parametrize("policy_name", [
        "proposed", "adaptive", "clock-dwf", "pdram",
        "eager-migration", "never-migrate",
    ])
    def test_metrics_survive_page_renaming(self, traces, policy_name):
        trace = traces["zipf"]
        renamed = remap_random(trace, seed=9)
        spec = _spec_for(trace)
        original = simulate(trace, spec, policy_factory(policy_name))
        remapped = simulate(renamed, spec, policy_factory(policy_name))
        assert original.accounting == remapped.accounting
        assert original.amat == pytest.approx(remapped.amat)
        assert original.appr == pytest.approx(remapped.appr)


class TestModelSanity:
    def test_slower_nvm_raises_amat_not_hits(self, traces):
        trace = traces["zipf"]
        base_spec = _spec_for(trace)
        slow_nvm = HybridMemorySpec(
            dram=dram_spec(), nvm=pcm_spec().scaled(latency=3.0),
            disk=hdd_spec(),
            dram_pages=base_spec.dram_pages,
            nvm_pages=base_spec.nvm_pages,
        )
        fast = simulate(trace, base_spec, policy_factory("proposed"))
        slow = simulate(trace, slow_nvm, policy_factory("proposed"))
        # identical placement decisions (latency is not an input to the
        # policy), so accounting matches but the model output moves
        assert fast.accounting == slow.accounting
        assert slow.performance.memory_time > fast.performance.memory_time

    def test_cheaper_nvm_energy_lowers_appr(self, traces):
        trace = traces["pingpong"]
        base_spec = _spec_for(trace)
        cheap_nvm = HybridMemorySpec(
            dram=dram_spec(), nvm=pcm_spec().scaled(energy=0.25),
            disk=hdd_spec(),
            dram_pages=base_spec.dram_pages,
            nvm_pages=base_spec.nvm_pages,
        )
        expensive = simulate(trace, base_spec, policy_factory("proposed"))
        cheap = simulate(trace, cheap_nvm, policy_factory("proposed"))
        assert cheap.power.appr < expensive.power.appr

    def test_bigger_memory_fewer_faults(self, traces):
        trace = traces["zipf"]
        small = HybridMemorySpec.for_footprint(trace.unique_pages,
                                               memory_fraction=0.4)
        large = HybridMemorySpec.for_footprint(trace.unique_pages,
                                               memory_fraction=0.95)
        small_run = simulate(trace, small, policy_factory("proposed"))
        large_run = simulate(trace, large, policy_factory("proposed"))
        assert large_run.accounting.page_faults < \
            small_run.accounting.page_faults


class TestPolicyOrderings:
    """The qualitative orderings the paper's argument depends on."""

    def test_proposed_beats_dwf_on_pingpong(self, traces):
        trace = traces["pingpong"]
        spec = _spec_for(trace)
        proposed = simulate(trace, spec, policy_factory("proposed"))
        dwf = simulate(trace, spec, policy_factory("clock-dwf"))
        assert proposed.accounting.migrations < dwf.accounting.migrations
        assert proposed.performance.memory_time < \
            dwf.performance.memory_time
        assert proposed.nvm_writes.total < dwf.nvm_writes.total

    def test_eager_is_worst_migrator(self, traces):
        trace = traces["zipf"]
        spec = _spec_for(trace)
        runs = {
            name: simulate(trace, spec, policy_factory(name))
            for name in ("proposed", "clock-dwf", "eager-migration")
        }
        eager = runs["eager-migration"].accounting.migrations
        assert eager >= runs["proposed"].accounting.migrations
        assert eager >= runs["clock-dwf"].accounting.migrations

    def test_never_migrate_has_cheapest_migration_term(self, traces):
        trace = traces["zipf"]
        spec = _spec_for(trace)
        never = simulate(trace, spec, policy_factory("never-migrate"))
        proposed = simulate(trace, spec, policy_factory("proposed"))
        assert never.accounting.migrations_to_dram == 0
        # but the proposed scheme buys lower service time with its
        # (few) promotions on a zipf-skewed trace
        assert proposed.performance.request_time <= \
            never.performance.request_time * 1.05


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    write_ratio=st.floats(min_value=0.0, max_value=1.0),
)
def test_every_policy_survives_arbitrary_small_traces(seed, write_ratio):
    """Fuzz: tiny random traces with any write mix must not break any
    registered policy or any invariant."""
    trace = zipf_workload(pages=24, requests=600,
                          write_ratio=write_ratio, seed=seed)
    for policy_name in available_policies():
        spec = _spec_for(trace)
        if policy_name.startswith("dram-only"):
            spec = spec.as_dram_only()
        elif policy_name.startswith("nvm-only"):
            spec = spec.as_nvm_only()
        result = simulate(trace, spec, policy_factory(policy_name),
                          validate_every=150)
        result.accounting.validate()
