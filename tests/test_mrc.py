"""Tests for miss-ratio curves, validated against real LRU simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.replacement import LRUReplacement
from repro.trace.mrc import miss_ratio_curve, stack_distances
from repro.trace.trace import Trace


def _lru_miss_ratio(trace: Trace, capacity: int) -> float:
    """Ground truth: actually run an LRU of the given capacity."""
    lru = LRUReplacement(capacity)
    misses = 0
    for page, _ in trace.iter_pairs():
        if page in lru:
            lru.hit(page)
        else:
            misses += 1
            if lru.full:
                lru.evict()
            lru.insert(page)
    return misses / len(trace)


class TestStackDistances:
    def test_first_touches_are_minus_one(self):
        trace = Trace([1, 2, 3], [False] * 3)
        assert stack_distances(trace).tolist() == [-1, -1, -1]

    def test_immediate_reuse_is_zero(self):
        trace = Trace([1, 1, 1], [False] * 3)
        assert stack_distances(trace).tolist() == [-1, 0, 0]

    def test_classic_example(self):
        # a b c a : 'a' has two distinct pages on top when reused
        trace = Trace([1, 2, 3, 1], [False] * 4)
        assert stack_distances(trace).tolist() == [-1, -1, -1, 2]

    def test_sample_cap(self):
        trace = Trace(list(range(100)), [False] * 100)
        assert stack_distances(trace, sample_cap=10).shape[0] == 10


class TestMissRatioCurve:
    def test_monotone_nonincreasing(self, zipf_trace):
        curve = miss_ratio_curve(zipf_trace)
        ratios = list(curve.miss_ratios)
        assert ratios == sorted(ratios, reverse=True)

    def test_full_capacity_leaves_only_cold_misses(self, zipf_trace):
        curve = miss_ratio_curve(zipf_trace)
        assert curve.miss_ratio_at(zipf_trace.unique_pages) == \
            pytest.approx(curve.compulsory_miss_ratio)

    def test_matches_real_lru_simulation(self, zipf_trace):
        """The inclusion-property shortcut must agree exactly with an
        actual LRU run at every tested capacity."""
        capacities = (4, 8, 16, 32, 64)
        curve = miss_ratio_curve(zipf_trace, capacities=capacities)
        for capacity, predicted in zip(capacities, curve.miss_ratios):
            assert predicted == pytest.approx(
                _lru_miss_ratio(zipf_trace, capacity)
            ), capacity

    def test_loop_cliff(self):
        """A loop of N pages has the famous LRU cliff: ~100% misses
        below N, ~0% above."""
        loop = Trace(list(range(20)) * 50, [False] * 1000)
        curve = miss_ratio_curve(loop, capacities=(10, 19, 20, 25))
        assert curve.miss_ratio_at(10) > 0.95
        assert curve.miss_ratio_at(19) > 0.95
        assert curve.miss_ratio_at(20) < 0.05
        assert curve.miss_ratio_at(25) < 0.05

    def test_capacity_for_target(self, zipf_trace):
        curve = miss_ratio_curve(zipf_trace)
        capacity = curve.capacity_for(0.05)
        assert curve.miss_ratio_at(capacity) <= 0.05 or \
            capacity == curve.capacities[-1]

    def test_empty_trace(self):
        curve = miss_ratio_curve(Trace.empty())
        assert curve.total_accesses == 0
        assert curve.compulsory_miss_ratio == 0.0

    def test_paper_sizing_rule_context(self):
        """For a PARSEC-like hot-set trace, the paper's 75%-of-footprint
        capacity sits past the knee: most of the attainable hit ratio
        is already banked there."""
        from repro.workloads.synthetic import zipf_workload

        trace = zipf_workload(pages=200, requests=30_000, alpha=1.2,
                              seed=9)
        curve = miss_ratio_curve(trace)
        capacity = round(0.75 * trace.unique_pages)
        at_rule = curve.miss_ratio_at(capacity)
        at_half_rule = curve.miss_ratio_at(capacity // 2)
        floor = curve.compulsory_miss_ratio
        # the knee: halving the capacity hurts much more than the rule
        # itself gives up relative to the compulsory floor
        assert (at_half_rule - floor) > 2 * (at_rule - floor)


@settings(max_examples=40, deadline=None)
@given(
    pages=st.lists(st.integers(min_value=0, max_value=30),
                   min_size=1, max_size=250),
    capacity=st.integers(min_value=1, max_value=12),
)
def test_mrc_equals_lru_for_any_trace(pages, capacity):
    trace = Trace(pages, [False] * len(pages))
    curve = miss_ratio_curve(trace, capacities=(capacity,))
    assert curve.miss_ratios[0] == pytest.approx(
        _lru_miss_ratio(trace, capacity)
    )
