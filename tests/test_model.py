"""Tests for the analytic engine: Markov solvers, workload profiling,
tier-membership propagation, the estimators and the RunSpec plumbing
(engine identity, digests, cache integration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.executor import ParallelExecutor, ResultCache
from repro.experiments.runspec import ENGINES, RunSpec
from repro.mmu.simulator import RunResult
from repro.model import (
    ANALYTIC_POLICIES,
    UnsupportedPolicyError,
    characteristic_time,
    estimate_run,
    estimate_spec,
    profile_trace,
    profile_workload,
    promotion_probability,
    supports_policy,
    survival_probability,
)
from repro.model.estimator import _fill_residency
from repro.model.markov import occupancy, promotion_steps
from repro.trace.mrc import stack_distances
from repro.trace.trace import Trace
from repro.workloads.parsec import parsec_workload

SCALE = 0.0005  # fast grid scale shared with the validation suite


def _trace(pages, writes=None, name="t"):
    pages = list(pages)
    writes = [False] * len(pages) if writes is None else list(writes)
    return Trace(
        name=name,
        pages=np.asarray(pages, dtype=np.int64),
        is_write=np.asarray(writes, dtype=bool),
    )


# ---------------------------------------------------------------------------
# Markov-chain building blocks
# ---------------------------------------------------------------------------
class TestCharacteristicTime:
    def test_everything_fits_never_evicts(self):
        rates = np.array([0.1, 0.2, 0.3])
        assert characteristic_time(rates, 3) == np.inf
        assert characteristic_time(rates, 10) == np.inf

    def test_empty_or_zero_capacity(self):
        assert characteristic_time(np.array([]), 4) == 0.0
        assert characteristic_time(np.array([0.5]), 0) == 0.0

    def test_fixed_point_satisfies_che_equation(self):
        rng = np.random.default_rng(7)
        rates = rng.uniform(0.001, 0.2, size=64)
        for capacity in (4, 16, 48):
            t = characteristic_time(rates, capacity)
            assert occupancy(rates, t) == pytest.approx(capacity, rel=1e-6)

    def test_monotone_in_capacity(self):
        rates = np.linspace(0.01, 0.2, 32)
        times = [characteristic_time(rates, c) for c in (4, 8, 16)]
        assert times[0] < times[1] < times[2]


class TestSurvival:
    def test_edges(self):
        rates = np.array([0.0, 0.5])
        assert survival_probability(rates, 0.0).tolist() == [0.0, 0.0]
        assert survival_probability(rates, np.inf).tolist() == [0.0, 1.0]

    def test_matches_closed_form(self):
        rates = np.array([0.25])
        assert survival_probability(rates, 2.0)[0] == pytest.approx(
            1.0 - np.exp(-0.5)
        )


class TestPromotionChain:
    def test_threshold_zero_is_geometric_race(self):
        # Any same-direction access promotes; racing death at 1 - A.
        in_window = np.array([0.3])
        in_queue = np.array([0.6])
        fraction = np.array([1.0])
        win = 0.6 * 1.0  # tick + restart = A * f when f covers both
        expected = win / (win + (1.0 - 0.6))
        got = promotion_probability(in_window, in_queue, fraction, 0)
        assert got[0] == pytest.approx(expected)

    def test_immortal_resident_always_promotes(self):
        # in_queue == 1: the page never ages out, so promotion (at any
        # finite threshold) is certain as long as it ticks at all.
        p = promotion_probability(
            np.array([0.9]), np.array([1.0]), np.array([0.5]), 4
        )
        assert p[0] == pytest.approx(1.0, abs=1e-9)

    def test_monotone_in_threshold(self):
        in_window = np.array([0.5])
        in_queue = np.array([0.8])
        fraction = np.array([0.7])
        probs = [
            promotion_probability(in_window, in_queue, fraction, t)[0]
            for t in (0, 1, 4, 16)
        ]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_steps_lower_bound_and_monotone(self):
        in_window = np.array([0.5])
        in_queue = np.array([0.9])
        fraction = np.array([0.5])
        steps = [
            promotion_steps(in_window, in_queue, fraction, t)[0]
            for t in (0, 1, 4, 16)
        ]
        assert steps[0] >= 1.0
        assert all(a <= b for a, b in zip(steps, steps[1:]))

    def test_steps_threshold_zero_is_inverse_rate(self):
        s = promotion_steps(
            np.array([0.25]), np.array([0.5]), np.array([1.0]), 0
        )
        assert s[0] == pytest.approx(1.0 / 0.5)


# ---------------------------------------------------------------------------
# Workload profiling
# ---------------------------------------------------------------------------
class TestProfile:
    def test_fenwick_distances_match_reference(self):
        rng = np.random.default_rng(11)
        trace = _trace(rng.integers(0, 40, size=600))
        profile = profile_trace(trace)
        expected = stack_distances(trace)
        assert np.array_equal(profile.distances, expected)

    def test_write_distance_tracks_written_ordering(self):
        # Pages 0,1,2 written in order, then page 0 read: two distinct
        # pages (1, 2) written since 0's last write.
        trace = _trace([0, 1, 2, 0], writes=[True, True, True, False])
        profile = profile_trace(trace)
        assert profile.write_distances.tolist() == [-1, -1, -1, 2]

    def test_boundary_and_measured_slice(self):
        trace = _trace(range(10))
        profile = profile_trace(trace, warmup_fraction=0.3)
        assert profile.boundary == 3
        assert profile.requests == 7
        assert profile.measured == slice(3, 10)
        assert profile.warmup_distinct == 3

    def test_sample_cap_scales_weight(self):
        trace = _trace(list(range(5)) * 40)
        profile = profile_trace(trace, sample_cap=100)
        assert profile.sampled == 100
        assert profile.weight == pytest.approx(2.0)
        assert profile.requests == 200  # totals stay exact

    def test_profile_workload_uses_instance_warmup(self):
        instance = parsec_workload("dedup", request_scale=SCALE)
        profile = profile_workload(instance)
        total = len(instance.trace.pages)
        assert profile.boundary == int(total * instance.warmup_fraction)
        assert profile.requests == total - profile.boundary


# ---------------------------------------------------------------------------
# Tier-membership propagation
# ---------------------------------------------------------------------------
class TestFillResidency:
    def _inputs(self, pages, frames):
        trace = _trace(pages)
        profile = profile_trace(trace)
        fault = (profile.distances < 0) | (profile.distances >= 1 << 30)
        return profile.page_index, fault, profile.distances, frames

    def test_rehit_page_stays_resident(self):
        # Page 0 re-accessed every other slot: one distinct intervener
        # per gap, below frames=2, so it is never demoted.
        pages = [0, 1, 0, 2, 0, 3, 0, 4, 0]
        index, fault, distinct, frames = self._inputs(pages, 2)
        resident = _fill_residency(index, fault, distinct, frames)
        own = resident[np.asarray(pages) == 0]
        assert own.tolist() == [False] + [True] * 4  # fault then hits

    def test_wide_gap_demotes(self):
        # Page 0's second access comes after 4 distinct fills with
        # frames=2: sunk past the list end, so not resident (and no
        # later fault to re-admit it).
        pages = [0, 1, 2, 3, 4, 0]
        index, fault, distinct, frames = self._inputs(pages, 2)
        resident = _fill_residency(index, fault, distinct, frames)
        assert not resident[5]

    def test_refault_readmits(self):
        # Same wide gap, but capacity 4 < 5 distinct pages makes the
        # return access a fault at total capacity in the caller; here
        # model the fault mask directly: a faulting access re-enters.
        pages = [0, 1, 2, 3, 4, 0, 0]
        trace = _trace(pages)
        profile = profile_trace(trace)
        fault = (profile.distances < 0) | (profile.distances >= 4)
        resident = _fill_residency(
            profile.page_index, fault, profile.distances, 2
        )
        assert fault[5]  # the return access itself faults back in
        assert resident[6]  # and the follow-up hit is DRAM-resident

    def test_dram_hit_pressure_counts(self):
        # Without hit pressure page 1 survives its gap (only one fill);
        # page 0's two DRAM re-hits of a *single* distinct page add one
        # more distinct intervener and push page 1 out of 2 frames.
        pages = [0, 1, 0, 0, 5, 1]
        index, fault, distinct, frames = self._inputs(pages, 2)
        no_hits = _fill_residency(index, fault, distinct, frames)
        assert no_hits[5]
        with_hits = _fill_residency(index, fault, distinct, frames,
                                    dram_hits=no_hits)
        assert not with_hits[5]

    def test_empty_and_zero_frames(self):
        index, fault, distinct, _ = self._inputs([0, 1, 0], 2)
        assert _fill_residency(index, fault, distinct, 0).tolist() == [
            False, False, False,
        ]
        empty = np.array([], dtype=np.int64)
        assert _fill_residency(
            empty, empty.astype(bool), empty, 4
        ).shape == (0,)


# ---------------------------------------------------------------------------
# Estimators
# ---------------------------------------------------------------------------
class TestEstimators:
    @pytest.fixture(scope="class")
    def instance(self):
        return parsec_workload("dedup", request_scale=SCALE)

    @pytest.fixture(scope="class")
    def profile(self, instance):
        return profile_workload(instance)

    def test_single_tier_hit_ratio_is_exact(self, instance, profile):
        for policy in ("dram-only", "nvm-only"):
            spec = RunSpec.core("dedup", policy, request_scale=SCALE)
            sim = spec.execute(instance=instance)
            est = estimate_run(
                profile, spec.machine_spec(instance), policy=policy,
                inter_request_gap=instance.inter_request_gap,
            )
            assert est.accounting.hit_ratio == pytest.approx(
                sim.accounting.hit_ratio, abs=1e-9
            )
            assert est.accounting.total_requests == \
                sim.accounting.total_requests

    def test_estimates_validate_and_score(self, instance, profile):
        for policy in ("proposed", "clock-dwf"):
            spec = RunSpec.core("dedup", policy, request_scale=SCALE)
            result = estimate_run(
                profile, spec.machine_spec(instance), policy=policy,
                inter_request_gap=instance.inter_request_gap,
            )
            assert isinstance(result, RunResult)
            assert result.performance.amat > 0
            assert result.power.appr > 0
            result.accounting.validate()  # internally consistent

    def test_unsupported_policy_raises(self, instance, profile):
        with pytest.raises(UnsupportedPolicyError, match="pdram"):
            estimate_run(profile, instance.spec, policy="pdram")
        assert not supports_policy("pdram")
        assert supports_policy("proposed")
        assert supports_policy("dram-only-clock")
        assert "proposed" in ANALYTIC_POLICIES

    def test_overrides_only_for_proposed(self, instance, profile):
        with pytest.raises(UnsupportedPolicyError, match="overrides"):
            estimate_run(profile, instance.spec, policy="clock-dwf",
                         overrides={"read_threshold": 4})
        with pytest.raises(UnsupportedPolicyError, match="MigrationConfig"):
            estimate_run(profile, instance.spec, policy="proposed",
                         overrides={"bogus_knob": 1})

    def test_threshold_sensitivity_direction(self, instance, profile):
        promos = []
        for threshold in (1, 64):
            result = estimate_run(
                profile, instance.spec, policy="proposed",
                overrides={"read_threshold": threshold,
                           "write_threshold": threshold},
            )
            promos.append(result.accounting.migrations_to_dram)
        assert promos[0] > promos[1]  # lower threshold, more promotions


# ---------------------------------------------------------------------------
# RunSpec engine identity and digests
# ---------------------------------------------------------------------------
class TestEngineSpec:
    def test_engines_vocabulary(self):
        assert ENGINES == ("simulate", "analytic", "sampled")
        with pytest.raises(ValueError, match="unknown engine"):
            RunSpec(workload="dedup", engine="quantum")

    def test_pre_engine_digests_unchanged(self):
        # Golden digests computed at the seed commit, before the engine
        # field existed: default-engine specs must keep them so warm
        # on-disk caches stay valid.
        golden = {
            RunSpec(workload="dedup"): "40b471fba25ce8a941b10cec",
            RunSpec.core("canneal", "dram-only", seed=7):
                "5f501987ffc8a0a96076d4bd",
            RunSpec(workload="x264", policy="proposed",
                    policy_overrides={"read_threshold": 8},
                    warmup_fraction=0.25):
                "e52033067415d6ec4c7fcff7",
        }
        for spec, digest in golden.items():
            assert spec.digest() == digest

    def test_analytic_digest_distinct_and_stable(self):
        simulate = RunSpec(workload="dedup")
        analytic = RunSpec(workload="dedup", engine="analytic")
        assert analytic.digest() != simulate.digest()
        assert analytic.digest() == "e021d6c06c8d079fe146f5b4"
        assert analytic != simulate
        assert analytic.key() != simulate.key()

    def test_round_trip_preserves_engine(self):
        spec = RunSpec(workload="vips", engine="analytic",
                       policy_overrides={"read_threshold": 4})
        back = RunSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.digest() == spec.digest()
        # Legacy payloads (no engine key) deserialise as simulations.
        legacy = spec.to_dict()
        del legacy["engine"]
        assert RunSpec.from_dict(legacy).engine == "simulate"

    def test_label_names_non_default_engine(self):
        assert "analytic" in RunSpec(workload="dedup",
                                     engine="analytic").label()
        assert "simulate" not in RunSpec(workload="dedup").label()

    def test_core_transform_independent_of_engine(self):
        # The single-module normalisation is derived from the policy
        # name alone: analytic baselines get the same transform.
        for policy, transform in (("dram-only", ("dram-only",)),
                                  ("nvm-only", ("nvm-only",)),
                                  ("nvm-only-clock", ("nvm-only",))):
            sim = RunSpec.core("dedup", policy)
            ana = RunSpec.core("dedup", policy, engine="analytic")
            assert sim.spec_transform == transform
            assert ana.spec_transform == transform

    def test_analytic_rejects_events_and_factory(self):
        from repro.obs.config import EventConfig

        with pytest.raises(ValueError, match="event stream"):
            RunSpec(workload="dedup", engine="analytic",
                    events=EventConfig(trace=True))
        spec = RunSpec(workload="dedup", engine="analytic",
                       request_scale=SCALE)
        with pytest.raises(ValueError, match="factory"):
            spec.execute(factory=lambda mm: None)


# ---------------------------------------------------------------------------
# Execution plumbing: estimate_spec, executor, cache
# ---------------------------------------------------------------------------
class TestEnginePlumbing:
    def test_execute_dispatches_to_estimator(self):
        spec = RunSpec.core("dedup", "proposed", request_scale=SCALE,
                            engine="analytic")
        direct = estimate_spec(spec)
        via_execute = spec.execute()
        assert via_execute.accounting.to_dict() == \
            direct.accounting.to_dict()
        assert via_execute.events is None

    def test_profile_cache_reuse(self):
        from repro.model import estimator

        estimator._PROFILES.clear()
        first = RunSpec.core("dedup", "proposed", request_scale=SCALE,
                             engine="analytic")
        second = RunSpec.core("dedup", "clock-dwf", request_scale=SCALE,
                              engine="analytic")
        estimate_spec(first)
        assert len(estimator._PROFILES) == 1
        profile = next(iter(estimator._PROFILES.values()))
        estimate_spec(second)
        assert len(estimator._PROFILES) == 1
        assert next(iter(estimator._PROFILES.values())) is profile

    def test_executor_and_cache_treat_analytic_as_ordinary(self, tmp_path):
        specs = [
            RunSpec.core("dedup", policy, request_scale=SCALE,
                         engine="analytic")
            for policy in ("proposed", "dram-only")
        ]
        cold = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        first = cold.submit(specs)
        assert cold.stats.cache_misses == 2
        warm = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        second = warm.submit(specs)
        assert warm.stats.cache_hits == 2
        assert warm.stats.simulated == 0
        for a, b in zip(first, second):
            assert a.accounting.to_dict() == b.accounting.to_dict()
            assert a.policy == b.policy

    def test_analytic_and_simulate_cache_separately(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(jobs=1, cache=cache)
        sim = RunSpec.core("dedup", "dram-only", request_scale=SCALE)
        ana = RunSpec.core("dedup", "dram-only", request_scale=SCALE,
                           engine="analytic")
        executor.submit([sim, ana])
        assert executor.stats.cache_misses == 2  # distinct entries
