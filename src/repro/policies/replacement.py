"""Single-tier page replacement algorithms.

These manage *one* memory module (they are what the paper means by
"conventional algorithms"): plain LRU, CLOCK (second chance), and the
two stronger baselines the paper name-checks, CLOCK-Pro and CAR, live
in their own modules but implement the same interface.

The interface is deliberately minimal so the same implementations serve
the DRAM-only and NVM-only baselines, the NVM side of ad-hoc hybrids,
and the ablation harness.
"""

from __future__ import annotations

import abc

from repro.core.lru import LRUQueue


class ReplacementAlgorithm(abc.ABC):
    """Replacement state for a fixed-capacity set of resident pages."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity

    @abc.abstractmethod
    def __contains__(self, page: int) -> bool:
        """Is the page resident?"""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of resident pages."""

    @abc.abstractmethod
    def hit(self, page: int, is_write: bool = False) -> None:
        """Record a hit on a resident page."""

    @abc.abstractmethod
    def insert(self, page: int, is_write: bool = False) -> None:
        """Make a page resident; capacity must allow it."""

    @abc.abstractmethod
    def evict(self) -> int:
        """Remove and return the victim page (resident set non-empty)."""

    @abc.abstractmethod
    def remove(self, page: int) -> None:
        """Forcibly remove a specific resident page (e.g. migrated away)."""

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    def validate(self) -> None:  # repro: cold
        """Structural self-check; subclasses may extend."""
        if len(self) > self.capacity:
            raise AssertionError(
                f"{type(self).__name__} over capacity: "
                f"{len(self)} > {self.capacity}"
            )


class LRUReplacement(ReplacementAlgorithm):
    """Plain least-recently-used replacement."""

    name = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._queue = LRUQueue()

    def __contains__(self, page: int) -> bool:
        return page in self._queue

    def __len__(self) -> int:
        return len(self._queue)

    def hit(self, page: int, is_write: bool = False) -> None:
        self._queue.touch(page)

    def insert(self, page: int, is_write: bool = False) -> None:
        if self.full:
            raise MemoryError("insert into full LRU; evict first")
        self._queue.push_front(page)

    def evict(self) -> int:
        return self._queue.pop_lru().page

    def remove(self, page: int) -> None:
        self._queue.remove(page)

    def pages(self) -> list[int]:
        """MRU-to-LRU page order (diagnostics/tests)."""
        return self._queue.pages()

    def validate(self) -> None:  # repro: cold
        super().validate()
        self._queue.check()


class _ClockNode:
    __slots__ = ("page", "prev", "next", "referenced")

    def __init__(self, page: int) -> None:
        self.page = page
        self.prev: "_ClockNode | None" = None
        self.next: "_ClockNode | None" = None
        self.referenced = False


class ClockReplacement(ReplacementAlgorithm):
    """CLOCK (second chance): a circular buffer with reference bits.

    The hand sweeps the ring; referenced pages get their bit cleared
    and one more round, unreferenced pages are evicted.  New pages are
    inserted behind the hand with the reference bit set.
    """

    name = "clock"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._nodes: dict[int, _ClockNode] = {}
        self._hand: _ClockNode | None = None

    def __contains__(self, page: int) -> bool:
        return page in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def hit(self, page: int, is_write: bool = False) -> None:
        self._nodes[page].referenced = True

    def insert(self, page: int, is_write: bool = False) -> None:
        if self.full:
            raise MemoryError("insert into full clock; evict first")
        if page in self._nodes:
            raise KeyError(f"page {page} already resident")
        node = _ClockNode(page)
        node.referenced = True
        self._nodes[page] = node
        if self._hand is None:
            node.prev = node
            node.next = node
            self._hand = node
        else:
            # Insert just behind the hand (the position the hand will
            # reach last), matching the textbook formulation.
            tail = self._hand.prev
            assert tail is not None
            tail.next = node
            node.prev = tail
            node.next = self._hand
            self._hand.prev = node

    def evict(self) -> int:
        if self._hand is None:
            raise IndexError("evict from empty clock")
        while True:
            node = self._hand
            if node.referenced:
                node.referenced = False
                self._hand = node.next
            else:
                self._hand = node.next
                self._unlink(node)
                del self._nodes[node.page]
                return node.page

    def remove(self, page: int) -> None:
        node = self._nodes.pop(page)
        self._unlink(node)

    def _unlink(self, node: _ClockNode) -> None:
        if node.next is node:
            self._hand = None
        else:
            assert node.prev is not None and node.next is not None
            node.prev.next = node.next
            node.next.prev = node.prev
            if self._hand is node:
                self._hand = node.next
        node.prev = None
        node.next = None

    def pages(self) -> list[int]:
        """Pages in hand order (diagnostics/tests)."""
        result: list[int] = []
        node = self._hand
        if node is None:
            return result
        while True:
            result.append(node.page)
            node = node.next
            assert node is not None
            if node is self._hand:
                break
        return result

    def validate(self) -> None:  # repro: cold
        super().validate()
        if len(self.pages()) != len(self._nodes):
            raise AssertionError("clock ring out of sync with index")
