"""Ablation variants of the proposed scheme and a static-placement baseline.

These bracket the design space around the paper's contribution:

* :class:`EagerMigrationPolicy` — the thresholds disabled (any NVM hit
  promotes).  This is what "two LRU queues without the counter
  machinery" degenerates to, and it reproduces the migration storm the
  paper criticises in CLOCK-DWF.
* :class:`NeverMigratePolicy` — promotion disabled entirely; DRAM acts
  as a FIFO-ish staging area feeding NVM.  Shows the other extreme:
  zero migration cost, but hot pages strand in NVM.
* :class:`StaticPartitionPolicy` — pages pinned to a module by hash;
  no migrations ever.  The "no management at all" reference point.
"""

from __future__ import annotations

from repro.core.config import MigrationConfig
from repro.core.migration import MigrationLRUPolicy
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.base import HybridMemoryPolicy
from repro.policies.replacement import LRUReplacement


class EagerMigrationPolicy(MigrationLRUPolicy):
    """Two plain LRUs that promote on *every* NVM hit (threshold 0)."""

    name = "eager-migration"

    def __init__(self, mm: MemoryManager) -> None:
        super().__init__(
            mm,
            MigrationConfig(
                read_window_fraction=1.0,
                write_window_fraction=1.0,
                read_threshold=0,
                write_threshold=0,
            ),
        )


class NeverMigratePolicy(MigrationLRUPolicy):
    """Two plain LRUs with promotion disabled (infinite thresholds)."""

    name = "never-migrate"

    _NEVER = 1 << 60

    def __init__(self, mm: MemoryManager) -> None:
        super().__init__(
            mm,
            MigrationConfig(
                read_window_fraction=0.0,
                write_window_fraction=0.0,
                read_threshold=self._NEVER,
                write_threshold=self._NEVER,
            ),
        )


class StaticPartitionPolicy(HybridMemoryPolicy):
    """Pages pinned to DRAM or NVM by page number; LRU within each module.

    The DRAM share of pages matches the DRAM share of frames, so both
    modules see proportionate load.  No page ever crosses modules:
    migrations are identically zero, which makes this the cleanest
    reference point for "how much is migration worth at all".
    """

    name = "static-partition"

    def __init__(self, mm: MemoryManager) -> None:
        super().__init__(mm)
        spec = mm.spec
        if spec.dram_pages < 1 or spec.nvm_pages < 1:
            raise ValueError("static partition needs both modules")
        self._modulus = spec.total_pages
        self._dram_slots = spec.dram_pages
        self.dram_lru = LRUReplacement(spec.dram_pages)
        self.nvm_lru = LRUReplacement(spec.nvm_pages)

    def _home(self, page: int) -> PageLocation:
        # Deterministic hash spreading pages across modules in
        # proportion to their frame counts.
        slot = (page * 2654435761) % self._modulus
        return (
            PageLocation.DRAM if slot < self._dram_slots else PageLocation.NVM
        )

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        home = self._home(page)
        algorithm = self.dram_lru if home is PageLocation.DRAM else self.nvm_lru
        if page in algorithm:
            algorithm.hit(page, is_write)
            self.mm.serve_hit(page, is_write)
            return
        if algorithm.full:
            victim = algorithm.evict()
            self.mm.evict_to_disk(victim)
        self.mm.fault_fill(page, home, is_write)
        algorithm.insert(page, is_write)

    def validate(self) -> None:  # repro: cold
        super().validate()
        self.dram_lru.validate()
        self.nvm_lru.validate()
