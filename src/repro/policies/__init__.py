"""Placement policies: the proposed scheme's rivals and baselines.

The ablation variants (:mod:`repro.policies.variants`) subclass the
proposed scheme from :mod:`repro.core`, which itself depends on this
package's base class — so they are exposed lazily (PEP 562) to keep
module loading acyclic whichever package is imported first.
"""

from repro.policies.base import HybridMemoryPolicy, PolicyFactory
from repro.policies.car import CARReplacement
from repro.policies.clock_dwf import ClockDWFPolicy, WriteHistoryClock
from repro.policies.clock_pro import ClockProReplacement
from repro.policies.registry import (
    available_policies,
    make_policy,
    policy_factory,
    proposed_with,
    register_policy,
    replacement_algorithm,
)
from repro.policies.replacement import (
    ClockReplacement,
    LRUReplacement,
    ReplacementAlgorithm,
)
from repro.policies.single_tier import (
    DramOnlyPolicy,
    NvmOnlyPolicy,
    SingleTierPolicy,
)

_LAZY = {
    "DramCachePolicy",
    "PDRAMPolicy",
    "EagerMigrationPolicy",
    "NeverMigratePolicy",
    "StaticPartitionPolicy",
}


def __getattr__(name: str):
    if name in _LAZY:
        if name == "PDRAMPolicy":
            from repro.policies.pdram import PDRAMPolicy

            return PDRAMPolicy
        if name == "DramCachePolicy":
            from repro.policies.dram_cache import DramCachePolicy

            return DramCachePolicy
        from repro.policies import variants

        return getattr(variants, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CARReplacement",
    "DramCachePolicy",
    "PDRAMPolicy",
    "ClockDWFPolicy",
    "ClockProReplacement",
    "ClockReplacement",
    "DramOnlyPolicy",
    "EagerMigrationPolicy",
    "HybridMemoryPolicy",
    "LRUReplacement",
    "NeverMigratePolicy",
    "NvmOnlyPolicy",
    "PolicyFactory",
    "ReplacementAlgorithm",
    "SingleTierPolicy",
    "StaticPartitionPolicy",
    "WriteHistoryClock",
    "available_policies",
    "make_policy",
    "policy_factory",
    "proposed_with",
    "register_policy",
    "replacement_algorithm",
]
