"""DRAM-as-cache architecture (Qureshi, Srinivasan & Rivers, ISCA 2009).

The first school of hybrid designs the paper's Section III discusses:
"a group of previous studies tried to use DRAM as a caching layer for
NVM memory [10], [14], [15]".  Here NVM is the *home* of every
resident page and the DRAM module holds inclusive *copies* of recently
used pages:

* page faults always fill NVM (the home level);
* any access to an uncopied NVM page allocates a DRAM copy
  (allocate-on-access, the classic cache fill), evicting the LRU copy
  when the cache is full;
* hits on copied pages are DRAM hits; writes dirty the copy;
* dropped dirty copies write back into NVM (charged like a DRAM->NVM
  migration), clean copies are dropped for free.

The design's two structural costs — the capacity lost to duplication
(resident pages = NVM frames only) and the fill/write-back traffic on
low-locality streams (Section III: "if the locality of the requests
drops below a threshold, the performance of the cache will be
decreased") — emerge directly from this model.
"""

from __future__ import annotations

from repro.core.lru import LRUQueue
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.base import HybridMemoryPolicy


class DramCachePolicy(HybridMemoryPolicy):
    """Inclusive DRAM cache in front of an NVM home memory."""

    name = "dram-cache"

    def __init__(self, mm: MemoryManager) -> None:
        super().__init__(mm)
        if mm.spec.dram_pages < 1 or mm.spec.nvm_pages < 1:
            raise ValueError("DRAM cache needs both DRAM and NVM frames")
        self.nvm_lru = LRUQueue()    # residency (home level)
        self.cache_lru = LRUQueue()  # DRAM copies

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if page in self.cache_lru:
            self.cache_lru.touch(page)
            self.nvm_lru.touch(page)  # home stays recency-ordered too
            self.mm.serve_hit(page, is_write)
            return
        if page in self.nvm_lru:
            self.nvm_lru.touch(page)
            self.mm.serve_hit(page, is_write)
            self._fill_cache(page)
            return
        self._page_fault(page, is_write)

    # ------------------------------------------------------------------
    def _fill_cache(self, page: int) -> None:
        if not self.mm.has_free(PageLocation.DRAM):
            victim = self.cache_lru.pop_lru()
            self.mm.drop_copy(victim.page)
        self.mm.create_copy(page)
        self.cache_lru.push_front(page)

    def _page_fault(self, page: int, is_write: bool) -> None:
        if not self.mm.has_free(PageLocation.NVM):
            victim = self.nvm_lru.pop_lru()
            if victim.page in self.cache_lru:
                self.cache_lru.remove(victim.page)
                self.mm.drop_copy(victim.page)
            self.mm.evict_to_disk(victim.page)
        self.mm.fault_fill(page, PageLocation.NVM, is_write)
        self.nvm_lru.push_front(page)
        # the faulting access goes on to use the page: cache it
        self._fill_cache(page)

    # ------------------------------------------------------------------
    def validate(self) -> None:  # repro: cold
        super().validate()
        self.nvm_lru.check()
        self.cache_lru.check()
        resident = set(self.mm.page_table.pages_in(PageLocation.NVM))
        if resident != set(self.nvm_lru.pages()):
            raise AssertionError("home queue out of sync with page table")
        cached = {
            entry.page for entry in self.mm.page_table.entries()
            if entry.has_copy
        }
        if cached != set(self.cache_lru.pages()):
            raise AssertionError("cache queue out of sync with copies")
        if not cached <= resident:
            raise AssertionError("cache is not inclusive")
