"""Homogeneous-memory policies: the DRAM-only and NVM-only baselines.

The paper normalises every figure against one of these: power against a
DRAM-only memory of the same total capacity (Fig. 1/2a/4a), NVM writes
against an NVM-only memory (Fig. 2c/4b).  Both run a conventional
replacement algorithm (LRU by default, CLOCK/CLOCK-Pro/CAR pluggable)
over a single module.
"""

from __future__ import annotations

from typing import Callable

from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.base import HybridMemoryPolicy
from repro.policies.replacement import LRUReplacement, ReplacementAlgorithm

AlgorithmFactory = Callable[[int], ReplacementAlgorithm]


class SingleTierPolicy(HybridMemoryPolicy):
    """All pages live in one module, managed by one replacement algorithm."""

    def __init__(
        self,
        mm: MemoryManager,
        location: PageLocation,
        algorithm_factory: AlgorithmFactory = LRUReplacement,
    ) -> None:
        super().__init__(mm)
        if location is PageLocation.DRAM:
            capacity = mm.spec.dram_pages
        elif location is PageLocation.NVM:
            capacity = mm.spec.nvm_pages
        else:
            raise ValueError("single tier must be DRAM or NVM")
        if capacity < 1:
            raise ValueError(
                f"spec allocates no {location} frames; use "
                "spec.as_dram_only()/as_nvm_only() to build the baseline"
            )
        self.location = location
        self.algorithm = algorithm_factory(capacity)

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if page in self.algorithm:
            self.algorithm.hit(page, is_write)
            self.mm.serve_hit(page, is_write)
            return
        if self.algorithm.full:
            victim = self.algorithm.evict()
            self.mm.evict_to_disk(victim)
        self.mm.fault_fill(page, self.location, is_write)
        self.algorithm.insert(page, is_write)

    def access_batch(self, pages: list[int], writes: list[bool]) -> None:
        """Batched kernel: hit path inlined, misses through the methods.

        Bit-identical to looping over :meth:`access` (asserted by the
        golden-equivalence tests).  The manager's ``record_request`` +
        ``serve_hit`` accounting is inlined for resident hits, with
        commutative event counters accumulated in locals and flushed
        once per batch in a ``finally`` block.  With the default
        :class:`LRUReplacement` algorithm the queue's move-to-front is
        additionally inlined (its queue carries no position windows);
        other algorithms keep their ``hit`` call.  Subclasses that
        override ``access`` fall back to the per-request loop.
        """
        cls = type(self)
        if cls.access is not SingleTierPolicy.access:
            super().access_batch(pages, writes)
            return

        mm = self.mm
        record_request = mm.record_request
        accounting = mm.accounting
        wear = mm.wear
        page_writes = wear.page_writes
        entries = mm.page_table._entries
        evict_to_disk = mm.evict_to_disk
        fault_fill = mm.fault_fill
        algorithm = self.algorithm
        alg_hit = algorithm.hit
        alg_evict = algorithm.evict
        alg_insert = algorithm.insert
        capacity = algorithm.capacity
        location = self.location
        dram_location = PageLocation.DRAM
        # The stock LRU algorithm's hit is a plain move-to-front on a
        # window-less queue; inline it.  Anything else (CLOCK,
        # CLOCK-Pro, CAR, custom) keeps its hit() call.
        queue = (
            algorithm._queue
            if type(algorithm) is LRUReplacement
            and not algorithm._queue._windows
            else None
        )

        bus = mm.events
        # Requests already folded into the bus clock; the deferred
        # request counters minus this are the kernel's clock debt.
        synced = 0

        # Deferred (commutative) event counters, flushed after the loop.
        read_requests = 0
        write_requests = 0
        dram_read_hits = 0
        dram_write_hits = 0
        nvm_read_hits = 0
        nvm_write_hits = 0
        request_writes = 0

        try:
            if queue is not None:
                nodes = queue._nodes
                nodes_get = nodes.get
                for page, is_write in zip(pages, writes):
                    node = nodes_get(page)
                    if node is None:
                        if bus is not None:
                            bus.clock += (
                                read_requests + write_requests - synced
                            )
                            synced = read_requests + write_requests
                        record_request(is_write)
                        if len(nodes) >= capacity:
                            evict_to_disk(alg_evict())
                        fault_fill(page, location, is_write)
                        alg_insert(page, is_write)
                        continue
                    # --- LRU touch, inlined (no windows) ---
                    if node is not queue._head:
                        prev = node.prev
                        nxt = node.next
                        if prev is not None:
                            prev.next = nxt
                        else:
                            queue._head = nxt
                        if nxt is not None:
                            nxt.prev = prev
                        else:
                            queue._tail = prev
                        node.prev = None
                        head = queue._head
                        node.next = head
                        if head is not None:
                            head.prev = node
                        queue._head = node
                        if queue._tail is None:
                            queue._tail = node
                    # --- record_request + serve_hit, inlined ---
                    entry = node.payload
                    if entry is None:
                        node.payload = entry = entries[page]
                    if (
                        entry.location is dram_location
                        or entry.copy_frame is not None
                    ):
                        if is_write:
                            write_requests += 1
                            dram_write_hits += 1
                            if entry.copy_frame is not None:
                                entry.copy_dirty = True
                            entry.write_count += 1
                            entry.dirty = True
                        else:
                            read_requests += 1
                            dram_read_hits += 1
                    elif is_write:
                        write_requests += 1
                        nvm_write_hits += 1
                        request_writes += 1
                        page_writes[page] = page_writes.get(page, 0) + 1
                        entry.write_count += 1
                        entry.dirty = True
                    else:
                        read_requests += 1
                        nvm_read_hits += 1
                    entry.referenced = True
                    entry.access_count += 1
            else:
                alg_contains = algorithm.__contains__
                for page, is_write in zip(pages, writes):
                    if not alg_contains(page):
                        if bus is not None:
                            bus.clock += (
                                read_requests + write_requests - synced
                            )
                            synced = read_requests + write_requests
                        record_request(is_write)
                        if algorithm.full:
                            evict_to_disk(alg_evict())
                        fault_fill(page, location, is_write)
                        alg_insert(page, is_write)
                        continue
                    alg_hit(page, is_write)
                    # --- record_request + serve_hit, inlined ---
                    entry = entries[page]
                    if (
                        entry.location is dram_location
                        or entry.copy_frame is not None
                    ):
                        if is_write:
                            write_requests += 1
                            dram_write_hits += 1
                            if entry.copy_frame is not None:
                                entry.copy_dirty = True
                            entry.write_count += 1
                            entry.dirty = True
                        else:
                            read_requests += 1
                            dram_read_hits += 1
                    elif is_write:
                        write_requests += 1
                        nvm_write_hits += 1
                        request_writes += 1
                        page_writes[page] = page_writes.get(page, 0) + 1
                        entry.write_count += 1
                        entry.dirty = True
                    else:
                        read_requests += 1
                        nvm_read_hits += 1
                    entry.referenced = True
                    entry.access_count += 1
        finally:
            if bus is not None:
                bus.clock += read_requests + write_requests - synced
            accounting.read_requests += read_requests
            accounting.write_requests += write_requests
            accounting.dram_read_hits += dram_read_hits
            accounting.dram_write_hits += dram_write_hits
            accounting.nvm_read_hits += nvm_read_hits
            accounting.nvm_write_hits += nvm_write_hits
            wear.request_writes += request_writes

    def validate(self) -> None:  # repro: cold
        super().validate()
        self.algorithm.validate()
        resident = set(self.mm.page_table.pages_in(self.location))
        tracked = {page for page in resident if page in self.algorithm}
        if tracked != resident or len(self.algorithm) != len(resident):
            raise AssertionError("replacement state out of sync with page table")


class DramOnlyPolicy(SingleTierPolicy):
    """Conventional DRAM main memory (the paper's power baseline)."""

    name = "dram-only"

    def __init__(
        self,
        mm: MemoryManager,
        algorithm_factory: AlgorithmFactory = LRUReplacement,
    ) -> None:
        super().__init__(mm, PageLocation.DRAM, algorithm_factory)


class NvmOnlyPolicy(SingleTierPolicy):
    """All-NVM main memory (the paper's endurance baseline)."""

    name = "nvm-only"

    def __init__(
        self,
        mm: MemoryManager,
        algorithm_factory: AlgorithmFactory = LRUReplacement,
    ) -> None:
        super().__init__(mm, PageLocation.NVM, algorithm_factory)
