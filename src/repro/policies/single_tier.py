"""Homogeneous-memory policies: the DRAM-only and NVM-only baselines.

The paper normalises every figure against one of these: power against a
DRAM-only memory of the same total capacity (Fig. 1/2a/4a), NVM writes
against an NVM-only memory (Fig. 2c/4b).  Both run a conventional
replacement algorithm (LRU by default, CLOCK/CLOCK-Pro/CAR pluggable)
over a single module.
"""

from __future__ import annotations

from typing import Callable

from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.base import HybridMemoryPolicy
from repro.policies.replacement import LRUReplacement, ReplacementAlgorithm

AlgorithmFactory = Callable[[int], ReplacementAlgorithm]


class SingleTierPolicy(HybridMemoryPolicy):
    """All pages live in one module, managed by one replacement algorithm."""

    def __init__(
        self,
        mm: MemoryManager,
        location: PageLocation,
        algorithm_factory: AlgorithmFactory = LRUReplacement,
    ) -> None:
        super().__init__(mm)
        if location is PageLocation.DRAM:
            capacity = mm.spec.dram_pages
        elif location is PageLocation.NVM:
            capacity = mm.spec.nvm_pages
        else:
            raise ValueError("single tier must be DRAM or NVM")
        if capacity < 1:
            raise ValueError(
                f"spec allocates no {location} frames; use "
                "spec.as_dram_only()/as_nvm_only() to build the baseline"
            )
        self.location = location
        self.algorithm = algorithm_factory(capacity)

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if page in self.algorithm:
            self.algorithm.hit(page, is_write)
            self.mm.serve_hit(page, is_write)
            return
        if self.algorithm.full:
            victim = self.algorithm.evict()
            self.mm.evict_to_disk(victim)
        self.mm.fault_fill(page, self.location, is_write)
        self.algorithm.insert(page, is_write)

    def validate(self) -> None:
        super().validate()
        self.algorithm.validate()
        resident = set(self.mm.page_table.pages_in(self.location))
        tracked = {page for page in resident if page in self.algorithm}
        if tracked != resident or len(self.algorithm) != len(resident):
            raise AssertionError("replacement state out of sync with page table")


class DramOnlyPolicy(SingleTierPolicy):
    """Conventional DRAM main memory (the paper's power baseline)."""

    name = "dram-only"

    def __init__(
        self,
        mm: MemoryManager,
        algorithm_factory: AlgorithmFactory = LRUReplacement,
    ) -> None:
        super().__init__(mm, PageLocation.DRAM, algorithm_factory)


class NvmOnlyPolicy(SingleTierPolicy):
    """All-NVM main memory (the paper's endurance baseline)."""

    name = "nvm-only"

    def __init__(
        self,
        mm: MemoryManager,
        algorithm_factory: AlgorithmFactory = LRUReplacement,
    ) -> None:
        super().__init__(mm, PageLocation.NVM, algorithm_factory)
