"""CAR — Clock with Adaptive Replacement (Bansal & Modha, FAST 2004).

One of the conventional algorithms the paper positions CLOCK-DWF
against.  CAR keeps two clocks — ``T1`` for recency, ``T2`` for
frequency — plus two ghost LRU lists ``B1``/``B2`` of recently evicted
pages, and adapts the recency-clock target size ``p`` from ghost hits.

Implemented from the published pseudocode.  The clocks are modelled
with ordered dictionaries (head = hand position, tail = insertion
point), which is behaviourally identical to the circular-buffer
formulation.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.policies.replacement import ReplacementAlgorithm


class CARReplacement(ReplacementAlgorithm):
    """CAR over a fixed set of ``capacity`` frames."""

    name = "car"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        # page -> reference bit
        self._t1: OrderedDict[int, bool] = OrderedDict()
        self._t2: OrderedDict[int, bool] = OrderedDict()
        # ghost lists, LRU at the front
        self._b1: OrderedDict[int, None] = OrderedDict()
        self._b2: OrderedDict[int, None] = OrderedDict()
        self.p = 0.0  # target size of T1

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def __contains__(self, page: int) -> bool:
        return page in self._t1 or page in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def hit(self, page: int, is_write: bool = False) -> None:
        if page in self._t1:
            self._t1[page] = True
        elif page in self._t2:
            self._t2[page] = True
        else:
            raise KeyError(f"page {page} not resident")

    def insert(self, page: int, is_write: bool = False) -> None:
        """Admit a faulted page, learning from the ghost lists.

        The caller must already have made room (``evict``) when the
        cache was full, matching the published control flow where
        ``replace()`` runs before directory insertion.
        """
        if self.full:
            raise MemoryError("insert into full CAR; evict first")
        if page in self:
            raise KeyError(f"page {page} already resident")
        in_b1 = page in self._b1
        in_b2 = page in self._b2
        if not in_b1 and not in_b2:
            # Cache-directory miss: bound the directory sizes.
            if len(self._t1) + len(self._b1) >= self.capacity:
                self._pop_lru(self._b1)
            elif (len(self._t1) + len(self._t2) + len(self._b1)
                  + len(self._b2)) >= 2 * self.capacity:
                self._pop_lru(self._b2)
            self._t1[page] = False
        elif in_b1:
            # Recency ghost hit: grow the recency target.
            ratio = len(self._b2) / len(self._b1) if self._b1 else 1.0
            self.p = min(self.p + max(1.0, ratio), float(self.capacity))
            del self._b1[page]
            self._t2[page] = False
        else:
            # Frequency ghost hit: shrink the recency target.
            ratio = len(self._b1) / len(self._b2) if self._b2 else 1.0
            self.p = max(self.p - max(1.0, ratio), 0.0)
            del self._b2[page]
            self._t2[page] = False

    def evict(self) -> int:
        """The published ``replace()`` procedure."""
        if not len(self):
            raise IndexError("evict from empty CAR")
        while True:
            take_t1 = self._t1 and (
                len(self._t1) >= max(1.0, self.p) or not self._t2
            )
            if take_t1:
                page, referenced = self._pop_head(self._t1)
                if referenced:
                    # Promote to the frequency clock.
                    self._t2[page] = False
                else:
                    self._b1[page] = None
                    return page
            else:
                page, referenced = self._pop_head(self._t2)
                if referenced:
                    self._t2[page] = False  # re-queue at the tail
                else:
                    self._b2[page] = None
                    return page

    def remove(self, page: int) -> None:
        if page in self._t1:
            del self._t1[page]
        elif page in self._t2:
            del self._t2[page]
        else:
            raise KeyError(f"page {page} not resident")

    # ------------------------------------------------------------------
    # Helpers / introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _pop_head(clock: OrderedDict[int, bool]) -> tuple[int, bool]:
        page, referenced = next(iter(clock.items()))
        del clock[page]
        return page, referenced

    @staticmethod
    def _pop_lru(ghost: OrderedDict[int, None]) -> None:
        if ghost:
            ghost.popitem(last=False)

    @property
    def recency_pages(self) -> int:
        return len(self._t1)

    @property
    def frequency_pages(self) -> int:
        return len(self._t2)

    @property
    def ghost_pages(self) -> int:
        return len(self._b1) + len(self._b2)

    def validate(self) -> None:  # repro: cold
        super().validate()
        if set(self._t1) & set(self._t2):
            raise AssertionError("page resident in both CAR clocks")
        if (set(self._t1) | set(self._t2)) & (set(self._b1) | set(self._b2)):
            raise AssertionError("resident page also in a ghost list")
        if len(self._t1) + len(self._b1) > self.capacity:
            raise AssertionError("CAR directory bound |T1|+|B1| <= c violated")
        directory = (len(self._t1) + len(self._t2)
                     + len(self._b1) + len(self._b2))
        if directory > 2 * self.capacity:
            raise AssertionError("CAR directory bound <= 2c violated")
