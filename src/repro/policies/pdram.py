"""PDRAM-style write-count migration (Dhiman, Ayoub & Rosing, DAC 2009).

The paper's reference [9]: one of the hybrid designs that "require
hardware modifications in memory module controllers".  PDRAM keeps a
hardware write counter ("access map") per PCM page; when a page's
write count crosses a threshold, the memory controller interrupts the
OS, which swaps the hot PCM page with a cold DRAM page and resets the
counters.

Differences from the DATE paper's scheme that this implementation
preserves:

* counters count **writes only** and are *never* position-windowed —
  a rarely-but-steadily written page eventually migrates even if it is
  long cold by LRU standards (exactly the ordering problem Section IV's
  window solves);
* counters reset only on migration (the published policy periodically
  zeroes the map; we model the swap-time reset, the part that matters
  for migration counts);
* the DRAM victim for the swap is the least-recently-used DRAM page.

Faults fill whichever module has a free frame (DRAM preferred), and
evictions fall out of the per-module LRUs, so placement quality is
LRU-comparable and the differences come from the migration rule alone.
"""

from __future__ import annotations

from repro.core.lru import LRUQueue
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.base import HybridMemoryPolicy


class PDRAMPolicy(HybridMemoryPolicy):
    """Write-counter migration with unwindowed per-page counters."""

    name = "pdram"

    def __init__(self, mm: MemoryManager, write_threshold: int = 8) -> None:
        super().__init__(mm)
        if mm.spec.dram_pages < 1 or mm.spec.nvm_pages < 1:
            raise ValueError("PDRAM needs both DRAM and NVM frames")
        if write_threshold < 1:
            raise ValueError("write_threshold must be at least 1")
        self.write_threshold = write_threshold
        self.dram_lru = LRUQueue()
        self.nvm_lru = LRUQueue()

    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if page in self.dram_lru:
            self.dram_lru.touch(page)
            self.mm.serve_hit(page, is_write)
        elif page in self.nvm_lru:
            node = self.nvm_lru.touch(page)
            self.mm.serve_hit(page, is_write)
            if is_write:
                node.write_counter += 1  # hardware access map: no window
                if node.write_counter >= self.write_threshold:
                    self._swap_hot_page(page)
        else:
            self._page_fault(page, is_write)

    def _swap_hot_page(self, page: int) -> None:
        """The controller interrupt: swap hot PCM page with cold DRAM."""
        self.nvm_lru.remove(page)
        if self.mm.has_free(PageLocation.DRAM):
            self.mm.migrate(page, PageLocation.DRAM)
        else:
            victim = self.dram_lru.pop_lru()
            self.mm.swap(page, victim.page)
            # the demoted page restarts its write count (map reset)
            self.nvm_lru.push_front(victim.page)
        self.dram_lru.push_front(page)

    def _page_fault(self, page: int, is_write: bool) -> None:
        if self.mm.has_free(PageLocation.DRAM):
            self.mm.fault_fill(page, PageLocation.DRAM, is_write)
            self.dram_lru.push_front(page)
            return
        if not self.mm.has_free(PageLocation.NVM):
            victim = self.nvm_lru.pop_lru()
            self.mm.evict_to_disk(victim.page)
        self.mm.fault_fill(page, PageLocation.NVM, is_write)
        self.nvm_lru.push_front(page)

    def validate(self) -> None:  # repro: cold
        super().validate()
        self.dram_lru.check()
        self.nvm_lru.check()
        dram = set(self.mm.page_table.pages_in(PageLocation.DRAM))
        nvm = set(self.mm.page_table.pages_in(PageLocation.NVM))
        if dram != set(self.dram_lru.pages()):
            raise AssertionError("PDRAM DRAM queue out of sync")
        if nvm != set(self.nvm_lru.pages()):
            raise AssertionError("PDRAM NVM queue out of sync")
