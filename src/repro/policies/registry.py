"""Policy registry: build any policy by name.

The experiment runner, benchmarks and examples all reference policies
by their short names; the registry maps those to factories over a
:class:`~repro.mmu.manager.MemoryManager`.

The built-in factory table is populated lazily because the registry
sits between two packages that import each other's leaves
(``repro.core`` provides policies, ``repro.policies.base`` provides
their base class); deferring the imports keeps module loading acyclic
regardless of which package is imported first.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.mmu.manager import MemoryManager
from repro.policies.base import HybridMemoryPolicy, PolicyFactory

if TYPE_CHECKING:
    from repro.core.config import MigrationConfig
    from repro.policies.replacement import ReplacementAlgorithm

_FACTORIES: dict[str, PolicyFactory] = {}  # repro: worker-local
_ALGORITHMS: dict[str, Callable[[int], "ReplacementAlgorithm"]] = {}  # repro: worker-local


def _ensure_builtins() -> None:
    if _FACTORIES:
        return
    from repro.core.adaptive import AdaptiveMigrationPolicy
    from repro.core.migration import MigrationLRUPolicy
    from repro.policies.car import CARReplacement
    from repro.policies.clock_dwf import ClockDWFPolicy
    from repro.policies.clock_pro import ClockProReplacement
    from repro.policies.dram_cache import DramCachePolicy
    from repro.policies.pdram import PDRAMPolicy
    from repro.policies.replacement import ClockReplacement, LRUReplacement
    from repro.policies.single_tier import DramOnlyPolicy, NvmOnlyPolicy
    from repro.policies.variants import (
        EagerMigrationPolicy,
        NeverMigratePolicy,
        StaticPartitionPolicy,
    )

    _FACTORIES.update({
        "proposed": MigrationLRUPolicy,
        "adaptive": AdaptiveMigrationPolicy,
        "clock-dwf": ClockDWFPolicy,
        "pdram": PDRAMPolicy,
        "dram-cache": DramCachePolicy,
        "dram-only": DramOnlyPolicy,
        "nvm-only": NvmOnlyPolicy,
        "eager-migration": EagerMigrationPolicy,
        "never-migrate": NeverMigratePolicy,
        "static-partition": StaticPartitionPolicy,
        "dram-only-clock": lambda mm: DramOnlyPolicy(mm, ClockReplacement),
        "dram-only-clock-pro":
            lambda mm: DramOnlyPolicy(mm, ClockProReplacement),
        "dram-only-car": lambda mm: DramOnlyPolicy(mm, CARReplacement),
        "nvm-only-clock": lambda mm: NvmOnlyPolicy(mm, ClockReplacement),
        "nvm-only-clock-pro":
            lambda mm: NvmOnlyPolicy(mm, ClockProReplacement),
        "nvm-only-car": lambda mm: NvmOnlyPolicy(mm, CARReplacement),
    })
    _ALGORITHMS.update({
        "lru": LRUReplacement,
        "clock": ClockReplacement,
        "clock-pro": ClockProReplacement,
        "car": CARReplacement,
    })


def available_policies() -> list[str]:
    """Registered policy names, sorted."""
    _ensure_builtins()
    return sorted(_FACTORIES)


def policy_factory(
    name: str,
    overrides: Mapping[str, object] | None = None,
) -> PolicyFactory:
    """Factory for a registered policy name.

    ``overrides`` configures the policy structurally instead of through
    ad-hoc closures: for the configurable policies (``proposed``,
    ``adaptive``, ``clock-dwf``) the mapping supplies
    :class:`MigrationConfig` fields and/or constructor keywords —
    exactly what :class:`~repro.experiments.runspec.RunSpec` carries as
    its hashable ``policy_overrides``.
    """
    _ensure_builtins()
    try:
        base = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_policies())
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None
    if not overrides:
        return base
    return _configured_factory(name, dict(overrides))


def _configured_factory(
    name: str, overrides: dict[str, object]
) -> PolicyFactory:
    """Bind structured overrides into a factory for a configurable policy."""
    from dataclasses import fields

    from repro.core.adaptive import AdaptiveMigrationPolicy
    from repro.core.config import MigrationConfig
    from repro.core.migration import MigrationLRUPolicy
    from repro.policies.clock_dwf import ClockDWFPolicy

    config_fields = {f.name for f in fields(MigrationConfig)}
    config_kwargs = {
        key: value for key, value in overrides.items()
        if key in config_fields
    }
    extra = {
        key: value for key, value in overrides.items()
        if key not in config_fields
    }

    if name == "proposed":
        if extra:
            raise ValueError(
                f"unknown override(s) for 'proposed': {sorted(extra)}")
        config = MigrationConfig(**config_kwargs)
        return lambda mm: MigrationLRUPolicy(mm, config)
    if name == "adaptive":
        config = MigrationConfig(**config_kwargs)
        return lambda mm: AdaptiveMigrationPolicy(mm, config, **extra)
    if name == "clock-dwf":
        if config_kwargs:
            raise ValueError(
                "clock-dwf takes no MigrationConfig fields: "
                f"{sorted(config_kwargs)}")
        return lambda mm: ClockDWFPolicy(mm, **extra)
    raise ValueError(f"policy {name!r} does not accept overrides")


def make_policy(name: str, mm: MemoryManager) -> HybridMemoryPolicy:
    """Instantiate a registered policy over a memory manager."""
    return policy_factory(name)(mm)


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a custom policy (examples/tests extending the suite)."""
    _ensure_builtins()
    if name in _FACTORIES:
        raise ValueError(f"policy {name!r} already registered")
    _FACTORIES[name] = factory


def proposed_with(config: "MigrationConfig") -> PolicyFactory:
    """Removed — the pre-RunSpec config-object factory.

    Raises immediately with migration directions; kept as a stub
    (rather than deleted) so stale call sites fail with an actionable
    message instead of an ``ImportError``.
    """
    raise RuntimeError(
        'proposed_with() was removed; use policy_factory("proposed", '
        "overrides) with an override mapping (e.g. dataclasses.asdict "
        "of a MigrationConfig) — structured overrides are what RunSpec "
        "serialises, caches and ships across the worker pool"
    )


def replacement_algorithm(name: str, capacity: int) -> "ReplacementAlgorithm":
    """Instantiate a single-tier replacement algorithm by name."""
    _ensure_builtins()
    try:
        factory = _ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(_ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(capacity)
