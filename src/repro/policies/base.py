"""Policy interface: the decision layer over the memory manager.

A policy receives the request stream and decides placement — where
faults fill, what migrates, what gets evicted — by invoking
:class:`~repro.mmu.manager.MemoryManager` primitives.  All bookkeeping
(hits, faults, migrations, wear) happens inside the manager, so every
policy is scored identically.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.mmu.manager import MemoryManager

#: Factory signature used by the simulator and the registry.
PolicyFactory = Callable[[MemoryManager], "HybridMemoryPolicy"]


class HybridMemoryPolicy(abc.ABC):
    """Base class for page-placement policies over a hybrid memory."""

    #: Short identifier used in reports and the policy registry.
    name: str = "abstract"

    #: Audit flag for the sampled engine (:mod:`repro.sampling`): a
    #: policy is sampling-safe when its decisions derive only from
    #: per-page state (recency/frequency counters of the accessed page,
    #: queue positions) and window sizes expressed as fractions of the
    #: frame budget — both of which spatial page sampling preserves.
    #: Every registered policy qualifies (per-page counters count that
    #: page's own accesses; ``MigrationConfig`` windows scale with the
    #: sampled NVM frame count).  A policy keyed on *global*
    #: request-stream state (e.g. absolute request ordinals feeding a
    #: threshold) must set this ``False``; ``engine="sampled"`` then
    #: refuses it instead of silently distorting its dynamics.
    sampling_safe: bool = True

    def __init__(self, mm: MemoryManager) -> None:
        self.mm = mm

    @abc.abstractmethod
    def access(self, page: int, is_write: bool) -> None:
        """Handle one memory request end-to-end.

        Implementations must call ``self.mm.record_request(is_write)``
        exactly once *on every control-flow path*, then service the
        request through the manager (``serve_hit`` / ``fault_fill``
        plus any migrations/evictions the policy decides on).

        This contract is machine-checked: statically by lint rule R010
        (``python -m repro lint``) and at runtime by the simulation
        sanitizer (:mod:`repro.analysis.sanitizer`), which asserts that
        the request counter advanced exactly once per ``access`` call.
        """

    def access_batch(self, pages: list[int], writes: list[bool]) -> None:
        """Handle a pre-decoded span of requests (the batched kernel).

        ``pages`` and ``writes`` are equal-length lists of native
        Python ``int``/``bool`` (the simulator converts the trace's
        numpy arrays once via ``.tolist()``).  The default
        implementation simply loops over :meth:`access`, so every
        policy is batch-drivable; hot policies override it with a
        kernel that hoists bound methods out of the loop and serves
        resident hits inline.

        Overrides are bound by the same contract as :meth:`access` —
        every request routes through ``self.mm.record_request``
        exactly once — checked statically by lint rule R012 and at
        runtime by the sanitizer, and proven behaviourally by the
        golden-equivalence tests (``tests/test_batch_equivalence.py``):
        a batch replay must produce *bit-identical* results to the
        per-request replay.
        """
        access = self.access
        for page, is_write in zip(pages, writes):
            access(page, is_write)

    def validate(self) -> None:  # repro: cold
        """Check policy-internal state against the manager's.

        Subclasses extend this with their own structure checks; the
        default validates the shared mechanical layer.  The simulator
        enforces it at end-of-run, and the sanitizer re-runs it on its
        periodic deep-check cadence.
        """
        self.mm.validate()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} policy={self.name!r}>"
