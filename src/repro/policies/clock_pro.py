"""CLOCK-Pro (Jiang, Chen & Zhang, USENIX ATC 2005).

The strongest conventional single-tier baseline the paper mentions
(CLOCK-DWF "outperforms previous work such as CLOCK-PRO", Section I).
CLOCK-Pro approximates LIRS with clock mechanics: pages are *hot* or
*cold*, freshly admitted cold pages run a *test period*, and recently
evicted cold pages linger as non-resident metadata so that a quick
re-fault proves reuse and promotes the page to hot.  The hot/cold split
adapts: a re-fault during test grows the cold allocation, an expired
test shrinks it.

This is a faithful single-list, three-hand implementation; the one
simplification versus the full paper is that ``HAND_hot`` demotes one
hot page per invocation (the original batches its sweep), which does
not change which pages get demoted.
"""

from __future__ import annotations

import enum

from repro.policies.replacement import ReplacementAlgorithm


class _State(enum.Enum):
    HOT = "hot"
    COLD = "cold"          # resident cold
    NONRESIDENT = "nr"     # evicted cold page still in its test period


class _ProNode:
    __slots__ = ("page", "prev", "next", "state", "referenced", "in_test")

    def __init__(self, page: int) -> None:
        self.page = page
        self.prev: "_ProNode | None" = None
        self.next: "_ProNode | None" = None
        self.state = _State.COLD
        self.referenced = False
        self.in_test = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "R" if self.referenced else "-"
        flags += "T" if self.in_test else "-"
        return f"<{self.page}:{self.state.value}:{flags}>"


class ClockProReplacement(ReplacementAlgorithm):
    """CLOCK-Pro over a fixed set of ``capacity`` frames."""

    name = "clock-pro"

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ValueError("CLOCK-Pro needs at least two frames")
        super().__init__(capacity)
        self._nodes: dict[int, _ProNode] = {}
        self._hand_hot: _ProNode | None = None
        self._hand_cold: _ProNode | None = None
        self._hand_test: _ProNode | None = None
        self.cold_target = 1  # adaptive, within [1, capacity - 1]
        self.hot_count = 0
        self.cold_count = 0
        self.nonresident_count = 0

    # ------------------------------------------------------------------
    # ReplacementAlgorithm interface
    # ------------------------------------------------------------------
    def __contains__(self, page: int) -> bool:
        node = self._nodes.get(page)
        return node is not None and node.state is not _State.NONRESIDENT

    def __len__(self) -> int:
        return self.hot_count + self.cold_count

    def hit(self, page: int, is_write: bool = False) -> None:
        node = self._nodes.get(page)
        if node is None or node.state is _State.NONRESIDENT:
            raise KeyError(f"page {page} not resident")
        node.referenced = True

    def insert(self, page: int, is_write: bool = False) -> None:
        if self.full:
            raise MemoryError("insert into full CLOCK-Pro; evict first")
        ghost = self._nodes.get(page)
        if ghost is not None and ghost.state is not _State.NONRESIDENT:
            raise KeyError(f"page {page} already resident")
        if ghost is not None:
            # Re-fault inside the test period: the page proved reuse.
            self.cold_target = min(self.cold_target + 1, self.capacity - 1)
            self.nonresident_count -= 1
            self._remove_node(ghost)
            node = self._link_new(page)
            node.state = _State.HOT
            node.in_test = False
            self.hot_count += 1
            self._balance_hot()
        else:
            node = self._link_new(page)
            node.state = _State.COLD
            node.in_test = True
            self.cold_count += 1
        self._bound_nonresident()

    def evict(self) -> int:
        if not len(self):
            raise IndexError("evict from empty CLOCK-Pro")
        if self.cold_count == 0:
            # Everything is hot: demote one page so HAND_cold has work.
            self._run_hand_hot()
        guard = 4 * (len(self._nodes) + 1)
        while guard:
            guard -= 1
            node = self._hand_cold_node()
            if node.referenced:
                node.referenced = False
                if node.in_test:
                    # Reuse during test: cold page becomes hot.
                    self._advance_cold_past(node)
                    self._move_to_head(node)
                    node.state = _State.HOT
                    node.in_test = False
                    self.cold_count -= 1
                    self.hot_count += 1
                    self._balance_hot()
                    if self.cold_count == 0:
                        self._run_hand_hot()
                else:
                    # Second chance with a fresh test period.
                    self._advance_cold_past(node)
                    self._move_to_head(node)
                    node.in_test = True
                continue
            # Unreferenced cold page: this is the victim.
            victim = node.page
            self._advance_cold_past(node)
            self.cold_count -= 1
            if node.in_test:
                node.state = _State.NONRESIDENT
                self.nonresident_count += 1
                self._bound_nonresident()
            else:
                self._remove_node(node)
                del self._nodes[node.page]
            return victim
        raise AssertionError("HAND_cold failed to find a victim")

    def remove(self, page: int) -> None:
        node = self._nodes.get(page)
        if node is None or node.state is _State.NONRESIDENT:
            raise KeyError(f"page {page} not resident")
        if node.state is _State.HOT:
            self.hot_count -= 1
        else:
            self.cold_count -= 1
        self._remove_node(node)
        del self._nodes[page]

    # ------------------------------------------------------------------
    # Hands
    # ------------------------------------------------------------------
    def _hand_cold_node(self) -> _ProNode:
        """Advance HAND_cold to the next resident cold page."""
        guard = 2 * (len(self._nodes) + 1)
        node = self._hand_cold
        assert node is not None
        while guard:
            guard -= 1
            if node.state is _State.COLD:
                self._hand_cold = node
                return node
            assert node.next is not None
            node = node.next
        raise AssertionError("HAND_cold found no resident cold page")

    def _advance_cold_past(self, node: _ProNode) -> None:
        if self._hand_cold is node:
            self._hand_cold = node.next if node.next is not node else None

    def _balance_hot(self) -> None:
        """Demote hot pages until the hot allocation fits its target."""
        hot_target = max(1, self.capacity - self.cold_target)
        guard = 4 * (len(self._nodes) + 1)
        while self.hot_count > hot_target and guard:
            guard -= 1
            self._run_hand_hot()

    def _run_hand_hot(self) -> None:
        """Demote one hot page; clean up metadata passed on the way."""
        guard = 4 * (len(self._nodes) + 1)
        node = self._hand_hot
        assert node is not None
        while guard:
            guard -= 1
            next_node = node.next
            if node.state is _State.HOT:
                if node.referenced:
                    node.referenced = False
                else:
                    node.state = _State.COLD
                    node.in_test = False
                    node.referenced = False
                    self.hot_count -= 1
                    self.cold_count += 1
                    self._hand_hot = next_node
                    return
            elif node.state is _State.NONRESIDENT:
                # HAND_hot terminates test periods it passes.
                self.cold_target = max(1, self.cold_target - 1)
                self.nonresident_count -= 1
                self._remove_node(node)
                del self._nodes[node.page]
            else:
                # Resident cold page: its test period ends here too.
                if node.in_test:
                    node.in_test = False
                    self.cold_target = max(1, self.cold_target - 1)
            assert next_node is not None
            node = next_node
        raise AssertionError("HAND_hot found no hot page to demote")

    def _bound_nonresident(self) -> None:
        """Keep non-resident metadata within one capacity's worth."""
        guard = 4 * (len(self._nodes) + 1)
        while self.nonresident_count > self.capacity and guard:
            guard -= 1
            node = self._hand_test
            assert node is not None
            next_node = node.next if node.next is not node else None
            if node.state is _State.NONRESIDENT:
                self.cold_target = max(1, self.cold_target - 1)
                self.nonresident_count -= 1
                self._remove_node(node)
                del self._nodes[node.page]
            self._hand_test = next_node if self._nodes else None

    # ------------------------------------------------------------------
    # Ring plumbing
    # ------------------------------------------------------------------
    def _link_new(self, page: int) -> _ProNode:
        node = _ProNode(page)
        self._nodes[page] = node
        if self._hand_hot is None:
            node.prev = node
            node.next = node
            self._hand_hot = node
            self._hand_cold = node
            self._hand_test = node
        else:
            # List head sits just behind HAND_hot.
            tail = self._hand_hot.prev
            assert tail is not None
            tail.next = node
            node.prev = tail
            node.next = self._hand_hot
            self._hand_hot.prev = node
        return node

    def _move_to_head(self, node: _ProNode) -> None:
        if self._hand_hot is node or node.next is node:
            return
        self._unlink_only(node)
        head_anchor = self._hand_hot
        assert head_anchor is not None
        tail = head_anchor.prev
        assert tail is not None
        tail.next = node
        node.prev = tail
        node.next = head_anchor
        head_anchor.prev = node

    def _unlink_only(self, node: _ProNode) -> None:
        for hand_name in ("_hand_hot", "_hand_cold", "_hand_test"):
            if getattr(self, hand_name) is node:
                setattr(
                    self, hand_name,
                    node.next if node.next is not node else None,
                )
        assert node.prev is not None and node.next is not None
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = None
        node.next = None

    def _remove_node(self, node: _ProNode) -> None:
        if node.next is node:
            self._hand_hot = None
            self._hand_cold = None
            self._hand_test = None
            node.prev = None
            node.next = None
        else:
            self._unlink_only(node)

    # ------------------------------------------------------------------
    def validate(self) -> None:  # repro: cold
        super().validate()
        hot = cold = nonresident = 0
        for node in self._nodes.values():
            if node.state is _State.HOT:
                hot += 1
            elif node.state is _State.COLD:
                cold += 1
            else:
                nonresident += 1
        if (hot, cold, nonresident) != (
            self.hot_count, self.cold_count, self.nonresident_count
        ):
            raise AssertionError("CLOCK-Pro counters drifted")
        if not 1 <= self.cold_target <= self.capacity - 1:
            raise AssertionError("cold_target out of range")
