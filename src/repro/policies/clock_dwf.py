"""CLOCK-DWF (Lee, Bahn & Noh, IEEE TC 2013) — the paper's main rival.

Reimplemented from the published algorithm description:

* Two clock algorithms, one per module.
* **NVM never serves a write**: a write request for an NVM-resident
  page immediately migrates the page to DRAM and the write is served
  there (the behaviour whose hidden migration cost Section III of the
  DATE paper exposes).
* **Page faults** fill DRAM when caused by a write and NVM when caused
  by a read — except that while DRAM still has free frames, every fault
  fills DRAM (the detail the DATE paper uses to explain blackscholes).
* The **DRAM clock is write-history aware**: each page carries a write
  frequency; the eviction hand gives written pages second chances and
  decays their frequency, so the victim is the most read-dominant page.
  DRAM victims are demoted (migrated) to NVM.
* The **NVM clock** is a plain second-chance clock; NVM victims are
  evicted to disk.
"""

from __future__ import annotations

from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.base import HybridMemoryPolicy
from repro.policies.replacement import ClockReplacement


class _DWFNode:
    __slots__ = ("page", "prev", "next", "write_freq")

    def __init__(self, page: int, write_freq: int) -> None:
        self.page = page
        self.prev: "_DWFNode | None" = None
        self.next: "_DWFNode | None" = None
        self.write_freq = write_freq


class WriteHistoryClock:
    """The DRAM-side clock of CLOCK-DWF.

    Each resident page carries a write frequency; a write hit increments
    it (saturating at ``max_write_freq``).  The eviction hand decrements
    positive frequencies and grants a second chance, so pages with deep
    write history survive several sweeps and the victim is the page
    longest unwritten.
    """

    def __init__(self, capacity: int, max_write_freq: int = 4) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_write_freq < 1:
            raise ValueError("max_write_freq must be at least 1")
        self.capacity = capacity
        self.max_write_freq = max_write_freq
        self._nodes: dict[int, _DWFNode] = {}
        self._hand: _DWFNode | None = None

    def __contains__(self, page: int) -> bool:
        return page in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def full(self) -> bool:
        return len(self._nodes) >= self.capacity

    def hit(self, page: int, is_write: bool) -> None:
        if is_write:
            node = self._nodes[page]
            node.write_freq = min(node.write_freq + 1, self.max_write_freq)

    def insert(self, page: int, written: bool) -> None:
        """Add a page; ``written`` seeds the write history (pages arrive
        in DRAM either through a write fault or a write-triggered
        migration, both of which imply an immediate write)."""
        if self.full:
            raise MemoryError("insert into full clock; evict first")
        if page in self._nodes:
            raise KeyError(f"page {page} already resident")
        node = _DWFNode(page, 1 if written else 0)
        self._nodes[page] = node
        if self._hand is None:
            node.prev = node
            node.next = node
            self._hand = node
        else:
            tail = self._hand.prev
            assert tail is not None
            tail.next = node
            node.prev = tail
            node.next = self._hand
            self._hand.prev = node

    def evict(self) -> int:
        """Choose and remove the most read-dominant victim."""
        if self._hand is None:
            raise IndexError("evict from empty clock")
        while True:
            node = self._hand
            if node.write_freq > 0:
                node.write_freq -= 1
                self._hand = node.next
            else:
                self._hand = node.next
                self._unlink(node)
                del self._nodes[node.page]
                return node.page

    def _unlink(self, node: _DWFNode) -> None:
        if node.next is node:
            self._hand = None
        else:
            assert node.prev is not None and node.next is not None
            node.prev.next = node.next
            node.next.prev = node.prev
            if self._hand is node:
                self._hand = node.next
        node.prev = None
        node.next = None

    def pages(self) -> list[int]:
        result: list[int] = []
        node = self._hand
        if node is None:
            return result
        while True:
            result.append(node.page)
            assert node.next is not None
            node = node.next
            if node is self._hand:
                break
        return result


class ClockDWFPolicy(HybridMemoryPolicy):
    """CLOCK-DWF over the shared memory-manager mechanics."""

    name = "clock-dwf"

    def __init__(self, mm: MemoryManager, max_write_freq: int = 4) -> None:
        super().__init__(mm)
        if mm.spec.dram_pages < 1 or mm.spec.nvm_pages < 1:
            raise ValueError("CLOCK-DWF needs both DRAM and NVM frames")
        self.dram_clock = WriteHistoryClock(
            mm.spec.dram_pages, max_write_freq=max_write_freq
        )
        self.nvm_clock = ClockReplacement(mm.spec.nvm_pages)

    # ------------------------------------------------------------------
    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        location = self.mm.location_of(page)
        if location is PageLocation.DRAM:
            self.dram_clock.hit(page, is_write)
            self.mm.serve_hit(page, is_write)
        elif location is PageLocation.NVM:
            if is_write:
                # NVM never answers writes: promote, then serve in DRAM.
                self._promote(page)
                self.mm.serve_hit(page, True)
                self.dram_clock.hit(page, True)
            else:
                self.nvm_clock.hit(page)
                self.mm.serve_hit(page, False)
        else:
            self._page_fault(page, is_write)

    def access_batch(self, pages: list[int], writes: list[bool]) -> None:
        """Batched kernel: hit fast paths inlined, page dispatch fused.

        Bit-identical to looping over :meth:`access` (the golden
        equivalence tests assert it).  The per-request ``location_of``
        lookup, the clock-hit bookkeeping and the manager's
        ``record_request`` + ``serve_hit`` accounting are inlined for
        the two hit paths; write-triggered promotions and page faults
        keep going through the methods (they cascade through multi-step
        manager bookkeeping and are comparatively rare).  Commutative
        event counters accumulate in locals and flush once per batch in
        a ``finally`` block.  Subclasses that override ``access`` or
        replace the NVM clock fall back to the per-request loop.

        With an event bus attached, every call-out (fault, promotion,
        copy-served read) folds the deferred request counters into
        ``bus.clock`` first and the ``finally`` block folds the
        remainder, keeping the event stream byte-identical to the
        per-request path's (the inlined hit paths never emit).
        """
        cls = type(self)
        if (
            cls.access is not ClockDWFPolicy.access
            or type(self.nvm_clock) is not ClockReplacement
        ):
            super().access_batch(pages, writes)
            return

        mm = self.mm
        record_request = mm.record_request
        serve_hit = mm.serve_hit
        accounting = mm.accounting
        entries_get = mm.page_table._entries.get
        dram_nodes = self.dram_clock._nodes
        max_write_freq = self.dram_clock.max_write_freq
        nvm_nodes = self.nvm_clock._nodes
        dram_hit = self.dram_clock.hit
        promote = self._promote
        page_fault = self._page_fault
        dram_location = PageLocation.DRAM
        nvm_location = PageLocation.NVM
        bus = mm.events
        # Requests already folded into the bus clock; the deferred
        # request counters minus this are the kernel's clock debt.
        synced = 0

        # Deferred (commutative) event counters, flushed after the loop.
        read_requests = 0
        write_requests = 0
        dram_read_hits = 0
        dram_write_hits = 0
        nvm_read_hits = 0

        try:
            for page, is_write in zip(pages, writes):
                entry = entries_get(page)
                if entry is None:
                    if bus is not None:
                        bus.clock += read_requests + write_requests - synced
                        synced = read_requests + write_requests
                    record_request(is_write)
                    page_fault(page, is_write)
                    continue
                location = entry.location
                if location is dram_location:
                    # --- DRAM hit: clock hit + serve_hit inlined ---
                    if is_write:
                        node = dram_nodes[page]
                        freq = node.write_freq + 1
                        node.write_freq = (
                            freq if freq < max_write_freq else max_write_freq
                        )
                        write_requests += 1
                        dram_write_hits += 1
                        if entry.copy_frame is not None:
                            entry.copy_dirty = True
                        entry.write_count += 1
                        entry.dirty = True
                    else:
                        read_requests += 1
                        dram_read_hits += 1
                    entry.referenced = True
                    entry.access_count += 1
                elif location is nvm_location:
                    if is_write:
                        # NVM never answers writes: promote, then serve
                        # in DRAM (multi-step; keep the method calls).
                        if bus is not None:
                            bus.clock += (
                                read_requests + write_requests - synced
                            )
                            synced = read_requests + write_requests
                        record_request(True)
                        promote(page)
                        serve_hit(page, True)
                        dram_hit(page, True)
                    else:
                        # --- NVM read hit: clock + serve_hit inlined ---
                        nvm_nodes[page].referenced = True
                        if entry.copy_frame is not None:
                            if bus is not None:
                                bus.clock += (
                                    read_requests + write_requests - synced
                                )
                                synced = read_requests + write_requests
                            record_request(False)
                            serve_hit(page, False)
                        else:
                            read_requests += 1
                            nvm_read_hits += 1
                            entry.referenced = True
                            entry.access_count += 1
                else:
                    if bus is not None:
                        bus.clock += read_requests + write_requests - synced
                        synced = read_requests + write_requests
                    record_request(is_write)
                    page_fault(page, is_write)
        finally:
            if bus is not None:
                bus.clock += read_requests + write_requests - synced
            accounting.read_requests += read_requests
            accounting.write_requests += write_requests
            accounting.dram_read_hits += dram_read_hits
            accounting.dram_write_hits += dram_write_hits
            accounting.nvm_read_hits += nvm_read_hits

    # ------------------------------------------------------------------
    def _promote(self, page: int) -> None:
        """Migrate an NVM page to DRAM on a write request."""
        events = self.mm.events
        if events is not None:
            # CLOCK-DWF's trigger is unconditional: the first NVM write
            # promotes (threshold of one write, no counter history).
            events.annotate("nvm-write", 1, 1)
        self.nvm_clock.remove(page)
        if self.mm.has_free(PageLocation.DRAM):
            self.mm.migrate(page, PageLocation.DRAM)
        else:
            victim = self.dram_clock.evict()
            self.mm.swap(page, victim)
            self.nvm_clock.insert(victim)
        self.dram_clock.insert(page, written=True)

    def _page_fault(self, page: int, is_write: bool) -> None:
        if self.mm.has_free(PageLocation.DRAM):
            # Free DRAM absorbs every fault regardless of direction.
            self.mm.fault_fill(page, PageLocation.DRAM, is_write)
            self.dram_clock.insert(page, written=is_write)
        elif is_write:
            self._demote_dram_victim()
            self.mm.fault_fill(page, PageLocation.DRAM, True)
            self.dram_clock.insert(page, written=True)
        else:
            if not self.mm.has_free(PageLocation.NVM):
                victim = self.nvm_clock.evict()
                self.mm.evict_to_disk(victim)
            self.mm.fault_fill(page, PageLocation.NVM, False)
            self.nvm_clock.insert(page)

    def _demote_dram_victim(self) -> None:
        if not self.mm.has_free(PageLocation.NVM):
            nvm_victim = self.nvm_clock.evict()
            self.mm.evict_to_disk(nvm_victim)
        victim = self.dram_clock.evict()
        self.mm.migrate(victim, PageLocation.NVM)
        self.nvm_clock.insert(victim)

    # ------------------------------------------------------------------
    def validate(self) -> None:  # repro: cold
        super().validate()
        dram_pages = set(self.mm.page_table.pages_in(PageLocation.DRAM))
        nvm_pages = set(self.mm.page_table.pages_in(PageLocation.NVM))
        if dram_pages != set(self.dram_clock.pages()):
            raise AssertionError("DRAM clock out of sync with page table")
        if nvm_pages != set(self.nvm_clock.pages()):
            raise AssertionError("NVM clock out of sync with page table")
