"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``
    List the PARSEC profiles (Table III) with their scaled sizes.
``policies``
    List the registered placement policies.
``characterize TRACE``
    Print Table III-style statistics for a trace file (.trc or .npz).
``simulate``
    Run one policy over a workload (or trace file) and print the
    paper's metrics.
``run``
    Execute a (workload x policy) grid of declarative run specs
    through the parallel executor (``--jobs N``) with the persistent
    result cache, and print one summary row per run.
``figure ID``
    Regenerate one paper figure (fig1, fig2a..fig4c) as ASCII bars.
``tables``
    Regenerate Tables II-IV.
``sweep``
    Run a threshold / window / DRAM-ratio sweep.
``lint``
    Run the project-specific static-analysis rules (R002-R012,
    including the dataflow-based units and typestate checks) over
    source paths; exits nonzero on findings.
``profile``
    cProfile one (workload, policy) run — workload rendering excluded
    from the profile — and print the hottest functions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.cli import list_rules, run_lint
from repro.experiments.claims import claims_hold, verify_claims
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    ParallelExecutor,
    ResultCache,
)
from repro.experiments.figures import FIGURE_BUILDERS
from repro.experiments.report import render_figure, render_table
from repro.experiments.runner import CORE_POLICIES, ExperimentRunner
from repro.experiments.runspec import RunSpec
from repro.experiments.sweep import dram_ratio_sweep, threshold_sweep, window_sweep
from repro.experiments.tables import table_ii, table_iii, table_iv
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import simulate
from repro.policies.registry import available_policies, policy_factory
from repro.trace.io import load_trace, read_text_trace
from repro.trace.stats import characterize
from repro.trace.trace import Trace
from repro.workloads.parsec import PROFILES, WORKLOAD_NAMES, parsec_workload


def _load_trace(path: str) -> Trace:
    if path.endswith(".npz"):
        return load_trace(path)
    return read_text_trace(path)


def _resolve_workload(args) -> tuple[Trace, HybridMemorySpec, float, float]:
    """Trace + spec + gap + warmup from --workload or --trace."""
    if args.trace:
        trace = _load_trace(args.trace)
        spec = HybridMemorySpec.for_footprint(max(trace.unique_pages, 2))
        return trace, spec, 0.0, args.warmup
    instance = parsec_workload(args.workload, seed=args.seed)
    return (instance.trace, instance.spec, instance.inter_request_gap,
            instance.warmup_fraction if args.warmup < 0 else args.warmup)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_workloads(args) -> int:
    rows = []
    for name in WORKLOAD_NAMES:
        profile = PROFILES[name]
        rows.append((
            name,
            f"{profile.working_set_kb:,}",
            f"{profile.total_requests:,}",
            f"{100 * profile.write_ratio:.1f}%",
            profile.description,
        ))
    print(render_table(
        ["workload", "WSS (KB)", "requests (paper)", "writes",
         "traits"],
        rows,
        title="PARSEC profiles (paper Table III)",
    ))
    return 0


def _cmd_policies(args) -> int:
    for name in available_policies():
        print(name)
    return 0


def _cmd_characterize(args) -> int:
    trace = _load_trace(args.trace)
    stats = characterize(trace)
    rows = [
        ("name", stats.name),
        ("requests", f"{stats.total_requests:,}"),
        ("reads", f"{stats.read_requests:,} ({stats.read_ratio:.1%})"),
        ("writes", f"{stats.write_requests:,} ({stats.write_ratio:.1%})"),
        ("distinct pages", f"{stats.unique_pages:,}"),
        ("working set", f"{stats.working_set_kb:,} KB"),
        ("accesses/page", f"{stats.accesses_per_page:.1f}"),
        ("top-decile share", f"{stats.top_decile_share:.2f}"),
        ("median reuse distance", f"{stats.median_reuse_distance:.0f}"),
        ("cold-page fraction", f"{stats.cold_page_fraction:.2f}"),
        ("max burst", f"{stats.max_burst_length}"),
    ]
    print(render_table(["statistic", "value"], rows,
                       title=f"characterisation of {args.trace}"))
    return 0


def _cmd_simulate(args) -> int:
    trace, spec, gap, warmup = _resolve_workload(args)
    if args.policy.startswith("dram-only"):
        spec = spec.as_dram_only()
    elif args.policy.startswith("nvm-only"):
        spec = spec.as_nvm_only()
    result = simulate(
        trace, spec, policy_factory(args.policy),
        inter_request_gap=gap, warmup_fraction=max(warmup, 0.0),
        sanitize=True if args.sanitize else None,
    )
    accounting = result.accounting
    rows = [
        ("workload", result.workload),
        ("policy", result.policy),
        ("requests (measured)", f"{accounting.total_requests:,}"),
        ("hit ratio", f"{accounting.hit_ratio:.4f}"),
        ("DRAM / NVM hit share",
         f"{accounting.p_hit_dram:.3f} / {accounting.p_hit_nvm:.3f}"),
        ("page faults", f"{accounting.page_faults:,}"),
        ("promotions (NVM->DRAM)", f"{accounting.migrations_to_dram:,}"),
        ("demotions (DRAM->NVM)", f"{accounting.migrations_to_nvm:,}"),
        ("AMAT", f"{result.amat * 1e9:.1f} ns"),
        ("memory time (no fault term)",
         f"{result.performance.memory_time * 1e9:.1f} ns"),
        ("APPR", f"{result.appr * 1e9:.2f} nJ"),
        ("  static / dynamic / migration",
         f"{result.power.static * 1e9:.2f} / "
         f"{(result.power.dynamic_hit + result.power.fault_fill) * 1e9:.2f}"
         f" / {result.power.migration * 1e9:.2f} nJ"),
        ("NVM writes", f"{result.nvm_writes.total:,}"),
        ("max page wear", f"{result.endurance.max_page_writes:,} writes"),
    ]
    print(render_table(["metric", "value"], rows,
                       title="simulation result"))
    return 0


def _executor_from(args) -> ParallelExecutor:
    """Build the executor the grid commands share (--jobs/--cache)."""
    cache = None
    if getattr(args, "cache", True):
        cache = ResultCache(getattr(args, "cache_dir", DEFAULT_CACHE_DIR))
    progress = None
    if getattr(args, "progress", False):
        def progress(done: int, total: int, spec) -> None:
            print(f"  [{done}/{total}] {spec.label()}", file=sys.stderr)
    return ParallelExecutor(jobs=args.jobs, cache=cache, progress=progress)


def _cmd_run(args) -> int:
    executor = _executor_from(args)
    workloads = args.workload or list(WORKLOAD_NAMES)
    policies = args.policy or list(CORE_POLICIES)
    specs = [
        RunSpec.core(workload, policy, seed=args.seed)
        for workload in workloads
        for policy in policies
    ]
    results = executor.submit(specs)
    rows = []
    for spec, result in zip(specs, results):
        summary = result.summary()
        rows.append((
            spec.workload,
            spec.policy,
            f"{summary['hit_ratio']:.4f}",
            f"{summary['amat_ns']:.1f}",
            f"{summary['appr_nj']:.2f}",
            f"{int(summary['nvm_writes']):,}",
            f"{int(summary['migrations_to_dram']):,}",
            f"{int(summary['migrations_to_nvm']):,}",
        ))
    print(render_table(
        ["workload", "policy", "hit ratio", "AMAT (ns)", "APPR (nJ)",
         "NVM writes", "promotions", "demotions"],
        rows,
        title=f"{len(specs)} runs, {executor.jobs} worker(s)",
    ))
    stats = executor.stats
    print(f"\nsimulated {stats.simulated}, cache hits {stats.cache_hits}, "
          f"cache misses {stats.cache_misses}")
    return 0


def _cmd_figure(args) -> int:
    runner = ExperimentRunner(seed=args.seed, executor=_executor_from(args))
    if args.id == "all":
        ids: Sequence[str] = sorted(FIGURE_BUILDERS)
    elif args.id in FIGURE_BUILDERS:
        ids = [args.id]
    else:
        known = ", ".join(sorted(FIGURE_BUILDERS)) + ", all"
        print(f"unknown figure {args.id!r}; known: {known}",
              file=sys.stderr)
        return 2
    for index, figure_id in enumerate(ids):
        if index:
            print()
        print(render_figure(FIGURE_BUILDERS[figure_id](runner)))
    return 0


def _cmd_tables(args) -> int:
    print(render_table(["Component", "Configuration"], table_ii(),
                       title="Table II"))
    print()
    print(render_table(
        ["Memory", "Latency r/w (ns)", "Power r/w (nJ)",
         "Static (J/GB.s)"],
        table_iv(), title="Table IV",
    ))
    print()
    rows = table_iii(seed=args.seed)
    print(render_table(
        ["Workload", "WSS KB (paper)", "write% paper", "write% sim",
         "pages sim"],
        [
            (row.workload, f"{row.paper_wss_kb:,}",
             f"{100 * row.paper_write_ratio:.1f}",
             f"{100 * row.measured_write_ratio:.1f}",
             f"{row.measured_wss_pages:,}")
            for row in rows
        ],
        title="Table III",
    ))
    return 0


def _cmd_claims(args) -> int:
    runner = ExperimentRunner(seed=args.seed, executor=_executor_from(args))
    results = verify_claims(runner)
    print(render_table(
        ["id", "ok", "claim", "paper", "measured"],
        [
            (r.claim_id, "PASS" if r.holds else "FAIL", r.statement,
             r.paper_value, r.measured)
            for r in results
        ],
        title="Paper-claim audit",
    ))
    passed = sum(1 for r in results if r.holds)
    print(f"\n{passed}/{len(results)} claims hold")
    return 0 if claims_hold(results) else 1


def _cmd_lint(args) -> int:
    if args.list_rules:
        return list_rules()
    return run_lint(args.paths, select=args.select)


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    spec = RunSpec.core(args.workload, args.policy, seed=args.seed)
    # Render outside the profiled region: trace synthesis is numpy-bound
    # and would drown out the simulation kernel we care about.
    instance = spec.render()
    profiler = cProfile.Profile()
    profiler.enable()
    result = spec.execute(instance=instance)
    profiler.disable()

    requests = result.accounting.total_requests
    print(f"profiled {spec.label()}: {requests:,} requests\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_sweep(args) -> int:
    executor = _executor_from(args)
    if args.kind == "threshold":
        points = threshold_sweep(args.workload, executor=executor)
    elif args.kind == "window":
        points = window_sweep(args.workload, executor=executor)
    else:
        points = dram_ratio_sweep(args.workload, executor=executor)
    print(render_table(
        [points[0].parameter, "memory time (ns)", "APPR (nJ)",
         "promotions", "demotions", "NVM writes"],
        [
            (f"{point.value:g}", f"{point.memory_time_ns:.1f}",
             f"{point.appr_nj:.2f}", point.migrations_to_dram,
             point.migrations_to_nvm, f"{point.nvm_writes:,}")
            for point in points
        ],
        title=f"{args.kind} sweep on {args.workload}",
    ))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid DRAM-NVM migration-scheme reproduction "
                    "(Salkhordeh & Asadi, DATE 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list PARSEC profiles") \
        .set_defaults(func=_cmd_workloads)
    sub.add_parser("policies", help="list registered policies") \
        .set_defaults(func=_cmd_policies)

    p = sub.add_parser("characterize",
                       help="Table III statistics for a trace file")
    p.add_argument("trace", help=".trc or .npz trace file")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("simulate", help="run one policy on a workload")
    p.add_argument("--policy", default="proposed")
    p.add_argument("--workload", default="dedup",
                   choices=list(WORKLOAD_NAMES))
    p.add_argument("--trace", default=None,
                   help="trace file instead of a PARSEC workload")
    p.add_argument("--warmup", type=float, default=-1.0,
                   help="warm-up fraction (default: workload's own)")
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--sanitize", action="store_true",
                   help="assert simulation invariants after every request")
    p.set_defaults(func=_cmd_simulate)

    def add_executor_args(parser, cache_default: bool) -> None:
        parser.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes (default: all CPUs)")
        parser.add_argument(
            "--cache", dest="cache", action="store_true",
            default=cache_default,
            help="persist results under the cache directory"
                 + (" (default)" if cache_default else ""))
        parser.add_argument(
            "--no-cache", dest="cache", action="store_false",
            help="disable the persistent result cache")
        parser.add_argument(
            "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
        parser.add_argument(
            "--progress", action="store_true",
            help="print per-run progress to stderr")

    p = sub.add_parser(
        "run",
        help="execute a workload x policy grid through the parallel "
             "executor")
    p.add_argument("--workload", action="append",
                   choices=list(WORKLOAD_NAMES), metavar="NAME",
                   help="workload(s) to run (repeatable; default: all 12)")
    p.add_argument("--policy", action="append", metavar="NAME",
                   help="policy(ies) to run (repeatable; default: the "
                        "four core policies)")
    p.add_argument("--seed", type=int, default=2016)
    add_executor_args(p, cache_default=True)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("id", help="fig1, fig2a..fig4c, or 'all'")
    p.add_argument("--seed", type=int, default=2016)
    add_executor_args(p, cache_default=False)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("tables", help="regenerate Tables II-IV")
    p.add_argument("--seed", type=int, default=2016)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("claims",
                       help="audit every paper claim against the "
                            "regenerated figures")
    p.add_argument("--seed", type=int, default=2016)
    add_executor_args(p, cache_default=False)
    p.set_defaults(func=_cmd_claims)

    p = sub.add_parser("sweep", help="parameter sweep")
    p.add_argument("kind", choices=("threshold", "window", "dram-ratio"))
    p.add_argument("--workload", default="raytrace",
                   choices=list(WORKLOAD_NAMES))
    add_executor_args(p, cache_default=False)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "profile",
        help="cProfile one (workload, policy) run and print hot spots")
    p.add_argument("--workload", default="dedup",
                   choices=list(WORKLOAD_NAMES))
    p.add_argument("--policy", default="proposed")
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--sort", default="cumulative",
                   choices=("cumulative", "tottime", "calls"),
                   help="pstats sort order (default: cumulative)")
    p.add_argument("--top", type=int, default=25, metavar="N",
                   help="number of rows to print (default: 25)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "lint",
        help="run the project lint rules (R002-R012) over source paths",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--select", nargs="+", metavar="RULE",
                   help="restrict to the given rule ids (e.g. R010 R003)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly the
        # way well-behaved unix tools do.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
