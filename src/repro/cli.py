"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``
    List the PARSEC profiles (Table III) with their scaled sizes.
``policies``
    List the registered placement policies.
``characterize TRACE``
    Print Table III-style statistics for a trace file (.trc or .npz).
``simulate``
    Run one policy over a workload (or trace file) and print the
    paper's metrics.
``run``
    Execute a (workload x policy) grid of declarative run specs
    through the parallel executor (``--jobs N``) with the persistent
    result cache, and print one summary row per run.
``figure ID``
    Regenerate one paper figure (fig1, fig2a..fig4c) as ASCII bars.
``tables``
    Regenerate Tables II-IV.
``sweep``
    Run a threshold / window / DRAM-ratio sweep.
``events``
    Run workloads with the observability bus attached and print the
    per-interval time series, the beneficial-migration split and an
    exact end-of-run reconstruction check; ``--events PATH`` dumps the
    raw JSONL streams.
``lint``
    Run the project-specific static-analysis rules (R002-R015,
    including the dataflow-based units and typestate checks and, under
    ``--deep``, the interprocedural purity/escape tier) over source
    paths; exits nonzero on findings.  ``--format json|github`` for
    machine-readable output, ``--fix`` for the mechanical rewrites.
``profile``
    cProfile one (workload, policy) run — workload rendering excluded
    from the profile — and print the hottest functions.

The grid commands (``run``, ``figure``, ``claims``, ``sweep``,
``events``, ``profile``) share one flag vocabulary via a common
argparse parent: ``--jobs``, ``--cache``/``--no-cache``,
``--cache-dir``, ``--progress``, ``--sanitize``, ``--events PATH`` and
``--seed`` mean the same thing everywhere they appear.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.cli import list_rules, run_lint
from repro.analysis.sanitizer import SANITIZE_ENV
from repro.experiments.claims import claims_hold, verify_claims
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    ParallelExecutor,
    ResultCache,
)
from repro.experiments.figures import FIGURE_BUILDERS
from repro.experiments.report import render_figure, render_table
from repro.experiments.runner import CORE_POLICIES, ExperimentRunner
from repro.experiments.runspec import ENGINES, RunSpec
from repro.experiments.sweep import dram_ratio_sweep, threshold_sweep, window_sweep
from repro.experiments.tables import table_ii, table_iii, table_iv
from repro.memory.accounting import AccessAccounting
from repro.memory.endurance import compute_nvm_writes
from repro.memory.metrics import compute_performance
from repro.memory.power import compute_power
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import RunResult, simulate
from repro.obs.config import EventConfig
from repro.obs.summary import EventSummary
from repro.policies.registry import available_policies, policy_factory
from repro.sampling import SamplingConfig
from repro.trace.source import materialize, open_trace_source
from repro.trace.stats import characterize
from repro.trace.trace import Trace
from repro.workloads.parsec import (
    DEFAULT_REQUEST_SCALE,
    PROFILES,
    WORKLOAD_NAMES,
    parsec_workload,
)


def _load_trace(path: str) -> Trace:
    return materialize(open_trace_source(path))


def _resolve_workload(args) -> tuple[Trace, HybridMemorySpec, float, float]:
    """Trace + spec + gap + warmup from --workload or --trace."""
    if args.trace:
        trace = _load_trace(args.trace)
        spec = HybridMemorySpec.for_footprint(max(trace.unique_pages, 2))
        return trace, spec, 0.0, args.warmup
    instance = parsec_workload(args.workload, seed=args.seed)
    return (instance.trace, instance.spec, instance.inter_request_gap,
            instance.warmup_fraction if args.warmup < 0 else args.warmup)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_workloads(args) -> int:
    rows = []
    for name in WORKLOAD_NAMES:
        profile = PROFILES[name]
        rows.append((
            name,
            f"{profile.working_set_kb:,}",
            f"{profile.total_requests:,}",
            f"{100 * profile.write_ratio:.1f}%",
            profile.description,
        ))
    print(render_table(
        ["workload", "WSS (KB)", "requests (paper)", "writes",
         "traits"],
        rows,
        title="PARSEC profiles (paper Table III)",
    ))
    return 0


def _cmd_policies(args) -> int:
    for name in available_policies():
        print(name)
    return 0


def _cmd_characterize(args) -> int:
    trace = _load_trace(args.trace)
    stats = characterize(trace)
    rows = [
        ("name", stats.name),
        ("requests", f"{stats.total_requests:,}"),
        ("reads", f"{stats.read_requests:,} ({stats.read_ratio:.1%})"),
        ("writes", f"{stats.write_requests:,} ({stats.write_ratio:.1%})"),
        ("distinct pages", f"{stats.unique_pages:,}"),
        ("working set", f"{stats.working_set_kb:,} KB"),
        ("accesses/page", f"{stats.accesses_per_page:.1f}"),
        ("top-decile share", f"{stats.top_decile_share:.2f}"),
        ("median reuse distance", f"{stats.median_reuse_distance:.0f}"),
        ("cold-page fraction", f"{stats.cold_page_fraction:.2f}"),
        ("max burst", f"{stats.max_burst_length}"),
    ]
    print(render_table(["statistic", "value"], rows,
                       title=f"characterisation of {args.trace}"))
    return 0


def _cmd_simulate(args) -> int:
    trace, spec, gap, warmup = _resolve_workload(args)
    if args.policy.startswith("dram-only"):
        spec = spec.as_dram_only()
    elif args.policy.startswith("nvm-only"):
        spec = spec.as_nvm_only()
    result = simulate(
        trace, spec, policy_factory(args.policy),
        inter_request_gap=gap, warmup_fraction=max(warmup, 0.0),
        sanitize=True if args.sanitize else None,
    )
    accounting = result.accounting
    rows = [
        ("workload", result.workload),
        ("policy", result.policy),
        ("requests (measured)", f"{accounting.total_requests:,}"),
        ("hit ratio", f"{accounting.hit_ratio:.4f}"),
        ("DRAM / NVM hit share",
         f"{accounting.p_hit_dram:.3f} / {accounting.p_hit_nvm:.3f}"),
        ("page faults", f"{accounting.page_faults:,}"),
        ("promotions (NVM->DRAM)", f"{accounting.migrations_to_dram:,}"),
        ("demotions (DRAM->NVM)", f"{accounting.migrations_to_nvm:,}"),
        ("AMAT", f"{result.amat * 1e9:.1f} ns"),
        ("memory time (no fault term)",
         f"{result.performance.memory_time * 1e9:.1f} ns"),
        ("APPR", f"{result.appr * 1e9:.2f} nJ"),
        ("  static / dynamic / migration",
         f"{result.power.static * 1e9:.2f} / "
         f"{(result.power.dynamic_hit + result.power.fault_fill) * 1e9:.2f}"
         f" / {result.power.migration * 1e9:.2f} nJ"),
        ("NVM writes", f"{result.nvm_writes.total:,}"),
        ("max page wear", f"{result.endurance.max_page_writes:,} writes"),
    ]
    print(render_table(["metric", "value"], rows,
                       title="simulation result"))
    return 0


def _executor_from(args) -> ParallelExecutor:
    """Build the executor the grid commands share (--jobs/--cache).

    ``--sanitize`` is applied here as the ``REPRO_SANITIZE``
    environment default, which the simulator reads in-process and
    worker processes inherit.  ``--cache``/``--no-cache`` override the
    command's own default (``cache_default``, set per subcommand).
    """
    if getattr(args, "sanitize", False):
        os.environ[SANITIZE_ENV] = "1"
    enabled = (args.cache if args.cache is not None
               else getattr(args, "cache_default", False))
    cache = ResultCache(args.cache_dir) if enabled else None
    progress = None
    if getattr(args, "progress", False):
        def progress(done: int, total: int, spec) -> None:
            print(f"  [{done}/{total}] {spec.label()}", file=sys.stderr)
    return ParallelExecutor(jobs=args.jobs, cache=cache, progress=progress)


def _event_config(args) -> EventConfig | None:
    """The event collection the shared ``--events PATH`` flag implies."""
    if not getattr(args, "events", None):
        return None
    return EventConfig(trace=True)


def _engine_conflict(args) -> bool:
    """Report (to stderr) the invalid grid-flag combinations.

    Only the simulator replays the trace, so ``--events`` has nothing
    to collect under the analytic or sampled engines; and
    ``--sample-rate`` only means something to the sampled engine.
    Catching both here gives a usage error instead of the ``RunSpec``
    constructor's ``ValueError`` traceback.
    """
    engine = getattr(args, "engine", "simulate")
    if engine != "simulate" and getattr(args, "events", None):
        print(f"--engine {engine} cannot collect event streams; drop "
              "--events or use --engine simulate", file=sys.stderr)
        return True
    if getattr(args, "sample_rate", None) is not None and engine != "sampled":
        print(f"--sample-rate requires --engine sampled (got --engine "
              f"{engine})", file=sys.stderr)
        return True
    return False


def _sampling_config(args) -> SamplingConfig | None:
    """The sampling configuration the ``--sample-rate`` flag implies
    (``None`` leaves the sampled engine on its defaults)."""
    rate = getattr(args, "sample_rate", None)
    if rate is None:
        return None
    return SamplingConfig(rate=rate)


def _write_event_traces(
    path_arg: str,
    pairs: Iterable[tuple[RunSpec, EventSummary | None]],
) -> None:
    """Dump collected JSONL event streams under ``--events PATH``.

    A single stream with a ``.jsonl`` destination is written to that
    file; otherwise ``PATH`` is a directory and each run gets
    ``{workload}-{policy}-{digest}.jsonl``.
    """
    traced = [(spec, summary) for spec, summary in pairs
              if summary is not None and summary.trace_lines]
    if not traced:
        print("no event traces collected (events were not enabled "
              "with trace capture)", file=sys.stderr)
        return
    path = Path(path_arg)
    if len(traced) == 1 and path.suffix == ".jsonl":
        targets = [path]
    else:
        path.mkdir(parents=True, exist_ok=True)
        targets = [
            path / f"{spec.workload}-{spec.policy}-{spec.digest()[:8]}.jsonl"
            for spec, _ in traced
        ]
    for (spec, summary), target in zip(traced, targets):
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as stream:
            for line in summary.trace_lines:
                stream.write(line)
                stream.write("\n")
        print(f"wrote {len(summary.trace_lines):,} events "
              f"({spec.label()}) to {target}")


def _cmd_run(args) -> int:
    if _engine_conflict(args):
        return 2
    executor = _executor_from(args)
    workloads = args.workload or list(WORKLOAD_NAMES)
    policies = args.policy or list(CORE_POLICIES)
    specs = [
        RunSpec.core(workload, policy, seed=args.seed,
                     events=_event_config(args), engine=args.engine,
                     sampling=_sampling_config(args))
        for workload in workloads
        for policy in policies
    ]
    results = executor.submit(specs)
    rows = []
    for spec, result in zip(specs, results):
        summary = result.summary()
        rows.append((
            spec.workload,
            spec.policy,
            f"{summary['hit_ratio']:.4f}",
            f"{summary['amat_ns']:.1f}",
            f"{summary['appr_nj']:.2f}",
            f"{int(summary['nvm_writes']):,}",
            f"{int(summary['migrations_to_dram']):,}",
            f"{int(summary['migrations_to_nvm']):,}",
        ))
    print(render_table(
        ["workload", "policy", "hit ratio", "AMAT (ns)", "APPR (nJ)",
         "NVM writes", "promotions", "demotions"],
        rows,
        title=f"{len(specs)} runs, {executor.jobs} worker(s)",
    ))
    stats = executor.stats
    print(f"\nsimulated {stats.simulated}, cache hits {stats.cache_hits}, "
          f"cache misses {stats.cache_misses}")
    if args.events:
        _write_event_traces(args.events, zip(specs, (r.events
                                                     for r in results)))
    return 0


def _cmd_figure(args) -> int:
    if _engine_conflict(args):
        return 2
    runner = ExperimentRunner(seed=args.seed, executor=_executor_from(args),
                              events=_event_config(args),
                              engine=args.engine,
                              sampling=_sampling_config(args))
    if args.id == "all":
        ids: Sequence[str] = sorted(FIGURE_BUILDERS)
    elif args.id in FIGURE_BUILDERS:
        ids = [args.id]
    else:
        known = ", ".join(sorted(FIGURE_BUILDERS)) + ", all"
        print(f"unknown figure {args.id!r}; known: {known}",
              file=sys.stderr)
        return 2
    for index, figure_id in enumerate(ids):
        if index:
            print()
        print(render_figure(FIGURE_BUILDERS[figure_id](runner)))
    if args.events:
        _write_event_traces(args.events,
                            runner.executor.collected_events())
    return 0


def _cmd_tables(args) -> int:
    print(render_table(["Component", "Configuration"], table_ii(),
                       title="Table II"))
    print()
    print(render_table(
        ["Memory", "Latency r/w (ns)", "Power r/w (nJ)",
         "Static (J/GB.s)"],
        table_iv(), title="Table IV",
    ))
    print()
    rows = table_iii(seed=args.seed)
    print(render_table(
        ["Workload", "WSS KB (paper)", "write% paper", "write% sim",
         "pages sim"],
        [
            (row.workload, f"{row.paper_wss_kb:,}",
             f"{100 * row.paper_write_ratio:.1f}",
             f"{100 * row.measured_write_ratio:.1f}",
             f"{row.measured_wss_pages:,}")
            for row in rows
        ],
        title="Table III",
    ))
    return 0


def _cmd_claims(args) -> int:
    if _engine_conflict(args):
        return 2
    runner = ExperimentRunner(seed=args.seed, executor=_executor_from(args),
                              events=_event_config(args),
                              engine=args.engine,
                              sampling=_sampling_config(args))
    results = verify_claims(runner)
    print(render_table(
        ["id", "ok", "claim", "paper", "measured"],
        [
            (r.claim_id, "PASS" if r.holds else "FAIL", r.statement,
             r.paper_value, r.measured)
            for r in results
        ],
        title="Paper-claim audit",
    ))
    passed = sum(1 for r in results if r.holds)
    print(f"\n{passed}/{len(results)} claims hold")
    if args.events:
        _write_event_traces(args.events,
                            runner.executor.collected_events())
    return 0 if claims_hold(results) else 1


def _cmd_lint(args) -> int:
    if args.list_rules:
        return list_rules()
    return run_lint(args.paths, select=args.select, deep=args.deep,
                    perf=args.perf, fmt=args.format, fix=args.fix,
                    baseline=args.baseline,
                    update_baseline=args.update_baseline,
                    statistics=args.statistics)


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    if _engine_conflict(args):
        return 2
    if args.sanitize:
        os.environ[SANITIZE_ENV] = "1"
    spec = RunSpec.core(args.workload, args.policy, seed=args.seed,
                        events=_event_config(args), engine=args.engine,
                        sampling=_sampling_config(args))
    # Render outside the profiled region: trace synthesis is numpy-bound
    # and would drown out the simulation kernel we care about.
    instance = spec.render()
    profiler = cProfile.Profile()
    profiler.enable()
    result = spec.execute(instance=instance)
    profiler.disable()

    requests = result.accounting.total_requests
    print(f"profiled {spec.label()}: {requests:,} requests\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.events:
        _write_event_traces(args.events, [(spec, result.events)])
    return 0


def _cmd_sweep(args) -> int:
    if _engine_conflict(args):
        return 2
    executor = _executor_from(args)
    events = _event_config(args)
    sampling = _sampling_config(args)
    if args.kind == "threshold":
        points = threshold_sweep(args.workload, seed=args.seed,
                                 executor=executor, events=events,
                                 engine=args.engine, sampling=sampling)
    elif args.kind == "window":
        points = window_sweep(args.workload, seed=args.seed,
                              executor=executor, events=events,
                              engine=args.engine, sampling=sampling)
    else:
        points = dram_ratio_sweep(args.workload, seed=args.seed,
                                  executor=executor, events=events,
                                  engine=args.engine, sampling=sampling)
    print(render_table(
        [points[0].parameter, "memory time (ns)", "APPR (nJ)",
         "promotions", "demotions", "NVM writes"],
        [
            (f"{point.value:g}", f"{point.memory_time_ns:.1f}",
             f"{point.appr_nj:.2f}", point.migrations_to_dram,
             point.migrations_to_nvm, f"{point.nvm_writes:,}")
            for point in points
        ],
        title=f"{args.kind} sweep on {args.workload}",
    ))
    if args.events:
        _write_event_traces(args.events, executor.collected_events())
    return 0


def _cmd_serve(args) -> int:
    """Resident multi-tenant service over the shared grid flags.

    The executor (``--jobs/--cache/--cache-dir/--progress/--sanitize``)
    is exactly the one the batch commands use, so the server answers
    warm queries from the same persistent result cache with zero
    cold-start; ``--engine``/``--seed``/``--sample-rate`` become
    server-side spec defaults applied to payloads that do not set
    them; ``--events PATH`` additionally persists every event-bearing
    run's JSONL stream under PATH.
    """
    from repro.serve import ReproService, serve

    defaults: dict = {"seed": args.seed}
    if args.engine != "simulate":
        defaults["engine"] = args.engine
    sampling = _sampling_config(args)
    if sampling is not None:
        if args.engine != "sampled":
            print(f"--sample-rate requires --engine sampled (got --engine "
                  f"{args.engine})", file=sys.stderr)
            return 2
        defaults["sampling"] = sampling
    service = ReproService(
        executor=_executor_from(args),
        trace_root=args.trace_dir,
        defaults=defaults,
        events_dir=args.events,
    )
    print(f"repro serve listening on http://{args.host}:{args.port} "
          f"(jobs={service.executor.jobs}, cache="
          f"{'on' if service.executor.cache is not None else 'off'})",
          file=sys.stderr)
    serve(args.host, args.port, service)
    print("repro serve: shut down cleanly", file=sys.stderr)
    return 0


def _reconstruct(result: RunResult) -> tuple[bool, str]:
    """Re-derive the end-of-run metrics from the interval deltas.

    The aggregator's per-interval accounting deltas must sum back to
    the run's final counters bit-for-bit, and the paper models
    re-evaluated on that sum must equal the run's own AMAT/APPR/wear —
    the ``repro events`` acceptance check.
    """
    summary = result.events
    assert summary is not None
    totals: dict[str, int] = {}
    wear_totals: dict[str, int] = {}
    for row in summary.series:
        for name, value in row.accounting.items():
            totals[name] = totals.get(name, 0) + value
        for name in ("fault_fill_writes", "migration_writes",
                     "request_writes"):
            wear_totals[name] = wear_totals.get(name, 0) + row.wear[name]
    if totals != result.accounting.snapshot():
        return False, "interval accounting deltas != final counters"
    accounting = AccessAccounting(**totals)
    performance = compute_performance(accounting, result.spec)
    power = compute_power(accounting, result.spec, performance,
                          inter_request_gap=summary.inter_request_gap)
    nvm_writes = compute_nvm_writes(accounting, result.spec)
    checks = [
        ("AMAT", performance.amat, result.performance.amat),
        ("APPR", power.appr, result.power.appr),
        ("NVM writes", nvm_writes.total, result.nvm_writes.total),
    ]
    for name, rebuilt, final in checks:
        if rebuilt != final:
            return False, f"{name}: rebuilt {rebuilt!r} != final {final!r}"
    for name, value in wear_totals.items():
        if value != getattr(result.wear, name):
            return False, (f"wear {name}: rebuilt {value} != "
                           f"final {getattr(result.wear, name)}")
    return True, (f"AMAT {performance.amat * 1e9:.3f} ns, "
                  f"APPR {power.appr * 1e9:.3f} nJ, "
                  f"NVM writes {nvm_writes.total:,}")


def _cmd_events(args) -> int:
    if args.engine != "simulate":
        print("the events report replays the simulator; --engine "
              f"{args.engine} has no event stream to observe",
              file=sys.stderr)
        return 2
    executor = _executor_from(args)
    policies = args.policy or ["clock-dwf", "proposed"]
    config = EventConfig(buckets=args.intervals, trace=bool(args.events))
    specs = [
        RunSpec.core(args.workload, policy, seed=args.seed,
                     request_scale=args.request_scale, events=config)
        for policy in policies
    ]
    results = executor.submit(specs)
    status = 0
    for ordinal, (spec, result) in enumerate(zip(specs, results)):
        summary = result.events
        if summary is None:
            print(f"{spec.label()}: no event summary collected",
                  file=sys.stderr)
            status = 1
            continue
        if ordinal:
            print()
        print(render_table(
            ["interval", "requests", "AMAT (ns)", "APPR (nJ)",
             "NVM writes", "promotions", "demotions", "faults"],
            [
                (f"{row.start:,}-{row.end:,}", f"{row.requests:,}",
                 f"{row.amat * 1e9:.1f}", f"{row.appr * 1e9:.2f}",
                 f"{row.nvm_writes:,}", f"{row.migrations_to_dram:,}",
                 f"{row.migrations_to_nvm:,}", f"{row.page_faults:,}")
                for row in summary.series
            ],
            title=f"{spec.label()}: {len(summary.series)} intervals of "
                  f"{summary.interval:,} requests",
        ))
        ledger = summary.migrations
        if ledger is not None and ledger.promotions:
            print(f"promotions {ledger.promotions:,}: "
                  f"{ledger.beneficial:,} beneficial / "
                  f"{ledger.non_beneficial:,} non-beneficial "
                  f"({ledger.beneficial_ratio:.1%}), "
                  f"wasted {ledger.wasted_seconds * 1e6:.2f} us")
        ok, detail = _reconstruct(result)
        if ok:
            print(f"reconstruction: exact ({detail})")
        else:
            print(f"reconstruction: FAILED ({detail})")
            status = 1
    if args.events:
        _write_event_traces(args.events, zip(specs, (r.events
                                                     for r in results)))
    return status


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid DRAM-NVM migration-scheme reproduction "
                    "(Salkhordeh & Asadi, DATE 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list PARSEC profiles") \
        .set_defaults(func=_cmd_workloads)
    sub.add_parser("policies", help="list registered policies") \
        .set_defaults(func=_cmd_policies)

    p = sub.add_parser("characterize",
                       help="Table III statistics for a trace file")
    p.add_argument("trace", help=".trc or .npz trace file")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("simulate", help="run one policy on a workload")
    p.add_argument("--policy", default="proposed")
    p.add_argument("--workload", default="dedup",
                   choices=list(WORKLOAD_NAMES))
    p.add_argument("--trace", default=None,
                   help="trace file instead of a PARSEC workload")
    p.add_argument("--warmup", type=float, default=-1.0,
                   help="warm-up fraction (default: workload's own)")
    p.add_argument("--seed", type=int, default=2016)
    p.add_argument("--sanitize", action="store_true",
                   help="assert simulation invariants after every request")
    p.set_defaults(func=_cmd_simulate)

    # One flag vocabulary for every grid command; a command's own
    # cache preference goes through ``cache_default`` so that
    # --cache/--no-cache stay explicit overrides everywhere.
    grid = argparse.ArgumentParser(add_help=False)
    grid.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all CPUs)")
    grid.add_argument(
        "--cache", dest="cache", action="store_true", default=None,
        help="persist results under the cache directory")
    grid.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="disable the persistent result cache")
    grid.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})")
    grid.add_argument(
        "--progress", action="store_true",
        help="print per-run progress to stderr")
    grid.add_argument(
        "--sanitize", action="store_true",
        help="assert simulation invariants during every run")
    grid.add_argument(
        "--events", default=None, metavar="PATH",
        help="collect event streams and write JSONL trace(s) to PATH "
             "(a .jsonl file for a single run, else a directory)")
    grid.add_argument("--seed", type=int, default=2016)
    grid.add_argument(
        "--engine", choices=list(ENGINES), default="simulate",
        help="execution engine: 'simulate' replays the trace through "
             "the event-driven simulator, 'analytic' evaluates the "
             "closed-form model (repro.model), 'sampled' replays a "
             "1-in-K page sample and scales the metrics back up "
             "(repro.sampling)")
    grid.add_argument(
        "--sample-rate", type=int, default=None, metavar="K",
        help="sample 1 page in K under --engine sampled (default: "
             "the engine's built-in rate)")

    p = sub.add_parser(
        "run", parents=[grid],
        help="execute a workload x policy grid through the parallel "
             "executor")
    p.add_argument("--workload", action="append",
                   choices=list(WORKLOAD_NAMES), metavar="NAME",
                   help="workload(s) to run (repeatable; default: all 12)")
    p.add_argument("--policy", action="append", metavar="NAME",
                   help="policy(ies) to run (repeatable; default: the "
                        "four core policies)")
    p.set_defaults(func=_cmd_run, cache_default=True)

    p = sub.add_parser("figure", parents=[grid],
                       help="regenerate a paper figure")
    p.add_argument("id", help="fig1, fig2a..fig4c, or 'all'")
    p.set_defaults(func=_cmd_figure, cache_default=False)

    p = sub.add_parser("tables", help="regenerate Tables II-IV")
    p.add_argument("--seed", type=int, default=2016)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("claims", parents=[grid],
                       help="audit every paper claim against the "
                            "regenerated figures")
    p.set_defaults(func=_cmd_claims, cache_default=False)

    p = sub.add_parser("sweep", parents=[grid], help="parameter sweep")
    p.add_argument("kind", choices=("threshold", "window", "dram-ratio"))
    p.add_argument("--workload", default="raytrace",
                   choices=list(WORKLOAD_NAMES))
    p.set_defaults(func=_cmd_sweep, cache_default=False)

    p = sub.add_parser(
        "events", parents=[grid],
        help="per-interval event-stream report: time series, "
             "beneficial-migration split, exact reconstruction check")
    p.add_argument("workload", choices=list(WORKLOAD_NAMES))
    p.add_argument("--policy", action="append", metavar="NAME",
                   help="policy(ies) to observe (repeatable; default: "
                        "clock-dwf and proposed)")
    p.add_argument("--intervals", type=int, default=16, metavar="N",
                   help="number of time-series buckets (default: 16)")
    p.add_argument("--request-scale", type=float,
                   default=DEFAULT_REQUEST_SCALE, metavar="F",
                   help="workload request-count scale (default: "
                        f"{DEFAULT_REQUEST_SCALE:g})")
    p.set_defaults(func=_cmd_events, cache_default=False)

    p = sub.add_parser(
        "profile", parents=[grid],
        help="cProfile one (workload, policy) run and print hot spots")
    p.add_argument("--workload", default="dedup",
                   choices=list(WORKLOAD_NAMES))
    p.add_argument("--policy", default="proposed")
    p.add_argument("--sort", default="cumulative",
                   choices=("cumulative", "tottime", "calls"),
                   help="pstats sort order (default: cumulative)")
    p.add_argument("--top", type=int, default=25, metavar="N",
                   help="number of rows to print (default: 25)")
    p.set_defaults(func=_cmd_profile, cache_default=False)

    p = sub.add_parser(
        "serve", parents=[grid],
        help="resident HTTP service: submit RunSpecs and trace "
             "uploads, stream event JSONL, answer warm queries from "
             "the result cache")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8023,
                   help="bind port (default: 8023)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="spill directory for uploaded traces "
                        "(default: <cache-dir>/traces)")
    p.set_defaults(func=_cmd_serve, cache_default=True)

    p = sub.add_parser(
        "lint",
        help="run the project lint rules (R002-R018) over source paths",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--select", nargs="+", metavar="RULE",
                   help="restrict to the given rule ids (e.g. R010 R003)")
    p.add_argument("--deep", action="store_true",
                   help="add the interprocedural tier (R013-R015: worker "
                        "purity, sync-before-emit, digest stability)")
    p.add_argument("--perf", action="store_true",
                   help="add the hot-path performance tier (R016-R018: "
                        "per-iteration allocation, unhoisted lookups, "
                        "numpy scalar boxing/dtype churn)")
    p.add_argument("--baseline", metavar="PATH",
                   help="ratchet against a baseline file: findings "
                        "recorded there are tolerated, new ones fail")
    p.add_argument("--update-baseline", action="store_true",
                   help="re-record the baseline from the current "
                        "findings and exit clean")
    p.add_argument("--statistics", action="store_true",
                   help="print per-tier timings and per-rule finding "
                        "counts to stderr")
    p.add_argument("--format", choices=["text", "json", "github"],
                   default="text",
                   help="output format (default: text)")
    p.add_argument("--fix", action="store_true",
                   help="apply mechanical fixes (R003 mutable defaults, "
                        "R005 magic device numbers) before linting")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly the
        # way well-behaved unix tools do.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
