"""Event accounting: the bridge between simulation and the paper's models.

Every policy run fills one :class:`AccessAccounting` with raw event
counts (hits per memory and direction, page faults, migrations in both
directions, evictions).  The model layer (:mod:`repro.memory.metrics`,
:mod:`repro.memory.power`) then evaluates the paper's Eq. 1-3 directly
on these counts: the ``P*`` probabilities of Table I are the event
counts divided by the total number of requests, which makes the models
exact bookkeeping identities over a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.units import Count, Ratio


@dataclass(slots=True)
class AccessAccounting:
    """Raw event counters for one simulation run."""

    # Request stream -----------------------------------------------------
    read_requests: Count = 0
    write_requests: Count = 0

    # Hits (request served in place) --------------------------------------
    dram_read_hits: Count = 0
    dram_write_hits: Count = 0
    nvm_read_hits: Count = 0
    nvm_write_hits: Count = 0

    # Page faults ----------------------------------------------------------
    read_faults: Count = 0
    write_faults: Count = 0
    faults_filled_dram: Count = 0
    faults_filled_nvm: Count = 0

    # Migrations between the two memories ----------------------------------
    migrations_to_dram: Count = 0
    migrations_to_nvm: Count = 0

    # Evictions from memory to disk ----------------------------------------
    clean_evictions: Count = 0
    dirty_evictions: Count = 0

    # ----------------------------------------------------------------------
    # Totals
    # ----------------------------------------------------------------------
    @property
    def total_requests(self) -> Count:
        return self.read_requests + self.write_requests

    @property
    def hits(self) -> Count:
        return self.dram_hits + self.nvm_hits

    @property
    def dram_hits(self) -> Count:
        return self.dram_read_hits + self.dram_write_hits

    @property
    def nvm_hits(self) -> Count:
        return self.nvm_read_hits + self.nvm_write_hits

    @property
    def page_faults(self) -> Count:
        return self.read_faults + self.write_faults

    @property
    def migrations(self) -> Count:
        return self.migrations_to_dram + self.migrations_to_nvm

    @property
    def evictions_to_disk(self) -> Count:
        return self.clean_evictions + self.dirty_evictions

    # ----------------------------------------------------------------------
    # Table I probabilities (per total requests)
    # ----------------------------------------------------------------------
    def _ratio(self, count: Count) -> Ratio:
        total = self.total_requests
        return count / total if total else 0.0

    @property
    def p_hit_dram(self) -> Ratio:
        """``PHitDRAM``: fraction of requests served by DRAM."""
        return self._ratio(self.dram_hits)

    @property
    def p_hit_nvm(self) -> Ratio:
        """``PHitNVM``: fraction of requests served by NVM."""
        return self._ratio(self.nvm_hits)

    @property
    def p_miss(self) -> Ratio:
        """``PMiss``: fraction of requests that page-faulted."""
        return self._ratio(self.page_faults)

    @property
    def p_read_dram(self) -> Ratio:
        """``PRDRAM``: read share *within* DRAM hits."""
        return self.dram_read_hits / self.dram_hits if self.dram_hits else 0.0

    @property
    def p_write_dram(self) -> Ratio:
        """``PWDRAM``: write share within DRAM hits."""
        return self.dram_write_hits / self.dram_hits if self.dram_hits else 0.0

    @property
    def p_read_nvm(self) -> Ratio:
        """``PRNVM``: read share within NVM hits."""
        return self.nvm_read_hits / self.nvm_hits if self.nvm_hits else 0.0

    @property
    def p_write_nvm(self) -> Ratio:
        """``PWNVM``: write share within NVM hits."""
        return self.nvm_write_hits / self.nvm_hits if self.nvm_hits else 0.0

    @property
    def p_mig_d(self) -> Ratio:
        """``PMigD``: NVM->DRAM migrations per request."""
        return self._ratio(self.migrations_to_dram)

    @property
    def p_mig_n(self) -> Ratio:
        """``PMigN``: DRAM->NVM migrations per request."""
        return self._ratio(self.migrations_to_nvm)

    @property
    def p_disk_to_dram(self) -> Ratio:
        """``PDiskToD``: of the faults, the fraction filled into DRAM."""
        faults = self.page_faults
        return self.faults_filled_dram / faults if faults else 0.0

    @property
    def p_disk_to_nvm(self) -> Ratio:
        """``PDiskToN``: of the faults, the fraction filled into NVM."""
        faults = self.page_faults
        return self.faults_filled_nvm / faults if faults else 0.0

    @property
    def hit_ratio(self) -> Ratio:
        return self._ratio(self.hits)

    # ----------------------------------------------------------------------
    # Maintenance
    # ----------------------------------------------------------------------
    def validate(self) -> None:  # repro: cold
        """Raise :class:`ValueError` on internally inconsistent counts."""
        for field_info in fields(self):
            if getattr(self, field_info.name) < 0:
                raise ValueError(f"negative counter: {field_info.name}")
        if self.hits + self.page_faults != self.total_requests:
            raise ValueError(
                "hits + faults != requests "
                f"({self.hits} + {self.page_faults} != {self.total_requests})"
            )
        read_events = self.dram_read_hits + self.nvm_read_hits + self.read_faults
        if read_events != self.read_requests:
            raise ValueError(
                f"read events ({read_events}) != read requests "
                f"({self.read_requests})"
            )
        write_events = (
            self.dram_write_hits + self.nvm_write_hits + self.write_faults
        )
        if write_events != self.write_requests:
            raise ValueError(
                f"write events ({write_events}) != write requests "
                f"({self.write_requests})"
            )
        if self.faults_filled_dram + self.faults_filled_nvm != self.page_faults:
            raise ValueError(
                "fault fills do not partition the faults: "
                f"{self.faults_filled_dram} + {self.faults_filled_nvm} "
                f"!= {self.page_faults}"
            )

    def merge(self, other: "AccessAccounting") -> "AccessAccounting":
        """Element-wise sum (combining shards of a partitioned run)."""
        merged = AccessAccounting()
        for field_info in fields(self):
            setattr(
                merged,
                field_info.name,
                getattr(self, field_info.name) + getattr(other, field_info.name),
            )
        return merged

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of the raw counters (for reports and tests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form; inverse of :meth:`from_dict`."""
        return self.snapshot()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AccessAccounting":
        return cls(**data)


@dataclass(slots=True)
class WearAccounting:
    """Per-page NVM write tracking for the endurance analysis (Fig. 2c/4b).

    Counts *physical line writes* into NVM split by source, and keeps a
    per-page histogram for wear-levelling / lifetime estimates.  The
    per-source totals are in line-access units: one migrated or faulted
    page contributes ``PageFactor`` line writes, one served write
    request contributes a single line write.
    """

    page_factor: Count = 64
    fault_fill_writes: Count = 0
    migration_writes: Count = 0
    request_writes: Count = 0
    page_writes: dict[int, int] = field(default_factory=dict)

    def record_fault_fill(self, page: int) -> None:
        self.fault_fill_writes += self.page_factor
        self.page_writes[page] = (
            self.page_writes.get(page, 0) + self.page_factor
        )

    def record_migration_in(self, page: int) -> None:
        self.migration_writes += self.page_factor
        self.page_writes[page] = (
            self.page_writes.get(page, 0) + self.page_factor
        )

    def record_request_write(self, page: int) -> None:
        self.request_writes += 1
        self.page_writes[page] = self.page_writes.get(page, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form; inverse of :meth:`from_dict`.

        The per-page histogram's integer page numbers become string
        keys (JSON objects only key on strings); :meth:`from_dict`
        restores them.
        """
        return {
            "page_factor": self.page_factor,
            "fault_fill_writes": self.fault_fill_writes,
            "migration_writes": self.migration_writes,
            "request_writes": self.request_writes,
            "page_writes": {
                str(page): count for page, count in self.page_writes.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WearAccounting":
        return cls(
            page_factor=data["page_factor"],
            fault_fill_writes=data["fault_fill_writes"],
            migration_writes=data["migration_writes"],
            request_writes=data["request_writes"],
            page_writes={
                int(page): count
                for page, count in data["page_writes"].items()
            },
        )

    @property
    def total_writes(self) -> Count:
        return self.fault_fill_writes + self.migration_writes + self.request_writes

    @property
    def max_page_writes(self) -> Count:
        return max(self.page_writes.values(), default=0)

    @property
    def touched_pages(self) -> Count:
        return len(self.page_writes)
