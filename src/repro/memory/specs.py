"""Hybrid-memory configuration: sizes, devices and the PageFactor.

:class:`HybridMemorySpec` bundles everything the cost models need about
the machine: the DRAM and NVM device characteristics, how many page
frames each module holds, the disk behind them, and the page/access
granularities that define the paper's ``PageFactor`` coefficient.

The paper's sizing rule (Section V-A) is implemented by
:func:`HybridMemorySpec.for_footprint`: total memory = 75 % of the
workload's distinct pages, DRAM = 10 % of total memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.memory.devices import (
    DiskSpec,
    MemoryDeviceSpec,
    dram_spec,
    hdd_spec,
    pcm_spec,
)
from repro.trace.record import ACCESS_SIZE, PAGE_SIZE
from repro.units import Bytes, Count, Joules, Ratio, Seconds, Watts

#: Paper Section V-A: memory holds 75 % of the workload's pages.
DEFAULT_MEMORY_FRACTION = 0.75
#: Paper Section V-A: DRAM is 10 % of the total hybrid memory.
DEFAULT_DRAM_FRACTION = 0.10


@dataclass(frozen=True)
class HybridMemorySpec:
    """A fully-specified hybrid main memory configuration."""

    dram: MemoryDeviceSpec
    nvm: MemoryDeviceSpec
    disk: DiskSpec
    dram_pages: Count
    nvm_pages: Count
    page_size: Bytes = PAGE_SIZE
    access_size: Bytes = ACCESS_SIZE

    def __post_init__(self) -> None:
        if self.dram_pages < 0 or self.nvm_pages < 0:
            raise ValueError("page counts must be non-negative")
        if self.dram_pages + self.nvm_pages == 0:
            raise ValueError("memory must contain at least one page frame")
        if self.page_size <= 0 or self.access_size <= 0:
            raise ValueError("page_size and access_size must be positive")
        if self.page_size % self.access_size:
            raise ValueError("page_size must be a multiple of access_size")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def page_factor(self) -> Count:
        """Paper's ``PageFactor``: memory accesses needed to move a page."""
        return self.page_size // self.access_size

    @property
    def total_pages(self) -> Count:
        return self.dram_pages + self.nvm_pages

    @property
    def dram_bytes(self) -> Bytes:
        return self.dram_pages * self.page_size

    @property
    def nvm_bytes(self) -> Bytes:
        return self.nvm_pages * self.page_size

    @property
    def total_bytes(self) -> Bytes:
        return self.dram_bytes + self.nvm_bytes

    @property
    def static_power(self) -> Watts:
        """Total background power (watts) of both modules."""
        return (
            self.dram.static_power(self.dram_bytes)
            + self.nvm.static_power(self.nvm_bytes)
        )

    @property
    def is_dram_only(self) -> bool:
        return self.nvm_pages == 0

    @property
    def is_nvm_only(self) -> bool:
        return self.dram_pages == 0

    # ------------------------------------------------------------------
    # Migration cost helpers (paper Eq. 1 / Eq. 2 last terms)
    # ------------------------------------------------------------------
    def migration_latency_to_dram(self) -> Seconds:
        """Time to migrate one page NVM -> DRAM."""
        return self.page_factor * (
            self.nvm.read_latency + self.dram.write_latency
        )

    def migration_latency_to_nvm(self) -> Seconds:
        """Time to migrate one page DRAM -> NVM."""
        return self.page_factor * (
            self.dram.read_latency + self.nvm.write_latency
        )

    def migration_energy_to_dram(self) -> Joules:
        """Energy to migrate one page NVM -> DRAM."""
        return self.page_factor * (
            self.nvm.read_energy + self.dram.write_energy
        )

    def migration_energy_to_nvm(self) -> Joules:
        """Energy to migrate one page DRAM -> NVM."""
        return self.page_factor * (
            self.dram.read_energy + self.nvm.write_energy
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_footprint(
        cls,
        footprint_pages: Count,
        memory_fraction: Ratio = DEFAULT_MEMORY_FRACTION,
        dram_fraction: Ratio = DEFAULT_DRAM_FRACTION,
        dram: MemoryDeviceSpec | None = None,
        nvm: MemoryDeviceSpec | None = None,
        disk: DiskSpec | None = None,
        page_size: Bytes = PAGE_SIZE,
        access_size: Bytes = ACCESS_SIZE,
    ) -> "HybridMemorySpec":
        """Size a hybrid memory for a workload per the paper's rule.

        ``memory_fraction`` of the workload's distinct pages fit in
        memory; ``dram_fraction`` of those frames are DRAM.  Both module
        sizes are floored at one page so every policy has somewhere to
        put data.
        """
        if footprint_pages <= 0:
            raise ValueError("footprint_pages must be positive")
        if not 0.0 < memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in (0, 1]")
        if not 0.0 <= dram_fraction <= 1.0:
            raise ValueError("dram_fraction must be in [0, 1]")
        total = max(2, math.ceil(footprint_pages * memory_fraction))
        dram_pages = max(1, round(total * dram_fraction))
        nvm_pages = max(1, total - dram_pages)
        return cls(
            dram=dram or dram_spec(),
            nvm=nvm or pcm_spec(),
            disk=disk or hdd_spec(),
            dram_pages=dram_pages,
            nvm_pages=nvm_pages,
            page_size=page_size,
            access_size=access_size,
        )

    def as_dram_only(self) -> "HybridMemorySpec":
        """Same total capacity, all frames DRAM (the Fig. 1 baseline)."""
        return replace(self, dram_pages=self.total_pages, nvm_pages=0)

    def as_nvm_only(self) -> "HybridMemorySpec":
        """Same total capacity, all frames NVM (Fig. 2c/4b baseline)."""
        return replace(self, dram_pages=0, nvm_pages=self.total_pages)

    def sampled(self, rate: float) -> "HybridMemorySpec":
        """Frame budget for a 1-in-``rate`` spatial page sample.

        Both modules shrink proportionally (floored at one frame when
        the module exists at all, so the DRAM/NVM structure survives),
        keeping frames-per-sampled-page — the pressure every policy
        responds to — matched to the full configuration.  ``rate`` may
        be fractional: the sampled engine passes the *measured* page
        ratio (total pages / pages actually drawn), the SHARDS-adj
        correction that stops hash noise in the sample size from
        skewing the capacity ratio.  ``rate == 1`` returns ``self``
        unchanged (the sampled engine's identity path).
        """
        if rate < 1:
            raise ValueError("sampling rate must be >= 1")
        if rate == 1:
            return self
        dram_pages = (
            max(1, round(self.dram_pages / rate)) if self.dram_pages else 0
        )
        nvm_pages = (
            max(1, round(self.nvm_pages / rate)) if self.nvm_pages else 0
        )
        return replace(self, dram_pages=dram_pages, nvm_pages=nvm_pages)

    # ------------------------------------------------------------------
    # Serialisation (result cache / pool transport)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form; inverse of :meth:`from_dict`."""
        return {
            "dram": self.dram.to_dict(),
            "nvm": self.nvm.to_dict(),
            "disk": self.disk.to_dict(),
            "dram_pages": self.dram_pages,
            "nvm_pages": self.nvm_pages,
            "page_size": self.page_size,
            "access_size": self.access_size,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HybridMemorySpec":
        return cls(
            dram=MemoryDeviceSpec.from_dict(data["dram"]),
            nvm=MemoryDeviceSpec.from_dict(data["nvm"]),
            disk=DiskSpec.from_dict(data["disk"]),
            dram_pages=data["dram_pages"],
            nvm_pages=data["nvm_pages"],
            page_size=data["page_size"],
            access_size=data["access_size"],
        )

    def with_dram_fraction(self, dram_fraction: Ratio) -> "HybridMemorySpec":
        """Re-split the same total capacity with a new DRAM share."""
        if not 0.0 <= dram_fraction <= 1.0:
            raise ValueError("dram_fraction must be in [0, 1]")
        total = self.total_pages
        dram_pages = max(1, round(total * dram_fraction)) if dram_fraction else 0
        return replace(self, dram_pages=dram_pages, nvm_pages=total - dram_pages)
