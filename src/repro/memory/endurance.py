"""NVM endurance model (paper Section III-C and Fig. 2c / 4b).

The paper evaluates endurance by counting *physical writes into NVM*
split by source:

* **request writes** — write requests served in place by NVM (one line
  write each; the proposed scheme allows these, CLOCK-DWF forbids them),
* **page-fault fills** — pages written into NVM on a fault
  (``PageFactor`` line writes each), and
* **migration writes** — pages demoted/promoted into NVM
  (``PageFactor`` line writes each).

Figures 2c and 4b normalise the total against an *NVM-only* memory
running plain LRU, where every write request and every fault fill lands
in NVM by construction.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.memory.accounting import AccessAccounting, WearAccounting
from repro.memory.specs import HybridMemorySpec


@dataclass(frozen=True)
class NVMWriteBreakdown:
    """Physical NVM line writes per source (the stacked bars of Fig. 2c/4b)."""

    request_writes: int
    fault_fill_writes: int
    migration_writes: int

    @property
    def total(self) -> int:
        return self.request_writes + self.fault_fill_writes + self.migration_writes

    def normalized_to(self, baseline: "NVMWriteBreakdown") -> float:
        if baseline.total == 0:
            raise ZeroDivisionError("baseline NVM write count is zero")
        return self.total / baseline.total

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (result cache / pool serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NVMWriteBreakdown":
        return cls(**data)


def compute_nvm_writes(
    accounting: AccessAccounting,
    spec: HybridMemorySpec,
) -> NVMWriteBreakdown:
    """Derive the NVM write breakdown from a run's event counts."""
    page_factor = spec.page_factor
    return NVMWriteBreakdown(
        request_writes=accounting.nvm_write_hits,
        fault_fill_writes=accounting.faults_filled_nvm * page_factor,
        migration_writes=accounting.migrations_to_nvm * page_factor,
    )


@dataclass(frozen=True)
class EnduranceReport:
    """Wear summary for one run over the per-page write histogram."""

    total_writes: int
    touched_pages: int
    max_page_writes: int
    mean_page_writes: float
    wear_cv: float
    estimated_lifetime_seconds: float | None

    @property
    def wear_is_even(self) -> bool:
        """Heuristic: coefficient of variation below 1 reads as even wear."""
        return self.wear_cv < 1.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (result cache / pool serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnduranceReport":
        return cls(**data)


def endurance_report(
    wear: WearAccounting,
    spec: HybridMemorySpec,
    elapsed_seconds: float | None = None,
) -> EnduranceReport:
    """Summarise wear and (optionally) estimate device lifetime.

    Lifetime is bounded by the hottest page: with per-line endurance of
    ``E`` cycles and the hottest page absorbing ``w`` line writes over
    ``t`` seconds, the first line fails after roughly ``E * t / w``
    seconds (no wear-levelling assumed — the paper reports lifetime
    relative between policies, which cancels the assumption).
    """
    counts = list(wear.page_writes.values())
    total = wear.total_writes
    touched = len(counts)
    max_writes = max(counts, default=0)
    mean_writes = total / touched if touched else 0.0
    if touched and mean_writes > 0:
        variance = sum((c - mean_writes) ** 2 for c in counts) / touched
        wear_cv = math.sqrt(variance) / mean_writes
    else:
        wear_cv = 0.0

    lifetime: float | None = None
    endurance = spec.nvm.endurance_cycles
    if (
        elapsed_seconds is not None
        and elapsed_seconds > 0
        and endurance is not None
        and max_writes > 0
    ):
        write_rate_per_line = max_writes / elapsed_seconds
        lifetime = endurance / write_rate_per_line

    return EnduranceReport(
        total_writes=total,
        touched_pages=touched,
        max_page_writes=max_writes,
        mean_page_writes=mean_writes,
        wear_cv=wear_cv,
        estimated_lifetime_seconds=lifetime,
    )


def relative_lifetime(
    writes: NVMWriteBreakdown, baseline: NVMWriteBreakdown
) -> float:
    """Lifetime improvement factor vs a baseline (fewer writes = longer).

    The paper's "prolong its lifetime up to 4x" claims are computed this
    way: lifetime scales inversely with total NVM write volume.
    """
    if writes.total == 0:
        return math.inf
    if baseline.total == 0:
        raise ZeroDivisionError("baseline NVM write count is zero")
    return baseline.total / writes.total
