"""Start-Gap wear levelling (Qureshi et al., MICRO 2009).

The paper repeatedly notes NVM's limited write endurance and cites the
line of work on lifetime extension ([4], [5]).  Start-Gap is the
canonical low-cost wear-leveller for PCM: one spare line plus two
registers (*start*, *gap*) remap logical lines onto physical lines,
and every ``gap_write_interval`` writes the gap advances by one
position, slowly rotating the address space so hot logical lines do
not pin hot physical cells.

This implementation levels at page-frame granularity (the granularity
the rest of the library tracks wear at) and exposes the wear histogram
and evenness metrics, so policies can be compared with and without
levelling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WearSummary:
    """Physical wear distribution after a write stream."""

    total_writes: int
    max_frame_writes: int
    mean_frame_writes: float
    extra_moves: int

    @property
    def imbalance(self) -> float:
        """Max-to-mean wear ratio; 1.0 is perfectly even."""
        if self.mean_frame_writes == 0:
            return 1.0
        return self.max_frame_writes / self.mean_frame_writes

    def lifetime_gain_over(self, other: "WearSummary") -> float:
        """Relative lifetime vs another run with the same write volume.

        Device life ends when the hottest cell wears out, so lifetime
        scales inversely with the hottest frame's write rate.
        """
        if self.max_frame_writes == 0:
            return float("inf")
        return other.max_frame_writes / self.max_frame_writes


class StartGapLeveler:
    """Start-Gap remapping over ``frames`` physical frames (+1 spare).

    Logical frames ``0..frames-1`` map onto physical frames
    ``0..frames`` (one spare).  Every ``gap_write_interval`` writes,
    the line just before the gap moves into the gap slot and the gap
    walks backwards one position; a full revolution rotates the whole
    address space by one line, so sustained traffic keeps sweeping hot
    logical lines across all physical lines.
    """

    def __init__(self, frames: int, gap_write_interval: int = 100) -> None:
        if frames < 1:
            raise ValueError("need at least one frame")
        if gap_write_interval < 1:
            raise ValueError("gap_write_interval must be positive")
        self.frames = frames
        self.gap_write_interval = gap_write_interval
        self._slots = frames + 1
        # Explicit permutation: hardware implements this with the two
        # Start/Gap registers; maintaining the arrays directly keeps
        # the simulation trivially correct across wraparounds.
        self._physical_of = list(range(frames))      # logical -> physical
        self._logical_at: list[int | None] = list(range(frames)) + [None]
        self.gap = frames  # physical index of the empty slot
        self._writes_since_move = 0
        self.physical_writes = [0] * self._slots
        self.extra_moves = 0
        self.total_writes = 0

    # ------------------------------------------------------------------
    def physical_of(self, logical: int) -> int:
        """Current physical frame of a logical frame."""
        if not 0 <= logical < self.frames:
            raise IndexError(f"logical frame {logical} out of range")
        return self._physical_of[logical]

    def write(self, logical: int) -> int:
        """Record one write to a logical frame; returns the physical
        frame it landed on (after any gap movement)."""
        physical = self.physical_of(logical)
        self.physical_writes[physical] += 1
        self.total_writes += 1
        self._writes_since_move += 1
        if self._writes_since_move >= self.gap_write_interval:
            self._writes_since_move = 0
            self._move_gap()
        return physical

    def _move_gap(self) -> None:
        """Advance the gap: copy the neighbour line into the gap slot."""
        source = (self.gap - 1) % self._slots
        moved = self._logical_at[source]
        assert moved is not None  # only one gap exists
        # the copy itself wears the destination (the old gap slot)
        self.physical_writes[self.gap] += 1
        self.extra_moves += 1
        self._logical_at[self.gap] = moved
        self._physical_of[moved] = self.gap
        self._logical_at[source] = None
        self.gap = source

    # ------------------------------------------------------------------
    def summary(self) -> WearSummary:
        busy = self._slots
        total = sum(self.physical_writes)
        return WearSummary(
            total_writes=total,
            max_frame_writes=max(self.physical_writes),
            mean_frame_writes=total / busy if busy else 0.0,
            extra_moves=self.extra_moves,
        )

    def check(self) -> None:
        """The remap must stay a bijection logical -> physical \\ {gap}."""
        mapped = [self.physical_of(logical) for logical in range(self.frames)]
        if len(set(mapped)) != self.frames:
            raise AssertionError("start-gap mapping is not injective")
        if self.gap in mapped:
            raise AssertionError("a logical frame maps onto the gap")


def replay_writes(
    writes: list[int] | tuple[int, ...],
    frames: int,
    gap_write_interval: int | None = None,
) -> WearSummary:
    """Replay a logical-frame write stream with or without levelling.

    ``gap_write_interval=None`` disables levelling (identity mapping),
    giving the unlevelled baseline for comparisons.
    """
    if gap_write_interval is None:
        histogram = [0] * frames
        for logical in writes:
            histogram[logical] += 1
        total = sum(histogram)
        return WearSummary(
            total_writes=total,
            max_frame_writes=max(histogram, default=0),
            mean_frame_writes=total / frames if frames else 0.0,
            extra_moves=0,
        )
    leveler = StartGapLeveler(frames, gap_write_interval)
    for logical in writes:
        leveler.write(logical)
    return leveler.summary()
