"""Power model: Average Power Per Request (paper Eq. 2 and Eq. 3).

Eq. 2 charges, per request, the dynamic energy of

* hit service in DRAM/NVM (terms 1-2),
* writing faulted pages into their destination module (terms 3-4,
  ``PageFactor`` line writes per fault), and
* page migrations in both directions (terms 5-6).

Eq. 3 prorates *static* power over requests: from the OS's point of
view the memory burns background power while servicing the request
stream, so each request is charged ``static power x AMAT`` joules
(equivalently, per-page static power divided by the page's access
rate, as the paper writes it).  The static term therefore needs the
performance model's AMAT, which is computed first and passed in.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.memory.accounting import AccessAccounting
from repro.memory.metrics import PerformanceBreakdown, compute_performance
from repro.memory.specs import HybridMemorySpec
from repro.units import Count, Joules, Ratio, Seconds


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-request energy split into the paper's APPR terms (joules)."""

    static: Joules
    dram_hit: Joules
    nvm_hit: Joules
    fault_fill: Joules
    migration_to_dram: Joules
    migration_to_nvm: Joules

    @property
    def dynamic_hit(self) -> Joules:
        """Hit-service dynamic energy ("Dynamic" in Fig. 1/2a/4a)."""
        return self.dram_hit + self.nvm_hit

    @property
    def migration(self) -> Joules:
        """Total migration energy ("Migration" in Fig. 2a/4a)."""
        return self.migration_to_dram + self.migration_to_nvm

    @property
    def appr(self) -> Joules:
        """Average power per request (Eq. 2 + prorated Eq. 3)."""
        return self.static + self.dynamic_hit + self.fault_fill + self.migration

    @property
    def dynamic_total(self) -> Joules:
        """All dynamic energy (everything except the static term)."""
        return self.dynamic_hit + self.fault_fill + self.migration

    def total_energy(self, total_requests: Count) -> Joules:
        """Total modelled energy of the run (requests x APPR), joules."""
        return self.appr * total_requests

    def normalized_to(self, baseline: "PowerBreakdown") -> Ratio:
        """APPR relative to a baseline run (the figures' y-axis)."""
        if baseline.appr == 0:
            raise ZeroDivisionError("baseline APPR is zero")
        return self.appr / baseline.appr

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (result cache / pool serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PowerBreakdown":
        return cls(**data)


def compute_power(
    accounting: AccessAccounting,
    spec: HybridMemorySpec,
    performance: PerformanceBreakdown | None = None,
    inter_request_gap: Seconds = 0.0,
) -> PowerBreakdown:
    """Evaluate Eq. 2 (+ prorated Eq. 3) on a run's event counts.

    Parameters
    ----------
    accounting:
        Event counts from the run.
    spec:
        Machine configuration (devices, sizes, PageFactor).
    performance:
        The run's Eq. 1 breakdown; computed on demand when omitted.
        Needed because the static proration charges background power
        for the modelled duration of each request.
    inter_request_gap:
        Mean compute/LLC time (seconds) elapsing between consecutive
        main-memory requests.  Eq. 3 prorates static power over wall
        time per request; for cache-friendly workloads most of that
        time is spent off-memory, which is exactly why the paper finds
        that "workloads with a high hit ratio in LLC of CPU will have
        higher static power consumption per request" (Section III).
    """
    total = accounting.total_requests
    if total == 0:
        return PowerBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    if performance is None:
        performance = compute_performance(accounting, spec)

    dram, nvm = spec.dram, spec.nvm
    page_factor = spec.page_factor

    dram_hit = (
        accounting.dram_read_hits * dram.read_energy
        + accounting.dram_write_hits * dram.write_energy
    ) / total
    nvm_hit = (
        accounting.nvm_read_hits * nvm.read_energy
        + accounting.nvm_write_hits * nvm.write_energy
    ) / total
    fault_fill = (
        accounting.faults_filled_dram * page_factor * dram.write_energy
        + accounting.faults_filled_nvm * page_factor * nvm.write_energy
    ) / total
    migration_to_dram = (
        accounting.migrations_to_dram * spec.migration_energy_to_dram() / total
    )
    migration_to_nvm = (
        accounting.migrations_to_nvm * spec.migration_energy_to_nvm() / total
    )
    # Eq. 3: background power is burned for the modelled duration of the
    # run and prorated evenly across the requests it serviced.  Wall
    # time per request is compute/LLC time plus the time the memory
    # system is busy (hits + migrations).  Disk-fault stall time is
    # deliberately excluded: the paper derives its request rate from
    # full-system execution on real (unrestricted) memory, so swap
    # stalls never inflate its AvgStaticPower either.
    if inter_request_gap < 0:
        raise ValueError("inter_request_gap must be non-negative")
    static = spec.static_power * (
        performance.memory_time + inter_request_gap
    )

    return PowerBreakdown(
        static=static,
        dram_hit=dram_hit,
        nvm_hit=nvm_hit,
        fault_fill=fault_fill,
        migration_to_dram=migration_to_dram,
        migration_to_nvm=migration_to_nvm,
    )
