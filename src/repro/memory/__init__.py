"""Device models, event accounting and the paper's cost models."""

from repro.memory.devices import (
    DiskSpec,
    MemoryDeviceSpec,
    dram_spec,
    hdd_spec,
    pcm_spec,
    ssd_spec,
    sttram_spec,
)
from repro.memory.specs import (
    DEFAULT_DRAM_FRACTION,
    DEFAULT_MEMORY_FRACTION,
    HybridMemorySpec,
)
from repro.memory.accounting import AccessAccounting, WearAccounting
from repro.memory.metrics import PerformanceBreakdown, compute_performance
from repro.memory.power import PowerBreakdown, compute_power
from repro.memory.wear_leveling import (
    StartGapLeveler,
    WearSummary,
    replay_writes,
)
from repro.memory.endurance import (
    EnduranceReport,
    NVMWriteBreakdown,
    compute_nvm_writes,
    endurance_report,
    relative_lifetime,
)

__all__ = [
    "AccessAccounting",
    "DEFAULT_DRAM_FRACTION",
    "DEFAULT_MEMORY_FRACTION",
    "DiskSpec",
    "EnduranceReport",
    "HybridMemorySpec",
    "MemoryDeviceSpec",
    "NVMWriteBreakdown",
    "PerformanceBreakdown",
    "PowerBreakdown",
    "WearAccounting",
    "compute_nvm_writes",
    "compute_performance",
    "compute_power",
    "dram_spec",
    "endurance_report",
    "hdd_spec",
    "pcm_spec",
    "relative_lifetime",
    "StartGapLeveler",
    "WearSummary",
    "replay_writes",
    "ssd_spec",
    "sttram_spec",
]
