"""Performance model: Average Memory Access Time (paper Eq. 1).

The paper's AMAT charges, per request:

* the hit service time in DRAM or NVM (terms 1-2),
* the disk latency of page faults (term 3 — only the disk latency,
  because the DMA fill overlaps with reading the next block), and
* the prorated cost of page migrations in both directions (terms 4-5),
  each migration costing ``PageFactor`` reads on the source module plus
  ``PageFactor`` writes on the destination module.

Probabilities come from :class:`~repro.memory.accounting.AccessAccounting`
event counts, so the computed AMAT is an exact identity over a run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

from repro.memory.accounting import AccessAccounting
from repro.memory.specs import HybridMemorySpec
from repro.units import Count, Ratio, Seconds


@dataclass(frozen=True)
class PerformanceBreakdown:
    """Per-request latency split into the paper's AMAT terms (seconds)."""

    dram_hit_time: Seconds
    nvm_hit_time: Seconds
    fault_time: Seconds
    migration_to_dram_time: Seconds
    migration_to_nvm_time: Seconds

    @property
    def request_time(self) -> Seconds:
        """Hit-service component ("Read/Write Requests" in Fig. 2b/4c)."""
        return self.dram_hit_time + self.nvm_hit_time

    @property
    def migration_time(self) -> Seconds:
        """Total migration component ("Migrations" in Fig. 2b/4c)."""
        return self.migration_to_dram_time + self.migration_to_nvm_time

    @property
    def amat(self) -> Seconds:
        """Average memory access time per request (Eq. 1)."""
        return self.request_time + self.fault_time + self.migration_time

    @property
    def memory_time(self) -> Seconds:
        """AMAT excluding the disk-fault term (hit + migration time).

        The paper's AMAT figures (2b, 4c) stack only "Read/Write
        Requests" and "Migrations": the page-fault term is essentially
        identical across policies managing the same total capacity (it
        depends on hit ratio, which the proposed scheme deliberately
        preserves), so the figures compare the memory-system time where
        the policies actually differ.  This property is that quantity.
        """
        return self.request_time + self.migration_time

    def elapsed_time(self, total_requests: Count) -> Seconds:
        """Modelled wall-clock time of the run (requests x AMAT)."""
        return self.amat * total_requests

    def normalized_to(self, baseline: "PerformanceBreakdown") -> Ratio:
        """AMAT relative to a baseline run (the figures' y-axis)."""
        if baseline.amat == 0:
            raise ZeroDivisionError("baseline AMAT is zero")
        return self.amat / baseline.amat

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (result cache / pool serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PerformanceBreakdown":
        return cls(**data)


def compute_performance(
    accounting: AccessAccounting,
    spec: HybridMemorySpec,
) -> PerformanceBreakdown:
    """Evaluate Eq. 1 on a run's event counts.

    Each probability of Table I is an event count divided by the total
    number of requests; e.g. ``PHitDRAM * PRDRAM`` is exactly
    ``dram_read_hits / total``.
    """
    total = accounting.total_requests
    if total == 0:
        return PerformanceBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)

    dram, nvm, disk = spec.dram, spec.nvm, spec.disk
    dram_hit_time = (
        accounting.dram_read_hits * dram.read_latency
        + accounting.dram_write_hits * dram.write_latency
    ) / total
    nvm_hit_time = (
        accounting.nvm_read_hits * nvm.read_latency
        + accounting.nvm_write_hits * nvm.write_latency
    ) / total
    fault_time = accounting.page_faults * disk.access_latency / total
    migration_to_dram_time = (
        accounting.migrations_to_dram * spec.migration_latency_to_dram() / total
    )
    migration_to_nvm_time = (
        accounting.migrations_to_nvm * spec.migration_latency_to_nvm() / total
    )
    return PerformanceBreakdown(
        dram_hit_time=dram_hit_time,
        nvm_hit_time=nvm_hit_time,
        fault_time=fault_time,
        migration_to_dram_time=migration_to_dram_time,
        migration_to_nvm_time=migration_to_nvm_time,
    )
