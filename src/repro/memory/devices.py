"""Memory and storage device characteristics (paper Table IV / Table II).

All latencies are seconds, all energies joules, so model outputs come
out in SI units without conversion factors.  The presets reproduce
Table IV verbatim (the paper takes them from the CLOCK-DWF study for a
fair comparison) and Table II's 5 ms HDD.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.units import Bytes, Joules, Seconds, Watts

NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
NANOJOULE = 1e-9
GIB = 1 << 30


@dataclass(frozen=True)
class MemoryDeviceSpec:
    """Latency, dynamic energy and static power of one memory technology.

    Parameters
    ----------
    name:
        Technology label used in reports.
    read_latency / write_latency:
        Per-access service time in seconds.
    read_energy / write_energy:
        Per-access dynamic energy in joules.
    static_power_per_gb:
        Background (leakage + refresh) power in watts per GiB of
        capacity — the paper's ``j/GB.second`` column.
    endurance_cycles:
        Writes a cell sustains before wear-out; ``None`` means
        effectively unlimited (DRAM).
    """

    name: str
    read_latency: Seconds
    write_latency: Seconds
    read_energy: Joules
    write_energy: Joules
    static_power_per_gb: Watts
    endurance_cycles: int | None = None

    def __post_init__(self) -> None:
        for field_name in (
            "read_latency",
            "write_latency",
            "read_energy",
            "write_energy",
            "static_power_per_gb",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.endurance_cycles is not None and self.endurance_cycles <= 0:
            raise ValueError("endurance_cycles must be positive when given")

    # ------------------------------------------------------------------
    def access_latency(self, is_write: bool) -> Seconds:
        return self.write_latency if is_write else self.read_latency

    def access_energy(self, is_write: bool) -> Joules:
        return self.write_energy if is_write else self.read_energy

    def static_power(self, capacity_bytes: Bytes) -> Watts:
        """Static power in watts for ``capacity_bytes`` of this memory."""
        return self.static_power_per_gb * capacity_bytes / GIB

    @property
    def is_asymmetric(self) -> bool:
        """True when writes cost more than reads (the NVM signature)."""
        return (
            self.write_latency > self.read_latency
            or self.write_energy > self.read_energy
        )

    def scaled(self, *, latency: float = 1.0, energy: float = 1.0,
               static: float = 1.0) -> "MemoryDeviceSpec":
        """A copy with latency/energy/static power multiplied by factors.

        Lets sensitivity studies model faster or slower NVM generations
        without redefining the full spec.
        """
        return replace(
            self,
            read_latency=self.read_latency * latency,
            write_latency=self.write_latency * latency,
            read_energy=self.read_energy * energy,
            write_energy=self.write_energy * energy,
            static_power_per_gb=self.static_power_per_gb * static,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (result cache / pool serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MemoryDeviceSpec":
        return cls(**data)


@dataclass(frozen=True)
class DiskSpec:
    """Secondary storage model: a constant service time per page move.

    The paper models the disk as a 5 ms HDD (Table II) and charges only
    the disk latency for a page fault, because the DMA write of the
    incoming page overlaps with reading the next block from disk
    (Section II-A).
    """

    name: str
    access_latency: Seconds

    def __post_init__(self) -> None:
        if self.access_latency < 0:
            raise ValueError("access_latency must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (result cache / pool serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DiskSpec":
        return cls(**data)


def dram_spec() -> MemoryDeviceSpec:
    """Table IV DRAM: 50/50 ns, 3.2/3.2 nJ, 1 J/(GiB*s) static."""
    return MemoryDeviceSpec(
        name="DRAM",
        read_latency=50 * NANOSECOND,
        write_latency=50 * NANOSECOND,
        read_energy=3.2 * NANOJOULE,
        write_energy=3.2 * NANOJOULE,
        static_power_per_gb=1.0,
        endurance_cycles=None,
    )


def pcm_spec() -> MemoryDeviceSpec:
    """Table IV NVM (PCM): 100/350 ns, 6.4/32 nJ, 0.1 J/(GiB*s) static.

    Endurance defaults to 1e8 cycles, the figure commonly cited for PCM
    (the paper reports *relative* lifetime, so the constant only scales
    absolute lifetime estimates).
    """
    return MemoryDeviceSpec(
        name="NVM (PCM)",
        read_latency=100 * NANOSECOND,
        write_latency=350 * NANOSECOND,
        read_energy=6.4 * NANOJOULE,
        write_energy=32 * NANOJOULE,
        static_power_per_gb=0.1,
        endurance_cycles=100_000_000,
    )


def sttram_spec() -> MemoryDeviceSpec:
    """An STT-RAM-like NVM point for sensitivity studies.

    Faster and less write-asymmetric than PCM, with higher endurance;
    representative of the STT-RAM parameters in the literature the
    paper cites ([4], [6]).
    """
    return MemoryDeviceSpec(
        name="NVM (STT-RAM)",
        read_latency=60 * NANOSECOND,
        write_latency=120 * NANOSECOND,
        read_energy=4.0 * NANOJOULE,
        write_energy=12.0 * NANOJOULE,
        static_power_per_gb=0.15,
        endurance_cycles=4_000_000_000,
    )


def hdd_spec() -> DiskSpec:
    """Table II secondary storage: HDD with 5 ms response time."""
    return DiskSpec(name="HDD", access_latency=5 * MILLISECOND)


def ssd_spec() -> DiskSpec:
    """An SSD alternative (100 us) for swap-sensitivity ablations."""
    return DiskSpec(name="SSD", access_latency=100 * MICROSECOND)
