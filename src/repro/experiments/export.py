"""Export regenerated artifacts to CSV/JSON for external plotting.

The ASCII reports are for terminals; these writers emit the same data
in machine-readable form so the figures can be replotted with any
charting tool (each CSV row is one bar, each column one stacked
segment).
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Sequence

from repro.experiments.results import FigureData
from repro.experiments.sweep import SweepPoint


def figure_to_rows(figure: FigureData) -> list[dict[str, object]]:
    """Flatten a figure into one dict per bar."""
    rows: list[dict[str, object]] = []
    for bar in figure.bars:
        row: dict[str, object] = {
            "figure": figure.figure_id,
            "label": bar.label,
            "group": bar.group,
            "total": bar.total,
        }
        for name in figure.series_order:
            row[name] = bar.segments.get(name, 0.0)
        rows.append(row)
    return rows


def write_figure_csv(figure: FigureData,
                     path: str | os.PathLike[str]) -> None:
    """Write a figure as CSV (one row per bar)."""
    rows = figure_to_rows(figure)
    fieldnames = (["figure", "label", "group", "total"]
                  + list(figure.series_order))
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def write_figure_json(figure: FigureData,
                      path: str | os.PathLike[str]) -> None:
    """Write a figure as JSON (metadata + bars)."""
    document = {
        "figure": figure.figure_id,
        "title": figure.title,
        "ylabel": figure.ylabel,
        "series": list(figure.series_order),
        "bars": figure_to_rows(figure),
    }
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)


def write_sweep_csv(points: Sequence[SweepPoint],
                    path: str | os.PathLike[str]) -> None:
    """Write sweep points as CSV (one row per sample)."""
    fieldnames = [
        "parameter", "value", "amat_ns", "memory_time_ns", "appr_nj",
        "nvm_writes", "migrations_to_dram", "migrations_to_nvm",
    ]
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for point in points:
            writer.writerow({name: getattr(point, name)
                             for name in fieldnames})


def load_figure_json(path: str | os.PathLike[str]) -> FigureData:
    """Rebuild a :class:`FigureData` from :func:`write_figure_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        document = json.load(handle)
    figure = FigureData(
        figure_id=document["figure"],
        title=document["title"],
        ylabel=document["ylabel"],
        series_order=tuple(document["series"]),
    )
    for row in document["bars"]:
        figure.add_bar(
            row["label"],
            group=row.get("group", ""),
            **{name: row[name] for name in document["series"]},
        )
    return figure
