"""Declarative run specifications: the executor's unit of work.

A :class:`RunSpec` names everything that determines one simulation —
the workload (plus its scales and seed), the policy (plus structured
overrides), an optional declarative machine-spec transform, and the
warm-up fraction.  It is frozen, hashable and picklable, so it can be

* fanned out over a ``multiprocessing`` pool (the spec crosses the
  process boundary, the trace is rendered worker-side),
* used as a dictionary key for in-memory memoisation, and
* digested into a stable content address for the on-disk result cache
  (:mod:`repro.experiments.executor`).

Everything that used to construct :class:`HybridMemorySimulator` by
hand — the experiment runner, the sweeps, the examples — now goes
through :meth:`RunSpec.execute`, so all evaluation paths share one
simulation recipe (and the ``R011`` lint rule keeps it that way).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import HybridMemorySimulator, PolicyFactory, RunResult
from repro.obs.config import EventConfig
from repro.policies.registry import policy_factory
from repro.sampling.config import SamplingConfig
from repro.trace.source import SourceSpec, materialize
from repro.workloads.parsec import (
    DEFAULT_FOOTPRINT_SCALE,
    DEFAULT_REQUEST_SCALE,
    ParsecProfile,
    WorkloadInstance,
    parsec_workload,
)

# ----------------------------------------------------------------------
# Declarative machine-spec transforms
# ----------------------------------------------------------------------
# A transform is named by a string plus positional arguments so it can
# live inside a hashable, picklable spec (closures cannot).  The
# vocabulary covers every normalisation the evaluation uses: the
# paper's single-module baselines, the A-3 DRAM-share ablation, and the
# NVM-technology scaling studies.


def _dram_only(spec: HybridMemorySpec) -> HybridMemorySpec:
    return spec.as_dram_only()


def _nvm_only(spec: HybridMemorySpec) -> HybridMemorySpec:
    return spec.as_nvm_only()


def _dram_fraction(spec: HybridMemorySpec,
                   fraction: float) -> HybridMemorySpec:
    return spec.with_dram_fraction(fraction)


def _nvm_scaled(spec: HybridMemorySpec, latency: float = 1.0,
                energy: float = 1.0, static: float = 1.0) -> HybridMemorySpec:
    return replace(spec, nvm=spec.nvm.scaled(
        latency=latency, energy=energy, static=static))


SPEC_TRANSFORMS: dict[str, Callable[..., HybridMemorySpec]] = {
    "dram-only": _dram_only,
    "nvm-only": _nvm_only,
    "dram-fraction": _dram_fraction,
    "nvm-scaled": _nvm_scaled,
}

#: Normalised override form: sorted ``(name, value)`` pairs.
Overrides = tuple[tuple[str, Any], ...]

#: Execution engines a spec can name.  ``simulate`` replays the trace
#: through :class:`HybridMemorySimulator`; ``analytic`` evaluates the
#: Markov-chain estimator (:mod:`repro.model`) on the workload profile;
#: ``sampled`` replays a deterministic 1-in-K spatial page sample at a
#: scaled frame budget and scales the counters back up with confidence
#: intervals (:mod:`repro.sampling`).
ENGINES = ("simulate", "analytic", "sampled")


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation, as data.

    Parameters
    ----------
    workload:
        PARSEC profile name (Table III).
    policy:
        Registered policy name (:mod:`repro.policies.registry`).
    request_scale / footprint_scale / seed:
        Workload rendering knobs (:func:`parsec_workload`).
    policy_overrides:
        Structured policy configuration — e.g.
        ``{"read_threshold": 8}`` for the proposed scheme — passed to
        :func:`policy_factory`; a mapping is normalised to sorted
        pairs so equal configurations hash equally.
    spec_transform:
        Declarative machine transform, ``(name, *args)`` over
        :data:`SPEC_TRANSFORMS` — e.g. ``("dram-only",)`` or
        ``("dram-fraction", 0.3)``.
    warmup_fraction:
        Override of the workload's own warm-up fraction; ``None``
        keeps the rendered instance's value.
    events:
        Event-stream collection (:class:`repro.obs.EventConfig`);
        ``None`` (default) leaves the observability bus detached.  A
        mapping is normalised to an ``EventConfig``.  Part of the
        spec's identity: event-bearing results get their own cache
        entries.
    engine:
        Execution engine (:data:`ENGINES`).  ``"simulate"`` (default)
        replays the trace; ``"analytic"`` evaluates the closed-form
        estimator in :mod:`repro.model`; ``"sampled"`` replays a
        spatial page sample (:mod:`repro.sampling`).  Part of the
        spec's identity — analytic and sampled results get their own
        digests and cache entries — but the default keeps pre-engine
        digests unchanged, so warm caches survive.  Neither fast
        engine carries an event stream.
    sampling:
        Sampling configuration (:class:`repro.sampling.SamplingConfig`),
        only meaningful — and always present, defaulting to
        ``SamplingConfig()`` — with ``engine="sampled"``.  A mapping is
        normalised to a ``SamplingConfig``.  Part of the spec's
        identity; ``None`` on non-sampled specs keeps their
        pre-sampling digests unchanged.
    source:
        Externally-supplied trace (:class:`repro.trace.SourceSpec`),
        usually built by :meth:`for_source`.  When set, the workload is
        not rendered from a PARSEC profile — the simulate engine
        streams the backing trace file chunk by chunk at constant
        memory, the analytic and sampled engines see a synthetic
        profile derived from the scan statistics — and
        ``request_scale``/``footprint_scale``/``seed`` are inert (an
        external trace is already fully determined).  Part of the
        spec's identity through the chunk-size-invariant *content
        digest* (the backing path is deliberately excluded, so the
        same trace uploaded twice shares one cache entry); ``None``
        keeps pre-source digests unchanged.
    """

    workload: str
    policy: str = "proposed"
    request_scale: float = DEFAULT_REQUEST_SCALE
    footprint_scale: float = DEFAULT_FOOTPRINT_SCALE
    seed: int = 2016
    policy_overrides: Overrides = ()
    spec_transform: tuple = ()
    warmup_fraction: float | None = None
    events: EventConfig | None = None
    engine: str = "simulate"
    sampling: SamplingConfig | None = None
    source: SourceSpec | None = None

    def __post_init__(self) -> None:
        if self.source is not None and not isinstance(self.source,
                                                      SourceSpec):
            object.__setattr__(
                self, "source", SourceSpec.from_dict(self.source)
            )
        if self.engine not in ENGINES:
            known = ", ".join(ENGINES)
            raise ValueError(
                f"unknown engine {self.engine!r}; known: {known}")
        if self.engine != "simulate" and self.events is not None:
            raise ValueError(
                f"engine=\"{self.engine}\" estimates aggregate counters "
                "and produces no event stream; drop events= or use "
                "engine=\"simulate\"")
        if self.events is not None and not isinstance(self.events,
                                                      EventConfig):
            object.__setattr__(
                self, "events", EventConfig.from_dict(self.events)
            )
        if self.sampling is not None:
            if self.engine != "sampled":
                raise ValueError(
                    "sampling= is only meaningful with "
                    "engine=\"sampled\"; drop it or switch engines")
            if not isinstance(self.sampling, SamplingConfig):
                object.__setattr__(
                    self, "sampling", SamplingConfig.from_dict(self.sampling)
                )
        elif self.engine == "sampled":
            # Sampled specs always carry an explicit config, so equal
            # configurations digest equally (None vs default would
            # otherwise split the cache).
            object.__setattr__(self, "sampling", SamplingConfig())
        overrides = self.policy_overrides
        if isinstance(overrides, Mapping):
            pairs = tuple(sorted(overrides.items()))
        else:
            pairs = tuple(sorted((str(k), v) for k, v in overrides))
        object.__setattr__(self, "policy_overrides", pairs)
        transform = tuple(self.spec_transform)
        if transform and transform[0] not in SPEC_TRANSFORMS:
            known = ", ".join(sorted(SPEC_TRANSFORMS))
            raise ValueError(
                f"unknown spec transform {transform[0]!r}; known: {known}")
        object.__setattr__(self, "spec_transform", transform)
        if self.warmup_fraction is not None \
                and not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def core(cls, workload: str, policy: str, **kwargs: Any) -> "RunSpec":
        """A figure-grid spec: single-module baselines get the paper's
        same-total-capacity normalisation implied by their name."""
        transform: tuple = ()
        if policy.startswith("dram-only"):
            transform = ("dram-only",)
        elif policy.startswith("nvm-only"):
            transform = ("nvm-only",)
        return cls(workload=workload, policy=policy,
                   spec_transform=transform, **kwargs)

    @classmethod
    def for_source(cls, source: SourceSpec, **kwargs: Any) -> "RunSpec":
        """A spec over an externally-supplied trace.

        ``source`` is a :class:`~repro.trace.SourceSpec` — typically
        from :meth:`repro.trace.TraceStore.add`, which turns any
        :class:`~repro.trace.TraceSource` (a materialised trace, a
        generator, a ``.trc``/``.npz`` file) into a content-addressed,
        file-backed descriptor in one streaming pass.  The workload
        name defaults to the source's name.
        """
        kwargs.setdefault("workload", source.name)
        return cls(source=source, **kwargs)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def key(self) -> tuple:
        """Stable, totally-ordered sort key (deterministic merges)."""
        return (
            self.workload,
            self.policy,
            repr(self.spec_transform),
            repr(self.policy_overrides),
            self.request_scale,
            self.footprint_scale,
            self.seed,
            -1.0 if self.warmup_fraction is None else self.warmup_fraction,
            repr(self.events),
            self.engine,
            repr(self.sampling),
            # Content identity only: two specs over the same trace
            # reached via different paths sort (and cache) together.
            "" if self.source is None else self.source.digest,
        )

    def to_dict(self) -> dict:
        """JSON-compatible form (cache keys and cache-file headers)."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "request_scale": self.request_scale,
            "footprint_scale": self.footprint_scale,
            "seed": self.seed,
            "policy_overrides": [list(pair) for pair in self.policy_overrides],
            "spec_transform": list(self.spec_transform),
            "warmup_fraction": self.warmup_fraction,
            "events": (
                self.events.to_dict() if self.events is not None else None
            ),
            "engine": self.engine,
            "sampling": (
                self.sampling.to_dict() if self.sampling is not None
                else None
            ),
            "source": (
                self.source.to_dict() if self.source is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        events = data.get("events")
        sampling = data.get("sampling")
        source = data.get("source")
        return cls(
            workload=data["workload"],
            policy=data["policy"],
            request_scale=data["request_scale"],
            footprint_scale=data["footprint_scale"],
            seed=data["seed"],
            policy_overrides=tuple(
                (name, value) for name, value in data["policy_overrides"]
            ),
            spec_transform=tuple(data["spec_transform"]),
            warmup_fraction=data["warmup_fraction"],
            events=(
                EventConfig.from_dict(events) if events is not None
                else None
            ),
            engine=data.get("engine", "simulate"),
            sampling=(
                SamplingConfig.from_dict(sampling) if sampling is not None
                else None
            ),
            source=(
                SourceSpec.from_dict(source) if source is not None else None
            ),
        )

    def digest(self) -> str:
        """Content address of the spec (code version is layered on by
        the cache, so the digest itself is pure input identity)."""
        data = self.to_dict()
        if data["engine"] == "simulate":
            # Back-compat: the engine field postdates the cache format;
            # default-engine specs keep their pre-engine digests so
            # existing warm caches stay valid.
            del data["engine"]
        if data["sampling"] is None:
            # Same elision for the sampling config: only sampled specs
            # (which always carry one) spend a digest key on it.
            del data["sampling"]
        if data["source"] is None:
            # And for external sources: profile-rendered specs keep
            # their pre-source digests.
            del data["source"]
        else:
            # The backing path is where the bytes happen to live, not
            # what they are — digest by content identity only.
            data["source"] = self.source.identity_dict()  # type: ignore[union-attr]
        canonical = json.dumps(data, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]

    def label(self) -> str:
        """Short human-readable form for progress reporting."""
        parts = [self.workload, self.policy]
        if self.source is not None:
            parts[0] = f"{self.workload}@{self.source.digest[:8]}"
        if self.engine == "sampled" and self.sampling is not None:
            parts.append(f"sampled@1/{self.sampling.rate}")
        elif self.engine != "simulate":
            parts.append(self.engine)
        if self.spec_transform:
            parts.append("/".join(str(p) for p in self.spec_transform))
        if self.policy_overrides:
            parts.append(",".join(f"{k}={v}"
                                  for k, v in self.policy_overrides))
        return ":".join(parts)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def render(self) -> WorkloadInstance:
        """Render the workload (trace + sized machine) for this spec.

        Source specs materialise the backing trace and wrap it in a
        synthetic profile built from the scan statistics — the form
        the analytic and sampled engines consume.  The simulate engine
        never calls this for a source spec: it streams the file
        directly (see :meth:`execute`), so replay stays constant
        memory.
        """
        if self.source is not None:
            return self._render_source()
        return parsec_workload(
            self.workload,
            request_scale=self.request_scale,
            footprint_scale=self.footprint_scale,
            seed=self.seed,
        )

    def _render_source(self) -> WorkloadInstance:
        source = self.source
        assert source is not None
        profile = ParsecProfile(
            name=source.name,
            working_set_kb=max(
                1, source.unique_pages * source.page_size // 1024
            ),
            read_requests=source.requests - source.write_requests,
            write_requests=source.write_requests,
            compute_gap_ns=0.0,
            description="external trace source",
        )
        return WorkloadInstance(
            profile=profile,
            trace=materialize(source.open()),
            spec=self.source_machine(),
            warmup_fraction=0.0,
            inter_request_gap=0.0,
        )

    def source_machine(self) -> HybridMemorySpec:
        """The machine a source spec implies: the paper's sizing rule
        applied to the scanned footprint, before the transform."""
        source = self.source
        assert source is not None
        return HybridMemorySpec.for_footprint(
            source.unique_pages, page_size=source.page_size
        )

    def machine_spec(self, instance: WorkloadInstance) -> HybridMemorySpec:
        """The rendered machine with this spec's transform applied."""
        return self._transform(instance.spec)

    def _transform(self, spec: HybridMemorySpec) -> HybridMemorySpec:
        if self.spec_transform:
            name, *args = self.spec_transform
            spec = SPEC_TRANSFORMS[name](spec, *args)
        return spec

    def build_policy_factory(self) -> PolicyFactory:
        """Policy factory resolved from the registry plus overrides."""
        return policy_factory(self.policy, dict(self.policy_overrides) or None)

    def execute(
        self,
        instance: WorkloadInstance | None = None,
        factory: PolicyFactory | None = None,
    ) -> RunResult:
        """Run (or analytically estimate) what this spec describes.

        ``instance`` lets callers (the executor's per-worker cache, a
        sweep over one workload) reuse an already-rendered workload;
        it must match the spec's rendering knobs.  ``factory``
        substitutes the policy factory — used by studies that need the
        policy *object* afterwards (e.g. the adaptive-threshold
        comparison); such runs bypass the result cache because the
        factory is not part of the spec's identity (and are
        necessarily simulations: the analytic engine has no policy
        object to hand back).
        """
        if self.engine == "analytic":
            if factory is not None:
                raise ValueError(
                    "engine=\"analytic\" cannot honour a custom policy "
                    "factory; use engine=\"simulate\"")
            from repro.model.estimator import estimate_spec

            return estimate_spec(self, instance=instance)
        if self.engine == "sampled":
            from repro.sampling.engine import sample_spec

            return sample_spec(self, instance=instance, factory=factory)
        if instance is None and self.source is not None:
            # Stream the backing file chunk by chunk: peak memory is
            # one chunk regardless of trace length.  Bit-identical to
            # the materialised replay below (the chunk-boundary
            # equivalence suite pins this), so both paths share one
            # cache entry.
            simulator = HybridMemorySimulator(
                self._transform(self.source_machine()),
                factory if factory is not None
                else self.build_policy_factory(),
                events=self.events,
            )
            warmup = (0.0 if self.warmup_fraction is None
                      else self.warmup_fraction)
            return simulator.run_source(
                self.source.open(), warmup_fraction=warmup
            )
        if instance is None:
            instance = self.render()
        simulator = HybridMemorySimulator(
            self.machine_spec(instance),
            factory if factory is not None else self.build_policy_factory(),
            inter_request_gap=instance.inter_request_gap,
            events=self.events,
        )
        warmup = (instance.warmup_fraction if self.warmup_fraction is None
                  else self.warmup_fraction)
        return simulator.run(instance.trace, warmup_fraction=warmup)
