"""Experiment runner: policy x workload grids with caching.

The figure builders all need the same underlying runs (the proposed
scheme, CLOCK-DWF and the two homogeneous baselines over the twelve
PARSEC workloads), so the runner renders each workload once and caches
every simulation result.
"""

from __future__ import annotations

from repro.mmu.simulator import HybridMemorySimulator, RunResult
from repro.policies.registry import policy_factory
from repro.workloads.parsec import (
    DEFAULT_FOOTPRINT_SCALE,
    DEFAULT_REQUEST_SCALE,
    WORKLOAD_NAMES,
    WorkloadInstance,
    parsec_workload,
)
from repro.experiments.results import WorkloadRuns

#: The four runs every paper figure draws on.
CORE_POLICIES = ("dram-only", "nvm-only", "clock-dwf", "proposed")


class ExperimentRunner:
    """Runs and caches (workload, policy) simulations at one scale."""

    def __init__(
        self,
        request_scale: float = DEFAULT_REQUEST_SCALE,
        footprint_scale: float = DEFAULT_FOOTPRINT_SCALE,
        seed: int = 2016,
        workloads: tuple[str, ...] = WORKLOAD_NAMES,
    ) -> None:
        self.request_scale = request_scale
        self.footprint_scale = footprint_scale
        self.seed = seed
        self.workload_names = workloads
        self._instances: dict[str, WorkloadInstance] = {}
        self._runs: dict[tuple[str, str], RunResult] = {}

    # ------------------------------------------------------------------
    def workload(self, name: str) -> WorkloadInstance:
        """The rendered workload (cached)."""
        if name not in self._instances:
            self._instances[name] = parsec_workload(
                name,
                request_scale=self.request_scale,
                footprint_scale=self.footprint_scale,
                seed=self.seed,
            )
        return self._instances[name]

    def run(self, workload_name: str, policy_name: str) -> RunResult:
        """Simulate one policy on one workload (cached).

        The homogeneous baselines run on the same *total* capacity with
        all frames moved to one module, exactly as the paper's
        normalisations require.
        """
        key = (workload_name, policy_name)
        if key not in self._runs:
            instance = self.workload(workload_name)
            spec = instance.spec
            if policy_name.startswith("dram-only"):
                spec = spec.as_dram_only()
            elif policy_name.startswith("nvm-only"):
                spec = spec.as_nvm_only()
            simulator = HybridMemorySimulator(
                spec,
                policy_factory(policy_name),
                inter_request_gap=instance.inter_request_gap,
            )
            self._runs[key] = simulator.run(
                instance.trace, warmup_fraction=instance.warmup_fraction
            )
        return self._runs[key]

    def runs_for(self, workload_name: str,
                 policies: tuple[str, ...] = CORE_POLICIES) -> WorkloadRuns:
        """All requested policy runs for one workload."""
        return WorkloadRuns(
            workload=workload_name,
            runs={policy: self.run(workload_name, policy)
                  for policy in policies},
        )

    def grid(self, policies: tuple[str, ...] = CORE_POLICIES,
             workloads: tuple[str, ...] | None = None,
             ) -> dict[str, WorkloadRuns]:
        """The full policy x workload grid (cached per cell)."""
        return {
            name: self.runs_for(name, policies)
            for name in (workloads or self.workload_names)
        }


#: Process-wide default runner so benchmarks share one cache.
_default_runner: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """A shared runner instance (benchmarks reuse its cached runs)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
