"""Experiment runner: policy x workload grids over the executor.

The figure builders all need the same underlying runs (the proposed
scheme, CLOCK-DWF and the two homogeneous baselines over the twelve
PARSEC workloads).  The runner translates ``(workload, policy)`` cells
into declarative :class:`~repro.experiments.runspec.RunSpec` batches,
submits them through a :class:`~repro.experiments.executor.
ParallelExecutor` (parallel with ``jobs > 1``, optionally backed by the
persistent disk cache), and memoises the merged results in-process so
every figure derives from the same run objects.

``ExperimentRunner.run(workload, policy)`` — the historical
cell-at-a-time entry point — is gone; build specs with ``spec_for`` /
``RunSpec.core`` and batch them through ``submit``.
"""

from __future__ import annotations

from repro.experiments.executor import ParallelExecutor, ResultCache
from repro.experiments.results import WorkloadRuns
from repro.experiments.runspec import RunSpec
from repro.mmu.simulator import RunResult
from repro.obs.config import EventConfig
from repro.sampling import SamplingConfig
from repro.workloads.parsec import (
    DEFAULT_FOOTPRINT_SCALE,
    DEFAULT_REQUEST_SCALE,
    WORKLOAD_NAMES,
    WorkloadInstance,
    parsec_workload,
)

#: The four runs every paper figure draws on.
CORE_POLICIES = ("dram-only", "nvm-only", "clock-dwf", "proposed")


class ExperimentRunner:
    """Runs and caches (workload, policy) simulations at one scale.

    Parameters
    ----------
    request_scale / footprint_scale / seed / workloads:
        Rendering knobs shared by every spec the runner builds.
    jobs:
        Worker processes for batch submissions (``grid``/``runs_for``);
        ``1`` (the default) executes serially in-process.
    cache:
        A :class:`ResultCache` for cross-process persistence, or
        ``None`` (in-memory memoisation only).
    executor:
        A fully-configured executor; overrides ``jobs``/``cache``.
    events:
        Event-stream collection config attached to every spec the
        runner builds (``None`` keeps the observability bus detached).
    engine:
        Execution engine stamped on every spec the runner builds:
        ``"simulate"`` (default), ``"analytic"`` or ``"sampled"``
        (:data:`repro.experiments.runspec.ENGINES`).
    sampling:
        Sampling configuration stamped on every spec when ``engine``
        is ``"sampled"`` (``None`` means the engine default,
        :class:`~repro.sampling.SamplingConfig`).
    """

    def __init__(
        self,
        request_scale: float = DEFAULT_REQUEST_SCALE,
        footprint_scale: float = DEFAULT_FOOTPRINT_SCALE,
        seed: int = 2016,
        workloads: tuple[str, ...] = WORKLOAD_NAMES,
        jobs: int = 1,
        cache: ResultCache | None = None,
        executor: ParallelExecutor | None = None,
        events: EventConfig | None = None,
        engine: str = "simulate",
        sampling: SamplingConfig | None = None,
    ) -> None:
        self.request_scale = request_scale
        self.footprint_scale = footprint_scale
        self.seed = seed
        self.workload_names = workloads
        self.events = events
        self.engine = engine
        self.sampling = sampling
        self.executor = executor or ParallelExecutor(jobs=jobs, cache=cache)
        self._instances: dict[str, WorkloadInstance] = {}
        self._runs: dict[RunSpec, RunResult] = {}

    # ------------------------------------------------------------------
    def workload(self, name: str) -> WorkloadInstance:
        """The rendered workload (cached)."""
        if name not in self._instances:
            self._instances[name] = parsec_workload(
                name,
                request_scale=self.request_scale,
                footprint_scale=self.footprint_scale,
                seed=self.seed,
            )
        return self._instances[name]

    def spec_for(self, workload_name: str, policy_name: str) -> RunSpec:
        """The declarative spec for one grid cell.

        The homogeneous baselines run on the same *total* capacity with
        all frames moved to one module, exactly as the paper's
        normalisations require (``RunSpec.core`` derives that transform
        from the policy name).
        """
        return RunSpec.core(
            workload_name,
            policy_name,
            request_scale=self.request_scale,
            footprint_scale=self.footprint_scale,
            seed=self.seed,
            events=self.events,
            engine=self.engine,
            sampling=self.sampling,
        )

    def submit(self, specs: list[RunSpec]) -> list[RunResult]:
        """Execute a spec batch through the executor, memoised.

        Already-seen specs return the identical in-memory object;
        everything else goes to the executor in one submission (and so
        runs in parallel when the executor has workers).
        """
        missing = [spec for spec in dict.fromkeys(specs)
                   if spec not in self._runs]
        if missing:
            for spec, result in zip(missing, self.executor.submit(missing)):
                self._runs[spec] = result
        return [self._runs[spec] for spec in specs]

    def run(self, workload_name: str, policy_name: str) -> RunResult:
        """Removed — the historical cell-at-a-time entry point.

        Raises immediately with migration directions; kept as a stub
        (rather than deleted) so stale call sites fail with an
        actionable message instead of an ``AttributeError``.
        """
        raise RuntimeError(
            "ExperimentRunner.run() was removed; build a RunSpec "
            "(spec_for/RunSpec.core) and use submit()/RunSpec.execute(), "
            "or batch through grid()/runs_for() so cells fan out together"
        )

    def runs_for(self, workload_name: str,
                 policies: tuple[str, ...] = CORE_POLICIES) -> WorkloadRuns:
        """All requested policy runs for one workload."""
        specs = [self.spec_for(workload_name, policy)
                 for policy in policies]
        results = self.submit(specs)
        return WorkloadRuns(
            workload=workload_name,
            runs=dict(zip(policies, results)),
        )

    def grid(self, policies: tuple[str, ...] = CORE_POLICIES,
             workloads: tuple[str, ...] | None = None,
             ) -> dict[str, WorkloadRuns]:
        """The full policy x workload grid (one batched submission)."""
        names = tuple(workloads or self.workload_names)
        specs = [self.spec_for(name, policy)
                 for name in names for policy in policies]
        self.submit(specs)  # one batch: cells fan out together
        return {name: self.runs_for(name, policies) for name in names}


#: Process-wide default runner so benchmarks share one cache.
_default_runner: ExperimentRunner | None = None


def default_runner() -> ExperimentRunner:
    """A shared runner instance (benchmarks reuse its cached runs)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
