"""Regeneration of the paper's tables (I-IV)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.hierarchy import COTSON_CORES, L1_GEOMETRY, LLC_GEOMETRY
from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.trace.stats import characterize
from repro.workloads.parsec import PROFILES, WORKLOAD_NAMES, parsec_workload


@dataclass(frozen=True)
class TableIIIRow:
    """Paper-vs-measured workload characterisation (Table III)."""

    workload: str
    paper_wss_kb: int
    paper_reads: int
    paper_writes: int
    measured_wss_pages: int
    measured_reads: int
    measured_writes: int

    @property
    def paper_write_ratio(self) -> float:
        total = self.paper_reads + self.paper_writes
        return self.paper_writes / total if total else 0.0

    @property
    def measured_write_ratio(self) -> float:
        total = self.measured_reads + self.measured_writes
        return self.measured_writes / total if total else 0.0

    @property
    def write_ratio_error(self) -> float:
        """Absolute difference in write share, in percentage points."""
        return abs(self.paper_write_ratio - self.measured_write_ratio) * 100


def table_iii(
    request_scale: float | None = None,
    footprint_scale: float | None = None,
    seed: int = 2016,
    names: tuple[str, ...] = WORKLOAD_NAMES,
) -> list[TableIIIRow]:
    """Characterise each synthetic workload against its Table III row."""
    kwargs = {}
    if request_scale is not None:
        kwargs["request_scale"] = request_scale
    if footprint_scale is not None:
        kwargs["footprint_scale"] = footprint_scale
    rows: list[TableIIIRow] = []
    for name in names:
        profile = PROFILES[name]
        instance = parsec_workload(name, seed=seed, **kwargs)
        stats = characterize(instance.trace)
        rows.append(TableIIIRow(
            workload=name,
            paper_wss_kb=profile.working_set_kb,
            paper_reads=profile.read_requests,
            paper_writes=profile.write_requests,
            measured_wss_pages=stats.unique_pages,
            measured_reads=stats.read_requests,
            measured_writes=stats.write_requests,
        ))
    return rows


def table_iv() -> list[tuple[str, str, str, str]]:
    """Memory characteristics exactly as Table IV prints them."""
    rows = []
    for spec in (dram_spec(), pcm_spec()):
        rows.append((
            spec.name,
            f"{spec.read_latency * 1e9:.0f}/{spec.write_latency * 1e9:.0f}",
            f"{spec.read_energy * 1e9:.1f}/{spec.write_energy * 1e9:.1f}",
            f"{spec.static_power_per_gb:g}",
        ))
    return rows


def table_ii() -> list[tuple[str, str]]:
    """The COTSon configuration our substitute hierarchy implements."""
    def _cache(geometry) -> str:
        return (f"{geometry.size_bytes // 1024}KB WB "
                f"{geometry.associativity}-way set associative with "
                f"{geometry.line_size}B line size")

    llc_kb = LLC_GEOMETRY.size_bytes // 1024
    llc = (f"{llc_kb // 1024}MB WB {LLC_GEOMETRY.associativity}-way set "
           f"associative with {LLC_GEOMETRY.line_size}B line size")
    disk = hdd_spec()
    return [
        ("CPU", f"{COTSON_CORES}-core with write-invalidate coherence"),
        ("L1 Data Cache", _cache(L1_GEOMETRY)),
        ("L1 Instruction Cache", _cache(L1_GEOMETRY)),
        ("Last-Level Cache", llc),
        ("Secondary Storage",
         f"{disk.name} with {disk.access_latency * 1e3:.0f} milliseconds "
         "response time"),
    ]
