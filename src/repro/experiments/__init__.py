"""Evaluation harness: runners, figure/table builders, sweeps, reports."""

from repro.experiments.figures import (
    FIGURE_BUILDERS,
    build_figure,
    figure_1,
    figure_2a,
    figure_2b,
    figure_2c,
    figure_4a,
    figure_4b,
    figure_4c,
)
from repro.experiments.claims import ClaimResult, claims_hold, verify_claims
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    ExecutorError,
    ExecutorStats,
    ParallelExecutor,
    ResultCache,
    WorkerFailure,
    code_version,
    execute_specs,
)
from repro.experiments.runspec import SPEC_TRANSFORMS, RunSpec
from repro.experiments.export import (
    figure_to_rows,
    load_figure_json,
    write_figure_csv,
    write_figure_json,
    write_sweep_csv,
)
from repro.experiments.report import figure_summary, render_figure, render_table
from repro.experiments.results import (
    ARITH_MEAN_LABEL,
    GEO_MEAN_LABEL,
    FigureData,
    StackedBar,
    WorkloadRuns,
    arith_mean,
    geo_mean,
)
from repro.experiments.runner import (
    CORE_POLICIES,
    ExperimentRunner,
    default_runner,
)
from repro.experiments.sweep import (
    AdaptiveComparison,
    SweepPoint,
    adaptive_comparison,
    dram_ratio_sweep,
    threshold_sweep,
    window_sweep,
)
from repro.experiments.tables import TableIIIRow, table_ii, table_iii, table_iv

__all__ = [
    "ARITH_MEAN_LABEL",
    "ClaimResult",
    "DEFAULT_CACHE_DIR",
    "ExecutorError",
    "ExecutorStats",
    "ParallelExecutor",
    "ResultCache",
    "RunSpec",
    "SPEC_TRANSFORMS",
    "WorkerFailure",
    "claims_hold",
    "code_version",
    "execute_specs",
    "verify_claims",
    "AdaptiveComparison",
    "CORE_POLICIES",
    "ExperimentRunner",
    "FIGURE_BUILDERS",
    "FigureData",
    "GEO_MEAN_LABEL",
    "StackedBar",
    "SweepPoint",
    "TableIIIRow",
    "WorkloadRuns",
    "adaptive_comparison",
    "arith_mean",
    "build_figure",
    "default_runner",
    "dram_ratio_sweep",
    "figure_1",
    "figure_2a",
    "figure_2b",
    "figure_2c",
    "figure_4a",
    "figure_4b",
    "figure_4c",
    "figure_summary",
    "figure_to_rows",
    "geo_mean",
    "load_figure_json",
    "render_figure",
    "render_table",
    "table_ii",
    "table_iii",
    "table_iv",
    "threshold_sweep",
    "window_sweep",
    "write_figure_csv",
    "write_figure_json",
    "write_sweep_csv",
]
