"""The paper's claims as executable checks.

Every quantitative statement the paper makes about its evaluation is
encoded here as a named predicate over the regenerated figures.  The
``verify_claims`` audit runs them all and reports pass/fail with the
measured value next to the paper's — the one-stop answer to "does this
reproduction actually reproduce the paper?".

Used by the CLI (``python -m repro claims``) and unit-tested; the
per-figure benchmarks assert the same shapes with more context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figures import (
    figure_1,
    figure_2a,
    figure_2b,
    figure_2c,
    figure_4a,
    figure_4b,
    figure_4c,
)
from repro.experiments.results import GEO_MEAN_LABEL
from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one paper claim."""

    claim_id: str
    statement: str
    paper_value: str
    measured: str
    holds: bool


def _result(claim_id: str, statement: str, paper_value: str,
            measured: float, fmt: str, holds: bool) -> ClaimResult:
    return ClaimResult(
        claim_id=claim_id,
        statement=statement,
        paper_value=paper_value,
        measured=fmt.format(measured),
        holds=holds,
    )


def verify_claims(runner: ExperimentRunner) -> list[ClaimResult]:
    """Check every encoded claim; returns one result per claim."""
    fig1 = figure_1(runner)
    fig2a = figure_2a(runner)
    fig2b = figure_2b(runner)
    fig2c = figure_2c(runner)
    fig4a = figure_4a(runner)
    fig4b = figure_4b(runner)
    fig4c = figure_4c(runner)

    results: list[ClaimResult] = []

    # ------------------------------------------------------------------
    # Section III (motivation)
    # ------------------------------------------------------------------
    static_shares = {
        bar.label: bar.segments["Static"] / bar.total for bar in fig1.bars
    }
    dominant = sum(1 for share in static_shares.values() if share >= 0.5)
    results.append(_result(
        "III.1",
        "static power dominates DRAM-only power for most workloads",
        "60-80% share", dominant / len(static_shares),
        "{:.0%} of workloads static-dominated",
        dominant >= 10,
    ))
    results.append(_result(
        "III.2",
        "streamcluster is the dynamic-power outlier",
        "outlier", static_shares["streamcluster"],
        "streamcluster static share {:.2f}",
        static_shares["streamcluster"] == min(static_shares.values()),
    ))

    dwf_migration_heavy = sum(
        1 for bar in fig2a.bars
        if bar.group == "" and bar.label not in (GEO_MEAN_LABEL, "A-Mean")
        and bar.segments["Migration"] / bar.total > 0.4
    )
    results.append(_result(
        "III.3",
        "migrations exceed 40% of CLOCK-DWF power in many workloads",
        ">40% in many", float(dwf_migration_heavy),
        "{:.0f} workloads above 40%",
        dwf_migration_heavy >= 4,
    ))

    amat_bars = [
        bar for bar in fig2b.bars
        if bar.label not in (GEO_MEAN_LABEL, "A-Mean")
    ]
    mean_migration_share = sum(
        bar.segments["Migrations"] / bar.total for bar in amat_bars
    ) / len(amat_bars)
    results.append(_result(
        "III.4",
        "migrations contribute the bulk of CLOCK-DWF AMAT",
        ">60% of total", mean_migration_share,
        "mean migration share {:.2f}",
        mean_migration_share > 0.45,
    ))

    dwf_above_nvm_only = sum(
        1 for bar in fig2c.bars
        if bar.label not in (GEO_MEAN_LABEL, "A-Mean") and bar.total > 1.0
    )
    worst_dwf_writes = max(
        bar.total for bar in fig2c.bars
        if bar.label not in (GEO_MEAN_LABEL, "A-Mean")
    )
    results.append(_result(
        "III.5",
        "with migrations counted, CLOCK-DWF writes more to NVM than an "
        "NVM-only memory on several workloads",
        "up to 3.74x", worst_dwf_writes,
        "worst {:.2f}x",
        dwf_above_nvm_only >= 3 and worst_dwf_writes > 2.0,
    ))

    # ------------------------------------------------------------------
    # Section V (results)
    # ------------------------------------------------------------------
    proposed_power = fig4a.totals(group="proposed")
    dwf_power = fig4a.totals(group="clock-dwf")
    power_wins = sum(
        1 for name in proposed_power
        if name not in (GEO_MEAN_LABEL, "A-Mean")
        and proposed_power[name] < dwf_power[name]
    )
    best_power_vs_dwf = min(
        proposed_power[name] / dwf_power[name]
        for name in proposed_power
        if name not in (GEO_MEAN_LABEL, "A-Mean")
    )
    results.append(_result(
        "V.1",
        "proposed scheme reduces power vs CLOCK-DWF on most workloads",
        "up to 48% (14% mean)", 1 - best_power_vs_dwf,
        "best reduction {:.0%}",
        power_wins >= 8 and best_power_vs_dwf < 0.6,
    ))

    proposed_gmean_power = fig4a.mean_total(GEO_MEAN_LABEL,
                                            group="proposed")
    best_vs_dram = min(
        value for name, value in proposed_power.items()
        if name not in (GEO_MEAN_LABEL, "A-Mean")
    )
    results.append(_result(
        "V.2",
        "proposed scheme reduces power vs DRAM-only memory",
        "up to 79% (43% mean)", 1 - best_vs_dram,
        "best reduction {:.0%}",
        proposed_gmean_power < 0.95 and best_vs_dram < 0.6,
    ))

    unsuitable = [
        name for name in ("canneal", "streamcluster")
        if proposed_power[name] > 1.0 and dwf_power[name] > 1.0
    ]
    results.append(_result(
        "V.3",
        "some workloads are not suited to hybrid memory (power above "
        "DRAM-only for both policies)",
        "canneal, fluidanimate, streamcluster", float(len(unsuitable)),
        "{:.0f} of canneal/streamcluster above 1.0 for both",
        len(unsuitable) == 2,
    ))

    proposed_writes = fig4b.totals(group="proposed")
    dwf_writes = fig4b.totals(group="clock-dwf")
    comparable = [name for name in proposed_writes
                  if name not in (GEO_MEAN_LABEL, "A-Mean")]
    best_writes_vs_dwf = min(
        proposed_writes[name] / max(dwf_writes[name], 1e-9)
        for name in comparable
    )
    writes_gmean = fig4b.mean_total(GEO_MEAN_LABEL, group="proposed")
    results.append(_result(
        "V.4",
        "proposed scheme cuts NVM writes vs CLOCK-DWF",
        "up to 93%", 1 - best_writes_vs_dwf,
        "best reduction {:.0%}",
        best_writes_vs_dwf < 0.25,
    ))
    results.append(_result(
        "V.5",
        "proposed scheme writes less than an NVM-only memory on average "
        "(longer lifetime)",
        "49% mean reduction (up to 4x lifetime)", 1 - writes_gmean,
        "mean reduction {:.0%}",
        writes_gmean < 0.8,
    ))

    amat_gmean = fig4c.mean_total(GEO_MEAN_LABEL)
    amat_totals = fig4c.totals()
    best_amat = min(
        value for name, value in amat_totals.items()
        if name not in (GEO_MEAN_LABEL, "A-Mean")
    )
    results.append(_result(
        "V.6",
        "proposed scheme improves AMAT vs CLOCK-DWF",
        "up to 70% (48% mean)", 1 - amat_gmean,
        "mean improvement {:.0%}",
        amat_gmean < 0.7 and best_amat < 0.35,
    ))
    results.append(_result(
        "V.7",
        "CLOCK-DWF keeps the better AMAT on raytrace (threshold bait)",
        "raytrace (and vips)", amat_totals["raytrace"],
        "raytrace ratio {:.2f}",
        amat_totals["raytrace"] > 1.0,
    ))

    return results


def claims_hold(results: list[ClaimResult]) -> bool:
    return all(result.holds for result in results)
