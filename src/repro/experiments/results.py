"""Result containers and the paper's aggregation conventions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.mmu.simulator import RunResult

#: Labels the paper uses for its aggregate bars (Section V: "average
#: numbers reported throughout the paper are geometric means").
GEO_MEAN_LABEL = "G-Mean"
ARITH_MEAN_LABEL = "A-Mean"


def geo_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero/negative entries are floored at a tiny
    positive value so a single empty bar cannot zero the aggregate."""
    logs = [math.log(max(value, 1e-12)) for value in values]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def arith_mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class StackedBar:
    """One figure bar: a label plus named stacked segments."""

    label: str
    segments: Mapping[str, float]
    group: str = ""

    @property
    def total(self) -> float:
        return sum(self.segments.values())


@dataclass
class FigureData:
    """A regenerated paper figure: titled stacked bars plus means.

    ``series_order`` fixes segment stacking order (bottom-up), matching
    the paper's legends.
    """

    figure_id: str
    title: str
    ylabel: str
    series_order: tuple[str, ...]
    bars: list[StackedBar] = field(default_factory=list)

    def add_bar(self, label: str, group: str = "",
                **segments: float) -> None:
        unknown = set(segments) - set(self.series_order)
        if unknown:
            raise ValueError(f"unknown segments {sorted(unknown)}")
        self.bars.append(StackedBar(label, dict(segments), group=group))

    def totals(self, group: str | None = None) -> dict[str, float]:
        """Per-label bar totals (optionally one group only)."""
        return {
            bar.label: bar.total
            for bar in self.bars
            if group is None or bar.group == group
        }

    def append_means(self) -> None:
        """Add the paper's G-Mean / A-Mean bars, per group.

        Mean bars preserve the segment structure by averaging each
        segment's *share* scaled to the mean total.
        """
        groups = sorted({bar.group for bar in self.bars})
        mean_bars: list[StackedBar] = []
        for group in groups:
            bars = [bar for bar in self.bars if bar.group == group]
            if not bars:
                continue
            totals = [bar.total for bar in bars]
            for label, mean_total in (
                (GEO_MEAN_LABEL, geo_mean(totals)),
                (ARITH_MEAN_LABEL, arith_mean(totals)),
            ):
                segment_sums = {
                    name: sum(bar.segments.get(name, 0.0) for bar in bars)
                    for name in self.series_order
                }
                grand = sum(segment_sums.values()) or 1.0
                mean_bars.append(StackedBar(
                    label,
                    {
                        name: mean_total * value / grand
                        for name, value in segment_sums.items()
                    },
                    group=group,
                ))
        self.bars.extend(mean_bars)

    def mean_total(self, label: str = GEO_MEAN_LABEL,
                   group: str = "") -> float:
        for bar in self.bars:
            if bar.label == label and bar.group == group:
                return bar.total
        raise KeyError(f"no {label!r} bar in group {group!r}; "
                       "call append_means() first")


@dataclass(frozen=True)
class WorkloadRuns:
    """All policy runs plus baselines for one workload."""

    workload: str
    runs: Mapping[str, RunResult]

    def __getitem__(self, policy: str) -> RunResult:
        return self.runs[policy]

    def __contains__(self, policy: str) -> bool:
        return policy in self.runs

    @property
    def policies(self) -> list[str]:
        return list(self.runs)
