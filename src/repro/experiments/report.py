"""Plain-text rendering of tables and stacked-bar figures.

The benchmark harness prints every regenerated table and figure through
these helpers, so a terminal run of the benchmarks reproduces the
paper's evaluation section as readable ASCII.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.results import FigureData

BAR_WIDTH = 40


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]),
            *(len(row[column]) for row in cells)) if cells
        else len(headers[column])
        for column in range(len(headers))
    ]
    def _line(values: Sequence[str]) -> str:
        return " | ".join(
            value.ljust(width) for value, width in zip(values, widths)
        ).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(_line(list(headers)))
    lines.append(separator)
    lines.extend(_line(row) for row in cells)
    return "\n".join(lines)


def render_figure(figure: FigureData, bar_width: int = BAR_WIDTH) -> str:
    """Horizontal stacked bars with one character block per segment.

    Bars are scaled to the largest total; each segment prints with its
    own fill character, followed by the exact numbers.
    """
    fills = "#=+*o%"
    lines = [f"{figure.figure_id}: {figure.title}",
             f"  ({figure.ylabel})"]
    legend = "  ".join(
        f"[{fills[index % len(fills)]}] {name}"
        for index, name in enumerate(figure.series_order)
    )
    lines.append(f"  {legend}")
    max_total = max((bar.total for bar in figure.bars), default=1.0) or 1.0
    label_width = max((len(_bar_label(bar.label, bar.group))
                       for bar in figure.bars), default=8)
    for bar in figure.bars:
        blocks = []
        for index, name in enumerate(figure.series_order):
            value = bar.segments.get(name, 0.0)
            count = int(round(bar_width * value / max_total))
            blocks.append(fills[index % len(fills)] * count)
        label = _bar_label(bar.label, bar.group).ljust(label_width)
        numbers = " ".join(
            f"{name}={bar.segments.get(name, 0.0):.3f}"
            for name in figure.series_order
            if bar.segments.get(name, 0.0) > 0.0005
        )
        lines.append(
            f"  {label} |{''.join(blocks)}| {bar.total:7.3f}  ({numbers})"
        )
    return "\n".join(lines)


def _bar_label(label: str, group: str) -> str:
    return f"{label}/{group}" if group else label


def figure_summary(figure: FigureData) -> str:
    """One-line totals per bar (compact regression log format)."""
    parts = [
        f"{_bar_label(bar.label, bar.group)}={bar.total:.3f}"
        for bar in figure.bars
    ]
    return f"{figure.figure_id}: " + " ".join(parts)
