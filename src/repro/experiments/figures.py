"""Builders for every evaluation figure in the paper.

Each function turns cached runs into a :class:`FigureData` whose bars
carry the same stacked components and the same normalisation as the
corresponding paper panel:

* **Fig. 1** — DRAM-only power breakdown (static / dynamic / page
  fault), each bar normalised to its own total.
* **Fig. 2a / 4a** — power normalised to the DRAM-only memory
  (static / dynamic / migration; fault-fill energy counts as dynamic,
  matching the paper's three-way legend).
* **Fig. 2b / 4c** — AMAT normalised to a baseline ("Read/Write
  Requests" vs "Migrations"; the disk-fault term is excluded on both
  sides — the paper's AMAT panels stack only these two components
  because hit ratios, and hence fault rates, are essentially equal
  across policies at the same capacity).
* **Fig. 2c / 4b** — physical NVM writes normalised to the NVM-only
  memory (page-fault fills vs migrations vs served write requests).

Every paper figure ends with the G-Mean and A-Mean bars.

Beyond the paper, two observability figures derive from the event
stream (:mod:`repro.obs`) instead of the end-of-run counters:

* **timeline** — per-interval promotions on one workload, split into
  beneficial and non-beneficial (the Fig. 2/3 criterion, resolved over
  time); the leading bar is the whole-run total.
* **timeline-cost** — the cumulative latency cost of the
  non-beneficial promotions over the same intervals.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.results import FigureData, WorkloadRuns
from repro.experiments.runner import ExperimentRunner
from repro.mmu.simulator import RunResult
from repro.obs.config import EventConfig
from repro.obs.summary import EventSummary


def _grid(runner: ExperimentRunner,
          policies: tuple[str, ...]) -> dict[str, WorkloadRuns]:
    return runner.grid(policies=policies)


# ----------------------------------------------------------------------
# Fig. 1
# ----------------------------------------------------------------------
def figure_1(runner: ExperimentRunner) -> FigureData:
    """DRAM-only power breakdown per workload (each bar sums to 1)."""
    figure = FigureData(
        figure_id="fig1",
        title="DRAM Power Breakdown",
        ylabel="Normalized Power Consumption",
        series_order=("Static", "Dynamic", "Page Fault"),
    )
    for name, runs in _grid(runner, ("dram-only",)).items():
        power = runs["dram-only"].power
        total = power.appr or 1.0
        figure.add_bar(
            name,
            **{
                "Static": power.static / total,
                "Dynamic": power.dynamic_hit / total,
                "Page Fault": power.fault_fill / total,
            },
        )
    return figure


# ----------------------------------------------------------------------
# Power figures (2a, 4a)
# ----------------------------------------------------------------------
def _power_bar(run: RunResult, baseline: RunResult) -> dict[str, float]:
    base = baseline.power.appr or 1.0
    power = run.power
    return {
        "Static": power.static / base,
        "Dynamic": (power.dynamic_hit + power.fault_fill) / base,
        "Migration": power.migration / base,
    }


def figure_2a(runner: ExperimentRunner) -> FigureData:
    """CLOCK-DWF power breakdown normalised to DRAM-only power."""
    figure = FigureData(
        figure_id="fig2a",
        title="CLOCK-DWF Power Breakdown Normalized to DRAM",
        ylabel="Normalized Power Consumption",
        series_order=("Static", "Dynamic", "Migration"),
    )
    for name, runs in _grid(runner, ("dram-only", "clock-dwf")).items():
        figure.add_bar(name, **_power_bar(runs["clock-dwf"],
                                          runs["dram-only"]))
    figure.append_means()
    return figure


def figure_4a(runner: ExperimentRunner) -> FigureData:
    """Power of CLOCK-DWF (left) and the proposed scheme (right),
    both normalised to DRAM-only power."""
    figure = FigureData(
        figure_id="fig4a",
        title="Power Breakdown of CLOCK-DWF and Proposed Scheme "
              "Normalized to DRAM",
        ylabel="Normalized Power Consumption",
        series_order=("Static", "Dynamic", "Migration"),
    )
    grid = _grid(runner, ("dram-only", "clock-dwf", "proposed"))
    for policy in ("clock-dwf", "proposed"):
        for name, runs in grid.items():
            figure.add_bar(name, group=policy,
                           **_power_bar(runs[policy], runs["dram-only"]))
    figure.append_means()
    return figure


# ----------------------------------------------------------------------
# AMAT figures (2b, 4c)
# ----------------------------------------------------------------------
def _amat_bar(run: RunResult, baseline_time: float) -> dict[str, float]:
    performance = run.performance
    base = baseline_time or 1.0
    return {
        "Read/Write Requests": performance.request_time / base,
        "Migrations": performance.migration_time / base,
    }


def figure_2b(runner: ExperimentRunner) -> FigureData:
    """CLOCK-DWF AMAT normalised to DRAM-only."""
    figure = FigureData(
        figure_id="fig2b",
        title="Normalized AMAT of CLOCK-DWF Compared to DRAM-Only Memory",
        ylabel="Normalized AMAT",
        series_order=("Read/Write Requests", "Migrations"),
    )
    for name, runs in _grid(runner, ("dram-only", "clock-dwf")).items():
        base = runs["dram-only"].performance.memory_time
        figure.add_bar(name, **_amat_bar(runs["clock-dwf"], base))
    figure.append_means()
    return figure


def figure_4c(runner: ExperimentRunner) -> FigureData:
    """Proposed scheme AMAT normalised to CLOCK-DWF."""
    figure = FigureData(
        figure_id="fig4c",
        title="Normalized AMAT of the Proposed Scheme Compared to "
              "CLOCK-DWF",
        ylabel="Normalized AMAT",
        series_order=("Read/Write Requests", "Migrations"),
    )
    for name, runs in _grid(runner, ("clock-dwf", "proposed")).items():
        base = runs["clock-dwf"].performance.memory_time
        figure.add_bar(name, **_amat_bar(runs["proposed"], base))
    figure.append_means()
    return figure


# ----------------------------------------------------------------------
# NVM-write figures (2c, 4b)
# ----------------------------------------------------------------------
def _writes_bar(run: RunResult, baseline: RunResult) -> dict[str, float] | None:
    """One Fig. 2c/4b bar, or ``None`` when the baseline is degenerate.

    A read-only workload (blackscholes) does essentially zero NVM
    writes even on the NVM-only baseline once warm, so its normalised
    bar is meaningless; such workloads are skipped with a note instead
    of plotted against a zero denominator.
    """
    base = baseline.nvm_writes.total
    if base == 0:
        return None
    writes = run.nvm_writes
    return {
        "Read/Write Requests": writes.request_writes / base,
        "Page Fault": writes.fault_fill_writes / base,
        "Migration": writes.migration_writes / base,
    }


def figure_2c(runner: ExperimentRunner) -> FigureData:
    """CLOCK-DWF NVM writes normalised to NVM-only."""
    figure = FigureData(
        figure_id="fig2c",
        title="Number of Writes in CLOCK-DWF Normalized to NVM-Only "
              "Memory",
        ylabel="Normalized Number of Writes",
        series_order=("Read/Write Requests", "Page Fault", "Migration"),
    )
    for name, runs in _grid(runner, ("nvm-only", "clock-dwf")).items():
        segments = _writes_bar(runs["clock-dwf"], runs["nvm-only"])
        if segments is not None:
            figure.add_bar(name, **segments)
    figure.append_means()
    return figure


def figure_4b(runner: ExperimentRunner) -> FigureData:
    """NVM writes of CLOCK-DWF (left) and the proposed scheme (right),
    both normalised to NVM-only."""
    figure = FigureData(
        figure_id="fig4b",
        title="Number of Writes in CLOCK-DWF and Proposed Scheme "
              "Normalized to NVM-Only Memory",
        ylabel="Normalized Number of Writes",
        series_order=("Read/Write Requests", "Page Fault", "Migration"),
    )
    grid = _grid(runner, ("nvm-only", "clock-dwf", "proposed"))
    for policy in ("clock-dwf", "proposed"):
        for name, runs in grid.items():
            segments = _writes_bar(runs[policy], runs["nvm-only"])
            if segments is not None:
                figure.add_bar(name, group=policy, **segments)
    figure.append_means()
    return figure


# ----------------------------------------------------------------------
# Event-stream timeline figures (beyond the paper)
# ----------------------------------------------------------------------
#: The workload / interval count the timeline figures observe.
TIMELINE_WORKLOAD = "canneal"
TIMELINE_BUCKETS = 12
TIMELINE_POLICIES = ("clock-dwf", "proposed")


def _timeline_summaries(
    runner: ExperimentRunner,
) -> dict[str, EventSummary]:
    """Event summaries for the timeline policies (one batch).

    The specs are the runner's own grid cells with an
    :class:`EventConfig` attached; the event-bearing runs have their
    own cache identity, so they coexist with the plain figure grid.
    """
    config = EventConfig(buckets=TIMELINE_BUCKETS)
    specs = [
        replace(runner.spec_for(TIMELINE_WORKLOAD, policy), events=config)
        for policy in TIMELINE_POLICIES
    ]
    results = runner.submit(specs)
    summaries: dict[str, EventSummary] = {}
    for policy, result in zip(TIMELINE_POLICIES, results):
        if result.events is None:
            raise RuntimeError(
                f"run {policy!r} returned no event summary")
        summaries[policy] = result.events
    return summaries


def figure_timeline(runner: ExperimentRunner) -> FigureData:
    """Beneficial vs non-beneficial promotions over time.

    One group per policy; the first bar (labelled with the workload)
    is the whole-run split, followed by one bar per interval.
    """
    figure = FigureData(
        figure_id="timeline",
        title=f"Promotions over Time on {TIMELINE_WORKLOAD} "
              "(Beneficial vs Non-Beneficial)",
        ylabel="Promotions per Interval",
        series_order=("Beneficial", "Non-beneficial"),
    )
    for policy, summary in _timeline_summaries(runner).items():
        ledger = summary.migrations
        if ledger is None:
            continue
        figure.add_bar(
            TIMELINE_WORKLOAD, group=policy,
            **{"Beneficial": float(ledger.beneficial),
               "Non-beneficial": float(ledger.non_beneficial)},
        )
        rows = {row.index: row for row in ledger.by_interval}
        for bucket in range(len(summary.series)):
            row = rows.get(bucket)
            figure.add_bar(
                f"t{bucket + 1:02d}", group=policy,
                **{"Beneficial": float(row.beneficial if row else 0),
                   "Non-beneficial":
                       float(row.non_beneficial if row else 0)},
            )
    return figure


def figure_timeline_cost(runner: ExperimentRunner) -> FigureData:
    """Cumulative cost of the non-beneficial promotions over time.

    Each interval bar is the latency wasted on promotions whose DRAM
    hits never covered their migration cost, accumulated up to that
    interval; the leading workload-labelled bar is the end-of-run
    total.
    """
    figure = FigureData(
        figure_id="timeline-cost",
        title=f"Cumulative Non-Beneficial Migration Cost on "
              f"{TIMELINE_WORKLOAD}",
        ylabel="Wasted Latency (us)",
        series_order=("Wasted",),
    )
    for policy, summary in _timeline_summaries(runner).items():
        ledger = summary.migrations
        if ledger is None:
            continue
        figure.add_bar(TIMELINE_WORKLOAD, group=policy,
                       Wasted=ledger.wasted_seconds * 1e6)
        rows = {row.index: row for row in ledger.by_interval}
        cumulative = 0.0
        for bucket in range(len(summary.series)):
            row = rows.get(bucket)
            cumulative += row.wasted_seconds if row else 0.0
            figure.add_bar(f"t{bucket + 1:02d}", group=policy,
                           Wasted=cumulative * 1e6)
    return figure


#: Figure registry for the CLI/bench harness.
FIGURE_BUILDERS = {
    "fig1": figure_1,
    "fig2a": figure_2a,
    "fig2b": figure_2b,
    "fig2c": figure_2c,
    "fig4a": figure_4a,
    "fig4b": figure_4b,
    "fig4c": figure_4c,
    "timeline": figure_timeline,
    "timeline-cost": figure_timeline_cost,
}


def build_figure(figure_id: str, runner: ExperimentRunner) -> FigureData:
    """Regenerate one paper figure by id (``fig1`` .. ``fig4c``)."""
    try:
        builder = FIGURE_BUILDERS[figure_id]
    except KeyError:
        known = ", ".join(sorted(FIGURE_BUILDERS))
        raise KeyError(f"unknown figure {figure_id!r}; known: {known}") \
            from None
    return builder(runner)
