"""Parameter sweeps: the ablation studies DESIGN.md calls out.

Each sweep runs the proposed scheme across one knob — promotion
thresholds (A-1), counter-window size (A-2), DRAM share (A-3) — and the
adaptive-threshold extension study (A-4), returning per-point metric
rows suitable for table rendering and shape assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.config import MigrationConfig
from repro.mmu.simulator import HybridMemorySimulator, RunResult
from repro.policies.registry import policy_factory, proposed_with
from repro.workloads.parsec import WorkloadInstance, parsec_workload


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and the metrics it produced."""

    parameter: str
    value: float
    amat_ns: float
    memory_time_ns: float
    appr_nj: float
    nvm_writes: int
    migrations_to_dram: int
    migrations_to_nvm: int

    @classmethod
    def from_run(cls, parameter: str, value: float,
                 run: RunResult) -> "SweepPoint":
        return cls(
            parameter=parameter,
            value=value,
            amat_ns=run.performance.amat * 1e9,
            memory_time_ns=run.performance.memory_time * 1e9,
            appr_nj=run.power.appr * 1e9,
            nvm_writes=run.nvm_writes.total,
            migrations_to_dram=run.accounting.migrations_to_dram,
            migrations_to_nvm=run.accounting.migrations_to_nvm,
        )


def _simulate(instance: WorkloadInstance, factory,
              spec=None) -> RunResult:
    simulator = HybridMemorySimulator(
        spec or instance.spec,
        factory,
        inter_request_gap=instance.inter_request_gap,
    )
    return simulator.run(instance.trace,
                         warmup_fraction=instance.warmup_fraction)


def threshold_sweep(
    workload: str = "raytrace",
    thresholds: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    base_config: MigrationConfig | None = None,
    seed: int = 2016,
) -> list[SweepPoint]:
    """Sweep both promotion thresholds together (A-1).

    The write threshold tracks at half the read threshold, preserving
    the scheme's write-priority rule.
    """
    base = base_config or MigrationConfig()
    instance = parsec_workload(workload, seed=seed)
    points = []
    for threshold in thresholds:
        config = MigrationConfig(
            read_window_fraction=base.read_window_fraction,
            write_window_fraction=base.write_window_fraction,
            read_threshold=threshold,
            write_threshold=max(1, threshold // 2),
        )
        run = _simulate(instance, proposed_with(config))
        points.append(SweepPoint.from_run("read_threshold", threshold, run))
    return points


def window_sweep(
    workload: str = "dedup",
    fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    seed: int = 2016,
) -> list[SweepPoint]:
    """Sweep the counter-window size (A-2); the write window tracks at
    1.5x the read window, capped at the whole queue."""
    base = MigrationConfig()
    instance = parsec_workload(workload, seed=seed)
    points = []
    for fraction in fractions:
        config = MigrationConfig(
            read_window_fraction=fraction,
            write_window_fraction=min(1.0, fraction * 1.5),
            read_threshold=base.read_threshold,
            write_threshold=base.write_threshold,
        )
        run = _simulate(instance, proposed_with(config))
        points.append(SweepPoint.from_run("read_window_fraction",
                                          fraction, run))
    return points


def dram_ratio_sweep(
    workload: str = "dedup",
    ratios: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.5),
    seed: int = 2016,
) -> list[SweepPoint]:
    """Sweep DRAM's share of the hybrid memory (A-3)."""
    instance = parsec_workload(workload, seed=seed)
    points = []
    for ratio in ratios:
        spec = instance.spec.with_dram_fraction(ratio)
        run = _simulate(instance, policy_factory("proposed"), spec=spec)
        points.append(SweepPoint.from_run("dram_fraction", ratio, run))
    return points


@dataclass(frozen=True)
class AdaptiveComparison:
    """Fixed-threshold vs adaptive-threshold outcome on one workload."""

    workload: str
    fixed: SweepPoint
    adaptive: SweepPoint
    final_read_threshold: int
    final_write_threshold: int
    promotion_efficiency: float

    @property
    def amat_improvement(self) -> float:
        """Relative memory-time gain of adaptive over fixed (+ = better)."""
        if self.fixed.memory_time_ns == 0:
            return 0.0
        return 1.0 - self.adaptive.memory_time_ns / self.fixed.memory_time_ns


def adaptive_comparison(workload: str = "raytrace",
                        seed: int = 2016) -> AdaptiveComparison:
    """Run the A-4 extension study: does adaptation help the workloads
    whose optimal thresholds differ (Section V-B's raytrace remark)?"""
    instance = parsec_workload(workload, seed=seed)
    fixed_run = _simulate(instance, policy_factory("proposed"))

    adaptive_policy_box: list[AdaptiveMigrationPolicy] = []

    def adaptive_factory(mm):
        policy = AdaptiveMigrationPolicy(mm)
        adaptive_policy_box.append(policy)
        return policy

    adaptive_run = _simulate(instance, adaptive_factory)
    policy = adaptive_policy_box[0]
    return AdaptiveComparison(
        workload=workload,
        fixed=SweepPoint.from_run("thresholds", 0, fixed_run),
        adaptive=SweepPoint.from_run("thresholds", 1, adaptive_run),
        final_read_threshold=policy.read_threshold,
        final_write_threshold=policy.write_threshold,
        promotion_efficiency=policy.promotion_efficiency,
    )
