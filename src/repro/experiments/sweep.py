"""Parameter sweeps: the ablation studies DESIGN.md calls out.

Each sweep runs the proposed scheme across one knob — promotion
thresholds (A-1), counter-window size (A-2), DRAM share (A-3) — and the
adaptive-threshold extension study (A-4), returning per-point metric
rows suitable for table rendering and shape assertions.

Every sweep point is a declarative
:class:`~repro.experiments.runspec.RunSpec` (policy overrides for the
threshold/window knobs, a ``dram-fraction`` spec transform for the
capacity split) submitted through an executor, so sweeps parallelise
and hit the persistent result cache exactly like the figure grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.config import MigrationConfig
from repro.experiments.executor import ParallelExecutor
from repro.experiments.runspec import RunSpec
from repro.mmu.simulator import RunResult
from repro.obs.config import EventConfig
from repro.sampling import SamplingConfig


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and the metrics it produced."""

    parameter: str
    value: float
    amat_ns: float
    memory_time_ns: float
    appr_nj: float
    nvm_writes: int
    migrations_to_dram: int
    migrations_to_nvm: int

    @classmethod
    def from_run(cls, parameter: str, value: float,
                 run: RunResult) -> "SweepPoint":
        return cls(
            parameter=parameter,
            value=value,
            amat_ns=run.performance.amat * 1e9,
            memory_time_ns=run.performance.memory_time * 1e9,
            appr_nj=run.power.appr * 1e9,
            nvm_writes=run.nvm_writes.total,
            migrations_to_dram=run.accounting.migrations_to_dram,
            migrations_to_nvm=run.accounting.migrations_to_nvm,
        )


def _submit(specs: Sequence[RunSpec],
            executor: ParallelExecutor | None) -> list[RunResult]:
    return (executor or ParallelExecutor(jobs=1)).submit(list(specs))


def threshold_sweep(
    workload: str = "raytrace",
    thresholds: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    base_config: MigrationConfig | None = None,
    seed: int = 2016,
    executor: ParallelExecutor | None = None,
    events: EventConfig | None = None,
    engine: str = "simulate",
    sampling: SamplingConfig | None = None,
) -> list[SweepPoint]:
    """Sweep both promotion thresholds together (A-1).

    The write threshold tracks at half the read threshold, preserving
    the scheme's write-priority rule.  ``events`` attaches the
    observability bus to every point (callers read the per-spec
    summaries back off the executor).  ``engine="analytic"`` evaluates
    the closed-form estimator instead of simulating each point;
    ``engine="sampled"`` replays a spatial page sample per point
    (``sampling`` tunes it).
    """
    base = base_config or MigrationConfig()
    specs = [
        RunSpec(
            workload,
            policy="proposed",
            seed=seed,
            events=events,
            engine=engine,
            sampling=sampling,
            policy_overrides={
                "read_window_fraction": base.read_window_fraction,
                "write_window_fraction": base.write_window_fraction,
                "read_threshold": threshold,
                "write_threshold": max(1, threshold // 2),
            },
        )
        for threshold in thresholds
    ]
    return [
        SweepPoint.from_run("read_threshold", threshold, run)
        for threshold, run in zip(thresholds, _submit(specs, executor))
    ]


def window_sweep(
    workload: str = "dedup",
    fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    seed: int = 2016,
    executor: ParallelExecutor | None = None,
    events: EventConfig | None = None,
    engine: str = "simulate",
    sampling: SamplingConfig | None = None,
) -> list[SweepPoint]:
    """Sweep the counter-window size (A-2); the write window tracks at
    1.5x the read window, capped at the whole queue."""
    base = MigrationConfig()
    specs = [
        RunSpec(
            workload,
            policy="proposed",
            seed=seed,
            events=events,
            engine=engine,
            sampling=sampling,
            policy_overrides={
                "read_window_fraction": fraction,
                "write_window_fraction": min(1.0, fraction * 1.5),
                "read_threshold": base.read_threshold,
                "write_threshold": base.write_threshold,
            },
        )
        for fraction in fractions
    ]
    return [
        SweepPoint.from_run("read_window_fraction", fraction, run)
        for fraction, run in zip(fractions, _submit(specs, executor))
    ]


def dram_ratio_sweep(
    workload: str = "dedup",
    ratios: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.5),
    seed: int = 2016,
    executor: ParallelExecutor | None = None,
    events: EventConfig | None = None,
    engine: str = "simulate",
    sampling: SamplingConfig | None = None,
) -> list[SweepPoint]:
    """Sweep DRAM's share of the hybrid memory (A-3)."""
    specs = [
        RunSpec(
            workload,
            policy="proposed",
            seed=seed,
            events=events,
            engine=engine,
            sampling=sampling,
            spec_transform=("dram-fraction", ratio),
        )
        for ratio in ratios
    ]
    return [
        SweepPoint.from_run("dram_fraction", ratio, run)
        for ratio, run in zip(ratios, _submit(specs, executor))
    ]


@dataclass(frozen=True)
class AdaptiveComparison:
    """Fixed-threshold vs adaptive-threshold outcome on one workload."""

    workload: str
    fixed: SweepPoint
    adaptive: SweepPoint
    final_read_threshold: int
    final_write_threshold: int
    promotion_efficiency: float

    @property
    def amat_improvement(self) -> float:
        """Relative memory-time gain of adaptive over fixed (+ = better)."""
        if self.fixed.memory_time_ns == 0:
            return 0.0
        return 1.0 - self.adaptive.memory_time_ns / self.fixed.memory_time_ns


def adaptive_comparison(workload: str = "raytrace",
                        seed: int = 2016) -> AdaptiveComparison:
    """Run the A-4 extension study: does adaptation help the workloads
    whose optimal thresholds differ (Section V-B's raytrace remark)?"""
    fixed_spec = RunSpec(workload, policy="proposed", seed=seed)
    fixed_run = fixed_spec.execute()

    # The study reads the *policy object* back (learned thresholds,
    # promotion telemetry), so the adaptive run substitutes a capturing
    # factory — RunSpec.execute supports that directly, bypassing the
    # result cache because the factory is outside the spec's identity.
    adaptive_policy_box: list[AdaptiveMigrationPolicy] = []

    def adaptive_factory(mm):
        policy = AdaptiveMigrationPolicy(mm)
        adaptive_policy_box.append(policy)
        return policy

    adaptive_spec = RunSpec(workload, policy="adaptive", seed=seed)
    adaptive_run = adaptive_spec.execute(factory=adaptive_factory)
    policy = adaptive_policy_box[0]
    return AdaptiveComparison(
        workload=workload,
        fixed=SweepPoint.from_run("thresholds", 0, fixed_run),
        adaptive=SweepPoint.from_run("thresholds", 1, adaptive_run),
        final_read_threshold=policy.read_threshold,
        final_write_threshold=policy.write_threshold,
        promotion_efficiency=policy.promotion_efficiency,
    )
