"""Parallel experiment execution over :class:`RunSpec` batches.

``submit([specs]) -> [RunResult]`` is the one interface every consumer
of simulation results goes through (the experiment runner, the sweeps,
the CLI, the examples).  Beneath it sit two layers:

* :class:`ParallelExecutor` — fans specs out over a ``multiprocessing``
  worker pool (``jobs`` workers, default ``os.cpu_count()``).  Each
  worker process renders a workload at most once per scale/seed
  (module-level cache), results are merged deterministically in input
  order regardless of completion order, progress is reported through a
  callback as results arrive, and worker failures are retried in the
  parent and surfaced as :class:`ExecutorError` *after* the remaining
  specs complete — a crash never deadlocks or starves the batch.
* :class:`ResultCache` — a content-addressed JSON cache under
  ``.repro-cache/``, keyed by ``RunSpec.digest()`` plus a code-version
  fingerprint (a hash over the simulation-relevant source trees), so
  results persist across processes and invalidate themselves when the
  simulator, policies, models or workload generators change.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import repro
from repro.experiments.runspec import RunSpec
from repro.mmu.simulator import RunResult
from repro.obs.summary import EventSummary
from repro.workloads.parsec import WorkloadInstance

#: Default location of the persistent result cache.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Packages whose source determines simulation results; a change in any
#: of them invalidates every cached result.
_VERSIONED_SUBPACKAGES = (
    "trace", "workloads", "memory", "mmu", "core", "policies", "obs",
    "model", "sampling",
)
_VERSIONED_MODULES = ("experiments/runspec.py",)

#: Memoised (stat signature, content hash) of the last fingerprint
#: computation.  The signature — (relative path, mtime_ns, size) per
#: versioned file — is cheap to recompute (a stat per file, no reads),
#: so the expensive content hash reruns only when some file actually
#: changed.  Unlike a plain once-per-process memo this stays correct
#: in long-lived processes that edit source between submits (notebook
#: kernels, watch loops, the executor's own tests).
_code_version_memo: tuple[tuple, str] | None = None  # repro: worker-local

StatSignature = tuple[tuple[str, int, int], ...]


def _versioned_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for sub in _VERSIONED_SUBPACKAGES:
        files.extend((root / sub).rglob("*.py"))
    files.extend(
        path for rel in _VERSIONED_MODULES
        if (path := root / rel).is_file()
    )
    return sorted(files)


def _stat_signature(root: Path, files: Sequence[Path]) -> StatSignature:
    signature = []
    for path in files:
        stat = path.stat()
        signature.append(
            (str(path.relative_to(root)), stat.st_mtime_ns, stat.st_size)
        )
    return tuple(signature)


def code_version(root: str | Path | None = None) -> str:
    """Fingerprint of the simulation-relevant source.

    Memoised against a stat signature of the versioned tree: calls
    after the first cost one ``stat`` per file and re-hash content only
    when a file's path set, mtime or size changed.  ``root`` overrides
    the package directory (tests point it at a scratch tree); only the
    default root participates in the memo.
    """
    global _code_version_memo
    explicit_root = root is not None
    base = Path(root) if explicit_root else Path(repro.__file__).parent
    files = _versioned_files(base)
    signature = _stat_signature(base, files)
    if not explicit_root and _code_version_memo is not None:
        cached_signature, cached_version = _code_version_memo
        if cached_signature == signature:
            return cached_version
    digest = hashlib.sha256()
    for path in files:
        digest.update(str(path.relative_to(base)).encode())
        digest.update(path.read_bytes())
    version = digest.hexdigest()[:16]
    if not explicit_root:
        _code_version_memo = (signature, version)
    return version


# ----------------------------------------------------------------------
# Persistent result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed on-disk cache of :class:`RunResult` objects.

    One JSON file per (spec digest, code version); the stored payload
    carries the spec itself so cache files are self-describing and
    auditable.  Corrupt or stale files read as misses.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR,
                 version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version()

    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.digest()}-{self.version}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("version") != self.version:
                return None
            return RunResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, spec: RunSpec, result: RunResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": self.version,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        path = self.path_for(spec)
        # Unique temp file + atomic rename: concurrent writers of the
        # same spec (several executors, a resident server's threads)
        # never interleave bytes — each rename is all-or-nothing and
        # the last writer wins with a complete file.  A shared
        # ``path + ".tmp"`` name would race: two writers would append
        # into one file and rename a corrupt mixture.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=path.stem + "-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process rendered-workload cache: with ``fork`` each worker keeps
#: its own copy, so a workload is rendered at most once per worker even
#: when it appears in many specs.
_INSTANCES: dict[tuple, WorkloadInstance] = {}  # repro: worker-local


def _rendered(spec: RunSpec) -> WorkloadInstance:
    key = (
        spec.workload, spec.request_scale, spec.footprint_scale, spec.seed,
        # External traces key by content digest: two sources sharing a
        # name must not collide in the per-worker instance cache.
        spec.source.digest if spec.source is not None else None,
    )
    if key not in _INSTANCES:
        _INSTANCES[key] = spec.render()
    return _INSTANCES[key]


def _instance_for(spec: RunSpec) -> WorkloadInstance | None:
    """The pre-rendered instance a spec's execution should reuse.

    ``None`` for simulated source specs: those stream the backing
    trace file chunk by chunk inside ``execute`` — materialising (and
    worker-caching) the whole trace would defeat the constant-memory
    drive path.  The analytic and sampled engines consume a rendered
    instance either way.
    """
    if spec.source is not None and spec.engine == "simulate":
        return None
    return _rendered(spec)


def _worker_run(item: tuple[int, RunSpec]) -> tuple[int, dict | None, str | None]:
    """Pool target: never raises — failures travel back as tracebacks."""
    index, spec = item
    try:
        result = spec.execute(instance=_instance_for(spec))
        return index, result.to_dict(), None
    except Exception:
        return index, None, traceback.format_exc()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
@dataclass
class ExecutorStats:
    """Counters over an executor's lifetime (cache audits, benchmarks)."""

    submitted: int = 0
    simulated: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "failures": self.failures,
        }


@dataclass(frozen=True)
class WorkerFailure:
    """One spec that failed after retries, with its worker traceback."""

    spec: RunSpec
    traceback: str


class ExecutorError(RuntimeError):
    """Raised after a batch completes with at least one failed spec.

    The error carries the failures *and* every completed result, so a
    single bad spec does not discard the rest of the batch.
    """

    def __init__(self, failures: Sequence[WorkerFailure],
                 results: dict[RunSpec, RunResult]) -> None:
        self.failures = list(failures)
        self.results = results
        lines = [f"{len(self.failures)} of "
                 f"{len(self.failures) + len(results)} run spec(s) failed:"]
        for failure in self.failures:
            last = failure.traceback.strip().splitlines()[-1]
            lines.append(f"  {failure.spec.label()}: {last}")
        super().__init__("\n".join(lines))


#: Progress callback signature: (completed, total, spec just finished).
ProgressCallback = Callable[[int, int, RunSpec], None]


class ParallelExecutor:
    """Executes :class:`RunSpec` batches, in parallel, with caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``; ``1``
        executes serially in-process (no pool overhead).
    cache:
        A :class:`ResultCache` (or ``None`` to disable persistence).
    progress:
        Callback invoked in the parent as each spec completes.
    retries:
        How many times a failed spec is re-executed serially in the
        parent before it is reported as a failure.
    start_method:
        ``multiprocessing`` start method; ``None`` keeps the platform
        default (``fork`` on Linux, which inherits registered custom
        policies and environment toggles).
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        progress: ProgressCallback | None = None,
        retries: int = 1,
        start_method: str | None = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache = cache
        self.progress = progress
        self.retries = retries
        self.start_method = start_method
        self.stats = ExecutorStats()
        #: Event summaries of every completed event-bearing spec (the
        #: summaries ride on RunResult, so cache hits and worker-pool
        #: results land here alike).
        self.event_summaries: dict[RunSpec, "EventSummary"] = {}

    # ------------------------------------------------------------------
    def submit(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Execute a batch and return results aligned with ``specs``.

        Duplicate specs are simulated once.  The merge is deterministic:
        output order is input order and each result is keyed by its
        spec, so worker completion order never shows through.  If any
        spec still fails after retries, :class:`ExecutorError` is
        raised *after* all remaining specs have completed (the partial
        results ride on the exception).
        """
        specs = list(specs)
        self.stats.submitted += len(specs)
        unique = list(dict.fromkeys(specs))
        results: dict[RunSpec, RunResult] = {}
        total = len(unique)
        done = 0

        def _completed(spec: RunSpec, result: RunResult) -> None:
            nonlocal done
            results[spec] = result
            if result.events is not None:
                self.event_summaries[spec] = result.events
            done += 1
            if self.progress is not None:
                self.progress(done, total, spec)

        pending: list[RunSpec] = []
        for spec in unique:
            cached = self.cache.get(spec) if self.cache else None
            if cached is not None:
                self.stats.cache_hits += 1
                _completed(spec, cached)
            else:
                if self.cache:
                    self.stats.cache_misses += 1
                pending.append(spec)

        # Deterministic execution order (stable scheduling + progress).
        pending.sort(key=RunSpec.key)
        failures: list[WorkerFailure] = []

        def _fresh(spec: RunSpec, result: RunResult) -> None:
            self.stats.simulated += 1
            if self.cache:
                self.cache.put(spec, result)
            _completed(spec, result)

        if self.jobs == 1 or len(pending) <= 1:
            for spec in pending:
                result, failure = self._run_with_retries(spec)
                if failure is not None:
                    failures.append(failure)
                else:
                    assert result is not None
                    _fresh(spec, result)
        else:
            failed: list[tuple[RunSpec, str]] = []
            context = (multiprocessing.get_context(self.start_method)
                       if self.start_method else multiprocessing)
            workers = min(self.jobs, len(pending))
            with context.Pool(processes=workers) as pool:
                items = list(enumerate(pending))
                for index, payload, error in pool.imap_unordered(
                        _worker_run, items):
                    spec = pending[index]
                    if error is not None:
                        failed.append((spec, error))
                    else:
                        _fresh(spec, RunResult.from_dict(payload))
            # Retry crashed specs serially in the parent: a transient
            # worker death must not cost the batch, and a deterministic
            # crash reproduces here with a clean traceback.
            for spec, error in failed:
                result, failure = self._run_with_retries(
                    spec, first_error=error)
                if failure is not None:
                    failures.append(failure)
                else:
                    assert result is not None
                    _fresh(spec, result)

        if failures:
            self.stats.failures += len(failures)
            raise ExecutorError(failures, results)
        return [results[spec] for spec in specs]

    # ------------------------------------------------------------------
    def collected_events(self) -> list[tuple[RunSpec, "EventSummary"]]:
        """Event summaries collected so far, in deterministic order.

        Sorted by :meth:`RunSpec.key`, so serial and ``jobs=N`` runs
        (and cache-hit replays) report identical sequences.
        """
        return sorted(
            self.event_summaries.items(), key=lambda item: item[0].key()
        )

    # ------------------------------------------------------------------
    def _run_with_retries(
        self, spec: RunSpec, first_error: str | None = None,
    ) -> tuple[RunResult | None, WorkerFailure | None]:
        """Execute one spec in-process, retrying up to ``self.retries``."""
        error = first_error
        attempts = self.retries + 1 if first_error is None else self.retries
        for _ in range(attempts):
            if error is not None:
                self.stats.retries += 1
            try:
                return spec.execute(instance=_instance_for(spec)), None
            except Exception:
                error = traceback.format_exc()
        return None, WorkerFailure(spec=spec, traceback=error or "")


def execute_specs(
    specs: Sequence[RunSpec],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[RunResult]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    return ParallelExecutor(jobs=jobs, cache=cache).submit(specs)
