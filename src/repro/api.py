"""The stable public API facade.

Everything an external caller — the examples, a notebook, a downstream
study — needs lives behind this one module::

    from repro.api import RunSpec, ParallelExecutor, EventConfig

The deep module paths (``repro.experiments.runspec``,
``repro.obs.sinks``, ...) remain importable but are internal layout:
they may move between releases, while the names in ``__all__`` here
are the compatibility surface.  The facade re-exports only — it
defines nothing — so it stays a zero-cost seam.

Groups
------
* **Workloads & traces** — PARSEC profiles, trace synthesis, the CPU
  front-end and trace transforms/statistics; the chunk-first
  :class:`TraceSource` protocol (file readers, generator sources, the
  chunk-invariant :func:`scan_source` digest and the
  content-addressed :class:`TraceStore`).
* **Machine specs** — memory-technology specs and the hybrid machine.
* **Simulation** — the manager/policy substrate and the one-shot
  :func:`simulate` entry point for custom policies.
* **Policies** — the registry and the policy base class.
* **Experiments** — declarative :class:`RunSpec`, the parallel
  executor with its persistent cache, the figure/table/claims
  pipeline and the parameter sweeps.
* **Analytic engine** — the closed-form estimator behind
  ``RunSpec(engine="analytic")``: workload profiling, the Che/Markov
  building blocks and the per-policy estimators.
* **Sampled engine** — the SHARDS-style spatial page sampler behind
  ``RunSpec(engine="sampled")``: the sampling configuration, the
  summary/interval types that ride on :class:`RunResult`, and the
  trace-level membership primitives.
* **Observability** — typed event streams: config, bus, sinks and the
  serialisable summaries that ride on :class:`RunResult`.
* **Serving** — the resident ``repro serve`` service: the
  transport-free :class:`ReproService`, the HTTP server and the
  blocking client.
"""

from __future__ import annotations

# --- Workloads & traces ----------------------------------------------
from repro.cpu import cotson_hierarchy, filter_trace, synthesize_cpu_trace
from repro.cpu.filter import filter_chunks
from repro.trace import Trace, characterize
from repro.trace.source import (
    DEFAULT_CHUNK_REQUESTS,
    IterableTraceSource,
    SourceSpec,
    TraceSource,
    TraceStore,
    as_source,
    materialize,
    open_trace_source,
    scan_source,
)
from repro.trace.transform import densify
from repro.workloads import parsec_workload
from repro.workloads.parsec import PROFILES, WORKLOAD_NAMES, WorkloadInstance

# --- Machine specs ---------------------------------------------------
from repro.memory import (
    HybridMemorySpec,
    dram_spec,
    hdd_spec,
    pcm_spec,
    sttram_spec,
)
from repro.memory.wear_leveling import replay_writes

# --- Simulation substrate --------------------------------------------
from repro.core.config import MigrationConfig
from repro.core.lru import LRUQueue
from repro.mmu import MemoryManager, PageLocation, RunResult, simulate

# --- Policies --------------------------------------------------------
from repro.policies import (
    HybridMemoryPolicy,
    available_policies,
    make_policy,
    policy_factory,
    register_policy,
)

# --- Experiments -----------------------------------------------------
from repro.experiments.claims import claims_hold, verify_claims
from repro.experiments.executor import (
    DEFAULT_CACHE_DIR,
    ExecutorError,
    ExecutorStats,
    ParallelExecutor,
    ResultCache,
    execute_specs,
)
from repro.experiments.figures import FIGURE_BUILDERS, build_figure
from repro.experiments.report import figure_summary, render_figure, render_table
from repro.experiments.runner import CORE_POLICIES, ExperimentRunner
from repro.experiments.runspec import ENGINES, RunSpec
from repro.experiments.sweep import (
    AdaptiveComparison,
    SweepPoint,
    adaptive_comparison,
    dram_ratio_sweep,
    threshold_sweep,
    window_sweep,
)
from repro.experiments.tables import table_ii, table_iii, table_iv

# --- Serving ---------------------------------------------------------
from repro.serve import ReproServer, ReproService, ServeClient, serve

# --- Analytic engine -------------------------------------------------
from repro.model import (
    ANALYTIC_POLICIES,
    UnsupportedPolicyError,
    WorkloadProfile,
    characteristic_time,
    estimate_run,
    estimate_spec,
    profile_trace,
    profile_workload,
    promotion_probability,
    supports_policy,
    survival_probability,
)

# --- Sampled engine --------------------------------------------------
from repro.sampling import MetricInterval, SamplingConfig, SamplingSummary
from repro.trace.sampling import (
    SAMPLING_SCHEMES,
    assign_groups,
    sample_mask,
    subset_trace,
)

# --- Observability ---------------------------------------------------
from repro.obs import (
    BeneficialMigrationClassifier,
    BufferSink,
    EpochEvent,
    EventBus,
    EventConfig,
    EventSummary,
    EvictionEvent,
    IntervalAggregator,
    IntervalLedger,
    IntervalMetrics,
    JsonlTraceSink,
    MigrationEvent,
    MigrationLedger,
    PageFaultEvent,
    Sink,
    decode_event,
    encode_event,
)

__all__ = [
    # workloads & traces
    "DEFAULT_CHUNK_REQUESTS",
    "IterableTraceSource",
    "PROFILES",
    "SourceSpec",
    "Trace",
    "TraceSource",
    "TraceStore",
    "WORKLOAD_NAMES",
    "WorkloadInstance",
    "as_source",
    "characterize",
    "cotson_hierarchy",
    "densify",
    "filter_chunks",
    "filter_trace",
    "materialize",
    "open_trace_source",
    "parsec_workload",
    "scan_source",
    "synthesize_cpu_trace",
    # machine specs
    "HybridMemorySpec",
    "dram_spec",
    "hdd_spec",
    "pcm_spec",
    "replay_writes",
    "sttram_spec",
    # simulation substrate
    "LRUQueue",
    "MemoryManager",
    "MigrationConfig",
    "PageLocation",
    "RunResult",
    "simulate",
    # policies
    "HybridMemoryPolicy",
    "available_policies",
    "make_policy",
    "policy_factory",
    "register_policy",
    # experiments
    "AdaptiveComparison",
    "CORE_POLICIES",
    "DEFAULT_CACHE_DIR",
    "ENGINES",
    "ExecutorError",
    "ExecutorStats",
    "ExperimentRunner",
    "FIGURE_BUILDERS",
    "ParallelExecutor",
    "ResultCache",
    "RunSpec",
    "SweepPoint",
    "adaptive_comparison",
    "build_figure",
    "claims_hold",
    "dram_ratio_sweep",
    "execute_specs",
    "figure_summary",
    "render_figure",
    "render_table",
    "table_ii",
    "table_iii",
    "table_iv",
    "threshold_sweep",
    "verify_claims",
    "window_sweep",
    # serving
    "ReproServer",
    "ReproService",
    "ServeClient",
    "serve",
    # analytic engine
    "ANALYTIC_POLICIES",
    "UnsupportedPolicyError",
    "WorkloadProfile",
    "characteristic_time",
    "estimate_run",
    "estimate_spec",
    "profile_trace",
    "profile_workload",
    "promotion_probability",
    "supports_policy",
    "survival_probability",
    # sampled engine
    "MetricInterval",
    "SAMPLING_SCHEMES",
    "SamplingConfig",
    "SamplingSummary",
    "assign_groups",
    "sample_mask",
    "subset_trace",
    # observability
    "BeneficialMigrationClassifier",
    "BufferSink",
    "EpochEvent",
    "EventBus",
    "EventConfig",
    "EventSummary",
    "EvictionEvent",
    "IntervalAggregator",
    "IntervalLedger",
    "IntervalMetrics",
    "JsonlTraceSink",
    "MigrationEvent",
    "MigrationLedger",
    "PageFaultEvent",
    "Sink",
    "decode_event",
    "encode_event",
]
