"""Sampled simulation: SHARDS-style spatial page sampling (DESIGN §15).

Public surface:

* :class:`SamplingConfig` — frozen per-spec configuration
  (``RunSpec(engine="sampled", sampling=SamplingConfig(...))``).
* :class:`SamplingSummary` / :class:`MetricInterval` — what a sampled
  run reports about its own sample and uncertainty (rides on
  :class:`~repro.mmu.simulator.RunResult`).

The engine itself (:func:`repro.sampling.engine.sample_spec`) is
imported lazily by ``RunSpec.execute`` — it depends on the simulator,
which in turn loads this package for the summary type, so eagerly
importing it here would cycle.
"""

from repro.sampling.config import SamplingConfig
from repro.sampling.summary import MetricInterval, SamplingSummary

__all__ = ["MetricInterval", "SamplingConfig", "SamplingSummary"]
