"""The sampled execution engine: ``RunSpec(engine="sampled")``.

SHARDS-style spatial sampling for the hybrid-memory simulator: pick a
deterministic 1-in-K subset of *pages* (:mod:`repro.trace.sampling` —
frequency-stratified systematic selection by default, pure hash
membership as the online-capable variant), replay only their requests
against a proportionally scaled frame budget
(:meth:`HybridMemorySpec.sampled`), then scale the measured counters
back up and score them against the *full* machine through the
identical Eq. 1-3 model layer the exact simulator and the analytic
engine use.

Why this is faithful: spatial membership keeps every access of a
sampled page, so per-page reuse behaviour — the counter dynamics the
migration policies key on — is preserved exactly; only the page
population shrinks, and the frame budget shrinks with it, so queue
*pressure* (frames per hot page) matches the full configuration.  Every
policy whose decisions derive from per-page state (all registered ones:
their ``sampling_safe`` audit flag rides on
:class:`~repro.policies.base.HybridMemoryPolicy`) therefore sees a
statistically equivalent workload.

Scale-up (:func:`scale_accounting`) keys each counter family to how it
is best known: fault/migration/eviction flows scale by the measured
page ratio, per-direction request totals are taken *exactly* from the
full trace (they are a vectorized count, not something to estimate),
and hits are the exact residual split by the sampled DRAM/NVM
proportions.  At rate 1 every input matches and the engine is
bit-identical to ``engine="simulate"`` (pinned by
``tests/test_sampling.py``).

Uncertainty comes from stratified page-group replicates: a secondary
hash splits the sampled pages into ``groups`` disjoint sub-samples,
each simulated at rate ``K * groups``; the spread of their scaled
metrics gives a standard error and a normal confidence interval per
metric.  The replicates together replay roughly as many requests as
the main sample, so intervals cost about one extra 1/K pass.

The warm-up boundary is computed on the *full* trace and mapped into
the sample (``warmup_requests``), so sampled runs warm up over exactly
the requests the full run would.
"""

from __future__ import annotations

import statistics
from typing import TYPE_CHECKING

import numpy as np

from repro.memory.accounting import AccessAccounting, WearAccounting
from repro.memory.endurance import compute_nvm_writes, endurance_report
from repro.memory.metrics import compute_performance
from repro.memory.power import compute_power
from repro.memory.specs import HybridMemorySpec
from repro.mmu.simulator import PolicyFactory, RunResult, simulate
from repro.sampling.config import SamplingConfig
from repro.sampling.summary import MetricInterval, SamplingSummary
from repro.trace.sampling import (
    assign_groups,
    page_groups,
    page_membership,
    sample_mask,
    subset_trace,
)
from repro.trace.trace import Trace
from repro.workloads.parsec import WorkloadInstance

if TYPE_CHECKING:
    from repro.experiments.runspec import RunSpec

__all__ = ["SamplingError", "sample_spec", "scale_accounting"]

#: Metrics the confidence intervals cover (flat-summary key -> label).
_INTERVAL_METRICS = ("amat", "appr", "nvm_writes")


class SamplingError(ValueError):
    """The spec cannot be evaluated under its sampling configuration."""


# ---------------------------------------------------------------------------
# Scale-up
# ---------------------------------------------------------------------------
def scale_accounting(
    accounting: AccessAccounting,
    wear: WearAccounting,
    page_multiplier: float,
    measured_reads: int,
    measured_writes: int,
    dram_share: float = 0.5,
) -> tuple[AccessAccounting, WearAccounting]:
    """Scale sampled counters up, preserving the bookkeeping identities
    :meth:`AccessAccounting.validate` enforces.

    The estimator combines three sources by how each is best known:

    * **Faults, migrations and evictions** are page-population events:
      a cold fault happens once per page, capacity misses live in the
      flat tail whose request mass tracks the page count, and the
      migration/eviction flows are driven by the fault flow.  They
      scale by the measured distinct-page ratio (``page_multiplier``).
    * **Request totals** per direction are *known exactly* — the full
      trace is in memory, counting its writes is a vectorized O(n) —
      so ``measured_reads``/``measured_writes`` are used verbatim, and
      hits are the residual ``measured - scaled faults``.  (Scaling
      hits by a sampled-request ratio instead couples the request
      total to the hash draw's request mass, which on zipf-like traces
      has enormous variance: one missed hot page can halve it.)
    * **Hit composition** (DRAM vs NVM per direction) is the one thing
      only the replay knows; the sampled proportions split the exact
      residuals.  Composition multiplies nanosecond-scale hit
      latencies, so its sampling noise is second-order in AMAT/APPR.

    When ``page_multiplier`` is ``1.0`` and the measured totals match
    the accounting's (the K=1 identity path), the inputs are returned
    unchanged.

    The wear histogram is deliberately *not* scaled: a sampled page's
    write count is its true write count, so per-page wear statistics
    (``max_page_writes``, the lifetime bound) stay in real units while
    the per-source write-volume totals scale with the sample —
    fill/migration wear by the page ratio, request wear with the NVM
    write-hit estimate it is proportional to.
    """
    if (
        page_multiplier == 1.0
        and measured_reads == accounting.read_requests
        and measured_writes == accounting.write_requests
    ):
        return accounting, wear
    if page_multiplier <= 0.0:
        raise ValueError("scale-up multiplier must be positive")
    if measured_reads < 0 or measured_writes < 0:
        raise ValueError("measured request totals must be non-negative")

    def by_pages(count: int) -> int:
        return max(0, round(count * page_multiplier))

    def split(total: int, dram_part: int, nvm_part: int) -> tuple[int, int]:
        """Split an exact hit total by the sampled tier proportion."""
        denom = dram_part + nvm_part
        all_hits = accounting.dram_hits + accounting.nvm_hits
        if denom:
            proportion = dram_part / denom
        elif all_hits:
            proportion = accounting.dram_hits / all_hits
        else:
            proportion = dram_share
        dram = min(total, round(total * proportion))
        return dram, total - dram

    read_faults = min(by_pages(accounting.read_faults), measured_reads)
    write_faults = min(by_pages(accounting.write_faults), measured_writes)
    faults = read_faults + write_faults
    faults_filled_dram = min(by_pages(accounting.faults_filled_dram), faults)
    dram_read_hits, nvm_read_hits = split(
        measured_reads - read_faults,
        accounting.dram_read_hits, accounting.nvm_read_hits,
    )
    dram_write_hits, nvm_write_hits = split(
        measured_writes - write_faults,
        accounting.dram_write_hits, accounting.nvm_write_hits,
    )
    scaled_accounting = AccessAccounting(
        read_requests=measured_reads,
        write_requests=measured_writes,
        dram_read_hits=dram_read_hits,
        dram_write_hits=dram_write_hits,
        nvm_read_hits=nvm_read_hits,
        nvm_write_hits=nvm_write_hits,
        read_faults=read_faults,
        write_faults=write_faults,
        faults_filled_dram=faults_filled_dram,
        faults_filled_nvm=faults - faults_filled_dram,
        migrations_to_dram=by_pages(accounting.migrations_to_dram),
        migrations_to_nvm=by_pages(accounting.migrations_to_nvm),
        clean_evictions=by_pages(accounting.clean_evictions),
        dirty_evictions=by_pages(accounting.dirty_evictions),
    )
    scaled_accounting.validate()
    request_wear_factor = (
        nvm_write_hits / accounting.nvm_write_hits
        if accounting.nvm_write_hits
        else page_multiplier
    )
    scaled_wear = WearAccounting(
        page_factor=wear.page_factor,
        fault_fill_writes=by_pages(wear.fault_fill_writes),
        migration_writes=by_pages(wear.migration_writes),
        request_writes=max(0, round(wear.request_writes * request_wear_factor)),
        page_writes=dict(wear.page_writes),
    )
    return scaled_accounting, scaled_wear


# ---------------------------------------------------------------------------
# One sampled replay
# ---------------------------------------------------------------------------
class _Membership:
    """Per-unique-page sampling machinery, computed once per spec.

    One ``np.unique(return_inverse=True)`` pass gives the sorted page
    population, per-page request counts and the page index of every
    request; membership and replicate-group decisions then run over
    the (small) unique-page array and broadcast back through the
    inverse, so redrawing at an escalated rate costs O(pages), not
    another O(requests log requests) pass.  The ``temporal`` scheme
    decides per *request* and keeps the slower request-level path.
    """

    def __init__(self, trace: Trace, scheme: str, salt: int) -> None:
        self.trace = trace
        self.scheme = scheme
        self.salt = salt
        if scheme == "temporal":
            self.pages = np.unique(trace.pages)
            self.counts = self.inverse = None
        else:
            self.pages, self.inverse, self.counts = np.unique(
                trace.pages, return_inverse=True, return_counts=True
            )

    @property
    def total_pages(self) -> int:
        return int(self.pages.size)

    def draw(self, rate: int) -> tuple[np.ndarray, int]:
        """Request mask and distinct-page count of a 1-in-``rate`` draw."""
        if self.scheme == "temporal":
            mask = sample_mask(self.trace, rate, self.scheme, self.salt)
            return mask, int(np.unique(self.trace.pages[mask]).size)
        member = page_membership(
            self.pages, self.counts, rate, self.scheme, self.salt
        )
        return member[self.inverse], int(np.count_nonzero(member))

    def replicate_draws(
        self, rate: int, groups: int
    ) -> list[tuple[np.ndarray, int]]:
        """The ``groups`` disjoint sub-draws of the 1-in-``rate`` draw."""
        if self.scheme == "temporal":
            mask = sample_mask(self.trace, rate, self.scheme, self.salt)
            ids = assign_groups(
                self.trace, groups, self.scheme, self.salt, rate=rate
            )
            unique = np.unique
            pages = self.trace.pages
            draws = []
            for group in range(groups):
                sub = mask & (ids == group)
                draws.append((sub, int(unique(pages[sub]).size)))
            return draws
        member = page_membership(
            self.pages, self.counts, rate, self.scheme, self.salt
        )
        ids = page_groups(
            self.pages, self.counts, groups, self.scheme, self.salt, rate
        )
        count = np.count_nonzero
        inverse = self.inverse
        draws = []
        for group in range(groups):
            sub = member & (ids == group)
            draws.append((sub[inverse], int(count(sub))))
        return draws


def _replay_subset(
    trace: Trace,
    mask: np.ndarray,
    subset_pages: int,
    boundary: int,
    machine: HybridMemorySpec,
    total_pages: int,
    measured_reads: int,
    measured_writes: int,
    factory: PolicyFactory,
    gap: float,
) -> tuple[RunResult, AccessAccounting, WearAccounting, int, float] | None:
    """Simulate the masked subset at a proportionally scaled frame
    budget and scale the result; ``None`` when the subset has no
    measured span (degenerate replicate).

    The frame budget scales by the *measured* page ratio (the
    SHARDS-adj correction): a hash draw that lands 10% more pages than
    ``1/rate`` expected gets 10% more frames, so the frames-per-page
    capacity ratio — which the fault rate is extremely sensitive to —
    matches the full configuration exactly rather than in expectation.
    """
    if not subset_pages:
        return None
    subset = subset_trace(trace, mask)
    warm = int(np.count_nonzero(mask[:boundary])) if boundary else 0
    measured_sampled = len(subset) - warm
    if measured_sampled <= 0:
        return None
    result = simulate(
        subset,
        machine.sampled(total_pages / subset_pages),
        factory,
        inter_request_gap=gap,
        warmup_requests=warm,
    )
    multiplier = (measured_reads + measured_writes) / measured_sampled
    accounting, wear = scale_accounting(
        result.accounting, result.wear,
        total_pages / subset_pages,
        measured_reads, measured_writes,
        dram_share=machine.dram_pages / machine.total_pages,
    )
    return result, accounting, wear, measured_sampled, multiplier


def _score(
    accounting: AccessAccounting,
    wear: WearAccounting,
    machine: HybridMemorySpec,
    gap: float,
) -> dict:
    """Evaluate the paper models on scaled counters against the *full*
    machine (same recipe as ``HybridMemorySimulator.result``)."""
    performance = compute_performance(accounting, machine)
    power = compute_power(
        accounting, machine, performance, inter_request_gap=gap
    )
    nvm_writes = compute_nvm_writes(accounting, machine)
    elapsed = (
        (performance.memory_time + gap) * accounting.total_requests
    )
    endurance = endurance_report(
        wear, machine, elapsed_seconds=elapsed or None
    )
    return {
        "performance": performance,
        "power": power,
        "nvm_writes": nvm_writes,
        "endurance": endurance,
    }


# ---------------------------------------------------------------------------
# Confidence intervals
# ---------------------------------------------------------------------------
def _replicate_intervals(
    trace: Trace,
    membership: _Membership,
    boundary: int,
    machine: HybridMemorySpec,
    total_pages: int,
    measured_reads: int,
    measured_writes: int,
    config: SamplingConfig,
    rate: int,
    factory: PolicyFactory,
    gap: float,
    estimates: dict[str, float],
) -> tuple[dict[str, MetricInterval], int]:
    """Stratified page-group confidence intervals around ``estimates``.

    Each of the ``groups`` disjoint sub-samples is a spatial sample at
    a ``groups``-times smaller rate; the replicate spread estimates
    the sampling variance of the group *mean*, which is the estimator
    the point estimate approximates.
    """
    replicates: list[dict[str, float]] = []
    for sub_mask, sub_pages in membership.replicate_draws(
        rate, config.groups
    ):
        replay = _replay_subset(
            trace, sub_mask, sub_pages, boundary,
            machine, total_pages, measured_reads, measured_writes,
            factory, gap,
        )
        if replay is None:
            continue
        _, accounting, wear, _, _ = replay
        scores = _score(accounting, wear, machine, gap)
        replicates.append({
            "amat": scores["performance"].amat,
            "appr": scores["power"].appr,
            "nvm_writes": float(scores["nvm_writes"].total),
        })
    if len(replicates) < 2:
        return {}, 0
    z = statistics.NormalDist().inv_cdf((1.0 + config.confidence) / 2.0)
    intervals: dict[str, MetricInterval] = {}
    for metric in _INTERVAL_METRICS:
        values = [replicate[metric] for replicate in replicates]
        se = statistics.stdev(values) / len(values) ** 0.5
        estimate = estimates[metric]
        intervals[metric] = MetricInterval(
            estimate=estimate, se=se,
            lo=estimate - z * se, hi=estimate + z * se,
        )
    return intervals, len(replicates)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def sample_spec(
    spec: "RunSpec",
    instance: WorkloadInstance | None = None,
    factory: PolicyFactory | None = None,
) -> RunResult:
    """Sampled counterpart of ``RunSpec.execute()``.

    Renders (or reuses) the workload, draws the hash sample, replays
    it at the scaled frame budget, scales the counters back up, scores
    them against the full machine, and attaches a
    :class:`SamplingSummary` (with replicate confidence intervals) to
    the result.
    """
    config = spec.sampling if spec.sampling is not None else SamplingConfig()
    if instance is None:
        instance = spec.render()
    trace = instance.trace
    machine = spec.machine_spec(instance)
    gap = instance.inter_request_gap
    warmup = (
        instance.warmup_fraction if spec.warmup_fraction is None
        else spec.warmup_fraction
    )
    boundary = int(len(trace) * warmup) if warmup > 0.0 else 0

    membership = _Membership(trace, config.scheme, config.salt)
    total_pages = membership.total_pages
    measured_writes = int(np.count_nonzero(trace.is_write[boundary:]))
    measured_reads = len(trace) - boundary - measured_writes
    rate = config.effective_rate(total_pages)
    policy_factory = (
        factory if factory is not None else spec.build_policy_factory()
    )
    if not getattr(policy_factory, "sampling_safe", True):
        raise SamplingError(
            f"policy {spec.policy!r} declares sampling_safe=False (its "
            "decisions depend on global request-stream state, which "
            "spatial sampling distorts); use engine=\"simulate\""
        )

    # Adaptive escalation (SHARDS-style rate adaptation on the rare
    # events): replay the sample, and if it observed too few faults —
    # the count whose ~1/sqrt(n) noise dominates AMAT error — retry at
    # a 4x denser sample, bottoming out at exact replay.  Escalation
    # retries cost at most ~1/3 of the final replay (geometric in the
    # densities), so the fallback stays cheap.
    while True:
        mask, sampled_pages = membership.draw(rate)
        replay = _replay_subset(
            trace, mask, sampled_pages, boundary, machine, total_pages,
            measured_reads, measured_writes, policy_factory, gap,
        )
        if replay is not None:
            observed_faults = replay[0].accounting.page_faults
            if rate == 1 or observed_faults >= config.min_faults:
                break
        elif rate == 1:
            raise SamplingError(
                f"the warm-up boundary leaves no measured requests for "
                f"{spec.workload!r}; lower warmup_fraction"
            )
        rate = max(1, rate // 4)
    raw, accounting, wear, measured_sampled, multiplier = replay
    scores = _score(accounting, wear, machine, gap)

    intervals: dict[str, MetricInterval] = {}
    replicate_count = 0
    if rate > 1 and config.groups > 1:
        intervals, replicate_count = _replicate_intervals(
            trace, membership, boundary, machine, total_pages,
            measured_reads, measured_writes, config, rate,
            policy_factory, gap,
            estimates={
                "amat": scores["performance"].amat,
                "appr": scores["power"].appr,
                "nvm_writes": float(scores["nvm_writes"].total),
            },
        )

    summary = SamplingSummary(
        rate=config.rate,
        effective_rate=rate,
        scheme=config.scheme,
        salt=config.salt,
        sampled_pages=sampled_pages,
        total_pages=total_pages,
        sampled_requests=measured_sampled,
        total_requests=len(trace) - boundary,
        multiplier=multiplier,
        groups=replicate_count,
        confidence=config.confidence,
        intervals=intervals,
    )
    return RunResult(
        workload=trace.name,
        policy=raw.policy,
        spec=machine,
        accounting=accounting,
        wear=wear,
        performance=scores["performance"],
        power=scores["power"],
        nvm_writes=scores["nvm_writes"],
        endurance=scores["endurance"],
        sampling=summary,
    )
