"""Declarative sampling configuration carried by RunSpec.

:class:`SamplingConfig` is frozen and hashable so it can ride on the
(frozen, picklable) :class:`~repro.experiments.runspec.RunSpec`, enter
its cache key/digest, and cross the executor's worker pool — exactly
the contract :class:`~repro.obs.config.EventConfig` established for
the observability bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.trace.sampling import SAMPLING_SCHEMES

#: Default 1-in-K sampling rate (the ISSUE/ROADMAP throughput target
#: is quoted at 1/16).
DEFAULT_RATE = 16

#: Default membership scheme: frequency-stratified systematic
#: selection (see :mod:`repro.trace.sampling`).
DEFAULT_SCHEME = "stratified"

#: Default floor on the expected sampled-page count: the configured
#: rate is clamped down (SHARDS-style rate adaptation) so the sample
#: keeps at least this many pages in expectation.
DEFAULT_MIN_PAGES = 32

#: Default floor on the *observed* (unscaled) fault count of a sampled
#: replay: below it the engine escalates to a denser sample.
DEFAULT_MIN_FAULTS = 64

#: Default replicate-group count for the stratified confidence
#: intervals; each group is a disjoint spatial sub-sample.
DEFAULT_GROUPS = 8


@dataclass(frozen=True)
class SamplingConfig:
    """How a sampled run selects pages and reports its uncertainty.

    rate:
        Sample 1 in ``rate`` pages (``1`` = identity: the sampled
        engine reproduces the exact simulator bit-for-bit).
    scheme:
        Membership scheme (:data:`repro.trace.sampling.SAMPLING_SCHEMES`):
        ``stratified`` (frequency-stratified systematic selection, the
        default — the engine always has the full trace, so it can
        balance the sample's request mass across the frequency
        spectrum instead of gambling on a hash draw), ``spatial``
        (SHARDS hash threshold, the online-capable variant), ``modulo``
        (residue classes) or ``temporal`` (request subsampling — known
        to distort migration dynamics; kept for the accuracy study).
    salt:
        Hash salt: independent resamples for the same rate.
    min_pages:
        Floor on the expected sampled-page count.  The effective rate
        is ``min(rate, footprint_pages // min_pages)``, so tiny
        workloads degrade toward exact simulation instead of running a
        handful of pages against sub-frame budgets.  ``0`` disables
        the clamp.
    min_faults:
        Floor on the fault count the sampled replay must *observe*
        (unscaled).  Disk faults are the rare events that dominate
        AMAT, and a count's relative sampling error is ~``1/sqrt(n)``;
        when a replay sees fewer than this many, the engine escalates
        to a 4x denser sample and, ultimately, to exact replay (rate
        1) — workloads whose fault counts are intrinsically tiny are
        exactly the ones where sampling has nothing left to estimate.
        ``0`` disables escalation.
    groups:
        Stratified replicate groups behind the per-metric confidence
        intervals; ``0`` or ``1`` disables interval estimation.
    confidence:
        Two-sided normal confidence level for the intervals.
    """

    rate: int = DEFAULT_RATE
    scheme: str = DEFAULT_SCHEME
    salt: int = 0
    min_pages: int = DEFAULT_MIN_PAGES
    min_faults: int = DEFAULT_MIN_FAULTS
    groups: int = DEFAULT_GROUPS
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.rate < 1:
            raise ValueError("sampling rate must be >= 1")
        if self.scheme not in SAMPLING_SCHEMES:
            known = ", ".join(SAMPLING_SCHEMES)
            raise ValueError(
                f"unknown sampling scheme {self.scheme!r}; known: {known}")
        if self.min_pages < 0:
            raise ValueError("min_pages must be >= 0")
        if self.min_faults < 0:
            raise ValueError("min_faults must be >= 0")
        if self.groups < 0:
            raise ValueError("groups must be >= 0")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    def effective_rate(self, footprint_pages: int) -> int:
        """The rate after the ``min_pages`` clamp for this footprint."""
        if self.rate <= 1:
            return 1
        if self.min_pages <= 0:
            return self.rate
        return max(1, min(self.rate, footprint_pages // self.min_pages))

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "scheme": self.scheme,
            "salt": self.salt,
            "min_pages": self.min_pages,
            "min_faults": self.min_faults,
            "groups": self.groups,
            "confidence": self.confidence,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplingConfig":
        return cls(
            rate=data.get("rate", DEFAULT_RATE),
            scheme=data.get("scheme", DEFAULT_SCHEME),
            salt=data.get("salt", 0),
            min_pages=data.get("min_pages", DEFAULT_MIN_PAGES),
            min_faults=data.get("min_faults", DEFAULT_MIN_FAULTS),
            groups=data.get("groups", DEFAULT_GROUPS),
            confidence=data.get("confidence", 0.95),
        )
