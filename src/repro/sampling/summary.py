"""What a sampled run measured about its own sampling.

:class:`SamplingSummary` rides on :class:`~repro.mmu.simulator.RunResult`
(like :class:`~repro.obs.summary.EventSummary` does for event streams):
it records the sample actually drawn — configured vs effective rate,
page and request coverage, the scale-up multiplier — plus the
per-metric confidence intervals estimated from the replicate groups.
It must round-trip losslessly through ``to_dict``/``from_dict`` so
sampled results survive the worker pool and the on-disk result cache.

This module stays stdlib-only: the simulator imports it at module load
(the engine, which imports the simulator back, is loaded lazily by
``RunSpec.execute``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class MetricInterval:
    """One scaled metric with its stratified-replicate uncertainty.

    ``estimate`` is the scaled-up point estimate the result reports;
    ``se`` is the standard error of the replicate-group mean; ``lo`` /
    ``hi`` bracket the estimate at the configured confidence level.
    """

    estimate: float
    se: float
    lo: float
    hi: float

    @property
    def half_width(self) -> float:
        return (self.hi - self.lo) / 2.0

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the estimate (0 when degenerate)."""
        return self.half_width / abs(self.estimate) if self.estimate else 0.0

    def to_dict(self) -> dict[str, float]:
        return {"estimate": self.estimate, "se": self.se,
                "lo": self.lo, "hi": self.hi}

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "MetricInterval":
        return cls(estimate=data["estimate"], se=data["se"],
                   lo=data["lo"], hi=data["hi"])


@dataclass(frozen=True)
class SamplingSummary:
    """Provenance and uncertainty of one sampled run."""

    #: Configured 1-in-K rate and the rate actually used after the
    #: ``min_pages`` clamp (equal unless the workload was too small).
    rate: int
    effective_rate: int
    scheme: str
    salt: int
    #: Page coverage: distinct pages in the sample vs the full trace.
    sampled_pages: int
    total_pages: int
    #: Measured-region request coverage: replayed vs full.
    sampled_requests: int
    total_requests: int
    #: Scale-up factor applied to the sampled counters (the ratio
    #: estimator ``total_requests / sampled_requests``).
    multiplier: float
    #: Replicate groups that contributed to the intervals (0 when
    #: interval estimation was disabled or degenerate).
    groups: int
    confidence: float
    #: Per-metric confidence intervals, keyed ``amat`` / ``appr`` /
    #: ``nvm_writes`` (empty when ``groups`` is 0).
    intervals: Mapping[str, MetricInterval] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "effective_rate": self.effective_rate,
            "scheme": self.scheme,
            "salt": self.salt,
            "sampled_pages": self.sampled_pages,
            "total_pages": self.total_pages,
            "sampled_requests": self.sampled_requests,
            "total_requests": self.total_requests,
            "multiplier": self.multiplier,
            "groups": self.groups,
            "confidence": self.confidence,
            "intervals": {
                name: interval.to_dict()
                for name, interval in sorted(self.intervals.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplingSummary":
        return cls(
            rate=data["rate"],
            effective_rate=data["effective_rate"],
            scheme=data["scheme"],
            salt=data["salt"],
            sampled_pages=data["sampled_pages"],
            total_pages=data["total_pages"],
            sampled_requests=data["sampled_requests"],
            total_requests=data["total_requests"],
            multiplier=data["multiplier"],
            groups=data["groups"],
            confidence=data["confidence"],
            intervals={
                name: MetricInterval.from_dict(payload)
                for name, payload in data.get("intervals", {}).items()
            },
        )
