"""Typed simulation events: the vocabulary of the observability layer.

Each event is a frozen, slotted dataclass with a ``kind`` tag used for
JSONL serialisation.  ``index`` is the 1-based ordinal of the measured
trace request being served when the event fired (the count restarts at
1 where the measured region begins, i.e. after any warm-up prefix).
Epoch marks carry the index of the last request included in the epoch.

The counters carried by :class:`MigrationEvent` and
:class:`EvictionEvent` are the page-table entry's ``access_count`` /
``write_count`` *at the moment the page moved*; differencing them
between a promotion and the matching demotion/eviction yields exactly
the DRAM hits the promotion earned, which is what the
beneficial-migration classifier consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Mapping, Union


@dataclass(frozen=True, slots=True)
class MigrationEvent:
    """A page crossed between the two modules (or a DRAM copy did).

    ``trigger``/``counter``/``threshold`` are only present on
    promotions whose policy annotated the decision: the counter that
    crossed and the threshold it crossed (paper Section IV's read/write
    migration triggers).  DRAM-cache copy fills and copy drops are
    charged as migrations by the cost model and therefore also appear
    here, with ``trigger`` set to ``"copy"``/``"copy-drop"``/
    ``"writeback"``.
    """

    kind: ClassVar[str] = "migration"

    index: int
    page: int
    to_dram: bool
    access_count: int
    write_count: int
    trigger: str | None = None
    counter: int | None = None
    threshold: int | None = None


@dataclass(frozen=True, slots=True)
class PageFaultEvent:
    """A non-resident page was loaded from disk into ``DRAM``/``NVM``."""

    kind: ClassVar[str] = "fault"

    index: int
    page: int
    to_dram: bool
    is_write: bool


@dataclass(frozen=True, slots=True)
class EvictionEvent:
    """A resident page was evicted to disk (write-back when dirty)."""

    kind: ClassVar[str] = "eviction"

    index: int
    page: int
    from_dram: bool
    dirty: bool
    access_count: int
    write_count: int


@dataclass(frozen=True, slots=True)
class EpochEvent:
    """Fixed-interval rollover mark with *cumulative* accounting.

    ``accounting`` is :meth:`AccessAccounting.snapshot` (all fourteen
    counters) and ``wear`` the wear totals, both cumulative since the
    start of the measured region.  Consumers difference consecutive
    epochs to get exact per-interval counts; summing those deltas
    reconstructs the end-of-run counters bit-for-bit.
    """

    kind: ClassVar[str] = "epoch"

    index: int
    accounting: dict[str, int]
    wear: dict[str, int]


Event = Union[MigrationEvent, PageFaultEvent, EvictionEvent, EpochEvent]

#: kind tag -> event class, for decoding serialised streams.
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (MigrationEvent, PageFaultEvent, EvictionEvent, EpochEvent)
}


def event_to_dict(event: Event) -> dict[str, Any]:
    """Flat JSON-compatible form, with the ``kind`` tag included."""
    data: dict[str, Any] = {"kind": event.kind}
    for field in fields(event):
        data[field.name] = getattr(event, field.name)
    return data


def event_from_dict(data: Mapping[str, Any]) -> Event:
    """Inverse of :func:`event_to_dict`."""
    payload = dict(data)
    kind = payload.pop("kind")
    return EVENT_TYPES[kind](**payload)  # type: ignore[no-any-return]


def encode_event(event: Event) -> str:
    """One deterministic JSONL line (sorted keys, no whitespace)."""
    return json.dumps(event_to_dict(event), sort_keys=True,
                      separators=(",", ":"))


def decode_event(line: str) -> Event:
    """Inverse of :func:`encode_event`."""
    return event_from_dict(json.loads(line))
