"""Declarative event-collection configuration carried by RunSpec.

:class:`EventConfig` is frozen and hashable so it can ride on the
(frozen, picklable) :class:`~repro.experiments.runspec.RunSpec`, enter
its cache key/digest, and cross the executor's worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

#: Default number of intervals a run is bucketed into when no explicit
#: interval length is configured.
DEFAULT_BUCKETS = 64


@dataclass(frozen=True)
class EventConfig:
    """How a run's event stream is collected and summarised.

    interval:
        Epoch length in measured requests.  ``0`` (default) derives it
        from ``buckets``.
    buckets:
        Target interval count when ``interval`` is auto-derived.
    trace:
        Also keep the raw JSONL-encoded event lines on the summary
        (costs memory proportional to the event count).
    classify:
        Run the beneficial-migration classifier.
    """

    interval: int = 0
    buckets: int = DEFAULT_BUCKETS
    trace: bool = False
    classify: bool = True

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise ValueError("interval must be >= 0")
        if self.buckets < 1:
            raise ValueError("buckets must be >= 1")

    def resolve_interval(self, measured_requests: int) -> int:
        """Epoch length for a run of ``measured_requests`` requests."""
        if self.interval > 0:
            return self.interval
        return max(1, -(-measured_requests // self.buckets))

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "buckets": self.buckets,
            "trace": self.trace,
            "classify": self.classify,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EventConfig":
        return cls(
            interval=data.get("interval", 0),
            buckets=data.get("buckets", DEFAULT_BUCKETS),
            trace=data.get("trace", False),
            classify=data.get("classify", True),
        )
