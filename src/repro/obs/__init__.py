"""repro.obs — typed event-stream observability for the simulator.

The paper's argument is temporal (which migrations fire *when*, and
which ones pay off); this package gives the simulator a typed,
zero-overhead-when-disabled event bus plus the standard sinks that
turn the stream into per-interval metric series, JSONL traces and the
beneficial-migration split of Fig. 2/3.  See DESIGN.md §11.
"""

from repro.obs.bus import EventBus, FinalState, Sink
from repro.obs.config import DEFAULT_BUCKETS, EventConfig
from repro.obs.events import (
    EVENT_TYPES,
    EpochEvent,
    Event,
    EvictionEvent,
    MigrationEvent,
    PageFaultEvent,
    decode_event,
    encode_event,
    event_from_dict,
    event_to_dict,
)
from repro.obs.sinks import (
    BeneficialMigrationClassifier,
    BufferSink,
    IntervalAggregator,
    JsonlTraceSink,
    build_ledger,
    build_series,
)
from repro.obs.summary import (
    EventSummary,
    IntervalLedger,
    IntervalMetrics,
    MigrationLedger,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "EVENT_TYPES",
    "BeneficialMigrationClassifier",
    "BufferSink",
    "EpochEvent",
    "Event",
    "EventBus",
    "EventConfig",
    "EventSummary",
    "EvictionEvent",
    "FinalState",
    "IntervalAggregator",
    "IntervalLedger",
    "IntervalMetrics",
    "JsonlTraceSink",
    "MigrationEvent",
    "MigrationLedger",
    "PageFaultEvent",
    "Sink",
    "build_ledger",
    "build_series",
    "decode_event",
    "encode_event",
    "event_from_dict",
    "event_to_dict",
]
