"""The event bus: zero-overhead-when-disabled instrumentation spine.

A :class:`MemoryManager` optionally carries an :class:`EventBus` on its
``events`` attribute (``None`` by default).  The manager's movement
methods — and the hand-fused batch kernels, which bypass those methods
on their fast paths — append typed events to the bus's pending buffer;
the simulator flushes the buffer into the attached sinks at every
fixed-interval epoch rollover.

Clock protocol
--------------
``bus.clock`` counts the measured trace requests recorded so far:
``MemoryManager.record_request`` ticks it when a bus is attached.  The
batch kernels defer their request counters in locals, so before any
call-out that can tick or emit they fold the deferred counts into the
clock (the ``synced`` bookkeeping in each kernel) and their
kernel-direct emissions compute the in-flight index explicitly.  This
keeps the event stream byte-identical between the batched and
per-request replay paths — asserted by the golden-equivalence tests.

Ordering
--------
All emissions, whether routed through the manager's methods or
appended directly by a kernel, land in one shared pending list in
chronological order; sinks therefore observe the same stream
regardless of replay mode, chunking or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.mmu.page import PageLocation
from repro.obs.events import (
    EpochEvent,
    Event,
    EvictionEvent,
    MigrationEvent,
    PageFaultEvent,
)

if TYPE_CHECKING:  # mmu imports obs; keep the reverse edge typing-only
    from repro.mmu.manager import MemoryManager


@dataclass(frozen=True)
class FinalState:
    """End-of-run memory state handed to every sink's ``finish``.

    ``pages`` maps each still-resident page to ``(served_from_dram,
    access_count, write_count)`` so sinks can resolve records that are
    still open when the run ends (e.g. promotions whose page never got
    demoted).
    """

    clock: int
    interval: int
    pages: Mapping[int, tuple[bool, int, int]]


class Sink:
    """Event consumer attached to an :class:`EventBus`.

    ``handle`` receives every event in chronological order, in epoch
    batches; ``finish`` is called exactly once after the final epoch
    flush.
    """

    def handle(self, event: Event) -> None:
        raise NotImplementedError

    def finish(self, final: FinalState) -> None:  # noqa: B027 - optional hook
        """Optional end-of-run hook; default does nothing."""


class EventBus:
    """Collects typed events and fans them out to sinks per epoch."""

    __slots__ = (
        "sinks",
        "interval",
        "clock",
        "events_seen",
        "_pending",
        "_trigger",
        "_last_epoch",
    )

    def __init__(self, sinks: list[Sink], interval: int = 0) -> None:
        self.sinks = sinks
        self.interval = interval
        #: measured requests recorded so far (1-based event indexes).
        self.clock = 0
        self.events_seen = 0
        self._pending: list[Event] = []
        self._trigger: tuple[str, int | None, int | None] | None = None
        self._last_epoch = 0

    # ------------------------------------------------------------------
    # Emission (called by the manager and the batch kernels)
    # ------------------------------------------------------------------
    def annotate(
        self,
        trigger: str,
        counter: int | None = None,
        threshold: int | None = None,
    ) -> None:
        """Stage trigger context for the next promotion emission.

        Policies call this right before asking the manager to promote;
        the very next ``to_dram`` migration event carries the counter
        value and threshold that fired the decision.
        """
        self._trigger = (trigger, counter, threshold)

    def migration(
        self,
        page: int,
        to_dram: bool,
        access_count: int,
        write_count: int,
        trigger: str | None = None,
    ) -> None:
        counter: int | None = None
        threshold: int | None = None
        if trigger is None and to_dram and self._trigger is not None:
            trigger, counter, threshold = self._trigger
            self._trigger = None
        self._pending.append(MigrationEvent(
            index=self.clock,
            page=page,
            to_dram=to_dram,
            access_count=access_count,
            write_count=write_count,
            trigger=trigger,
            counter=counter,
            threshold=threshold,
        ))

    def page_fault(self, page: int, to_dram: bool, is_write: bool) -> None:
        self._pending.append(PageFaultEvent(
            index=self.clock, page=page, to_dram=to_dram, is_write=is_write,
        ))

    def eviction(
        self,
        page: int,
        from_dram: bool,
        dirty: bool,
        access_count: int,
        write_count: int,
    ) -> None:
        self._pending.append(EvictionEvent(
            index=self.clock,
            page=page,
            from_dram=from_dram,
            dirty=dirty,
            access_count=access_count,
            write_count=write_count,
        ))

    # ------------------------------------------------------------------
    # Epoch rollover and delivery (called by the simulator)
    # ------------------------------------------------------------------
    def epoch(self, mm: "MemoryManager") -> None:
        """Mark an interval boundary and flush pending events to sinks.

        Idempotent per clock value, so the final partial interval is
        marked exactly once even when the trace length divides evenly
        into the interval.
        """
        clock = self.clock
        if clock == self._last_epoch:
            return
        self._last_epoch = clock
        wear = mm.wear
        self._pending.append(EpochEvent(
            index=clock,
            accounting=mm.accounting.snapshot(),
            wear={
                "fault_fill_writes": wear.fault_fill_writes,
                "migration_writes": wear.migration_writes,
                "request_writes": wear.request_writes,
                "touched_pages": wear.touched_pages,
                "max_page_writes": wear.max_page_writes,
            },
        ))
        self.flush()

    def flush(self) -> None:
        """Deliver buffered events to every sink, in order."""
        pending = self._pending
        if not pending:
            return
        self.events_seen += len(pending)
        for sink in self.sinks:
            handle = sink.handle
            for event in pending:
                handle(event)
        self._pending = []

    def finish(self, mm: "MemoryManager") -> None:
        """Mark the final epoch and run every sink's ``finish`` hook."""
        self.epoch(mm)
        self.flush()
        dram = PageLocation.DRAM
        final = FinalState(
            clock=self.clock,
            interval=self.interval,
            pages={
                entry.page: (
                    entry.location is dram or entry.has_copy,
                    entry.access_count,
                    entry.write_count,
                )
                for entry in mm.page_table.entries()
            },
        )
        for sink in self.sinks:
            sink.finish(final)
