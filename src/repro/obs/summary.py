"""Serializable summaries distilled from an event stream.

These are the objects that ride on :class:`~repro.mmu.simulator.RunResult`
(and therefore through the parallel executor's worker pool and the
persistent result cache), so every one of them round-trips losslessly
through ``to_dict``/``from_dict`` JSON, like the rest of the result
object graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class IntervalMetrics:
    """Paper metrics evaluated over one fixed interval of the run.

    ``accounting`` holds the exact per-interval *delta* of all fourteen
    event counters; ``amat``/``appr``/``nvm_writes`` are the paper's
    Eq. 1 / Eq. 2-3 / endurance models evaluated on that delta.  The
    ``wear`` dict carries the interval's line-write deltas plus the
    cumulative ``touched_pages``/``max_page_writes`` watermarks (which
    are not interval-decomposable).
    """

    index: int
    start: int
    end: int
    requests: int
    amat: float
    appr: float
    nvm_writes: int
    migrations_to_dram: int
    migrations_to_nvm: int
    page_faults: int
    evictions: int
    accounting: dict[str, int]
    wear: dict[str, int]

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "requests": self.requests,
            "amat": self.amat,
            "appr": self.appr,
            "nvm_writes": self.nvm_writes,
            "migrations_to_dram": self.migrations_to_dram,
            "migrations_to_nvm": self.migrations_to_nvm,
            "page_faults": self.page_faults,
            "evictions": self.evictions,
            "accounting": dict(self.accounting),
            "wear": dict(self.wear),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IntervalMetrics":
        return cls(
            index=data["index"],
            start=data["start"],
            end=data["end"],
            requests=data["requests"],
            amat=data["amat"],
            appr=data["appr"],
            nvm_writes=data["nvm_writes"],
            migrations_to_dram=data["migrations_to_dram"],
            migrations_to_nvm=data["migrations_to_nvm"],
            page_faults=data["page_faults"],
            evictions=data["evictions"],
            accounting=dict(data["accounting"]),
            wear=dict(data["wear"]),
        )


@dataclass(frozen=True)
class IntervalLedger:
    """Beneficial/non-beneficial promotion split for one interval."""

    index: int
    promotions: int
    beneficial: int
    non_beneficial: int
    wasted_seconds: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "promotions": self.promotions,
            "beneficial": self.beneficial,
            "non_beneficial": self.non_beneficial,
            "wasted_seconds": self.wasted_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IntervalLedger":
        return cls(
            index=data["index"],
            promotions=data["promotions"],
            beneficial=data["beneficial"],
            non_beneficial=data["non_beneficial"],
            wasted_seconds=data["wasted_seconds"],
        )


@dataclass(frozen=True)
class MigrationLedger:
    """Run-level beneficial-migration audit (the paper's Fig. 2/3 split).

    A promotion is *beneficial* when the DRAM-vs-NVM latency saved by
    the hits its page served while promoted covers the page's migration
    latency; ``wasted_seconds`` accumulates the uncovered remainder of
    every non-beneficial promotion.
    """

    promotions: int
    beneficial: int
    non_beneficial: int
    dram_reads_served: int
    dram_writes_served: int
    saved_seconds: float
    migration_cost_seconds: float
    wasted_seconds: float
    by_interval: tuple[IntervalLedger, ...] = ()

    @property
    def beneficial_ratio(self) -> float:
        return self.beneficial / self.promotions if self.promotions else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "promotions": self.promotions,
            "beneficial": self.beneficial,
            "non_beneficial": self.non_beneficial,
            "dram_reads_served": self.dram_reads_served,
            "dram_writes_served": self.dram_writes_served,
            "saved_seconds": self.saved_seconds,
            "migration_cost_seconds": self.migration_cost_seconds,
            "wasted_seconds": self.wasted_seconds,
            "by_interval": [row.to_dict() for row in self.by_interval],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MigrationLedger":
        return cls(
            promotions=data["promotions"],
            beneficial=data["beneficial"],
            non_beneficial=data["non_beneficial"],
            dram_reads_served=data["dram_reads_served"],
            dram_writes_served=data["dram_writes_served"],
            saved_seconds=data["saved_seconds"],
            migration_cost_seconds=data["migration_cost_seconds"],
            wasted_seconds=data["wasted_seconds"],
            by_interval=tuple(
                IntervalLedger.from_dict(row) for row in data["by_interval"]
            ),
        )


@dataclass(frozen=True)
class EventSummary:
    """Everything the standard sinks distilled from one run's events.

    Built by the simulator when ``events=EventConfig(...)`` is passed;
    rides on :class:`RunResult` so the executor ships it back from
    workers and the cache persists it with no extra machinery.
    """

    interval: int
    requests: int
    events: int
    inter_request_gap: float = 0.0
    series: tuple[IntervalMetrics, ...] = ()
    migrations: MigrationLedger | None = None
    trace_lines: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "interval": self.interval,
            "requests": self.requests,
            "events": self.events,
            "inter_request_gap": self.inter_request_gap,
            "series": [row.to_dict() for row in self.series],
            "migrations": (
                self.migrations.to_dict()
                if self.migrations is not None else None
            ),
            "trace_lines": list(self.trace_lines),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EventSummary":
        migrations = data.get("migrations")
        return cls(
            interval=data["interval"],
            requests=data["requests"],
            events=data["events"],
            inter_request_gap=data.get("inter_request_gap", 0.0),
            series=tuple(
                IntervalMetrics.from_dict(row) for row in data["series"]
            ),
            migrations=(
                MigrationLedger.from_dict(migrations)
                if migrations is not None else None
            ),
            trace_lines=tuple(data.get("trace_lines", ())),
        )
