"""Pluggable sinks: trace writing, interval aggregation, classification.

A sink receives every event in chronological order (epoch-batched) and
a single ``finish`` call; see :class:`repro.obs.bus.Sink` for the
contract.  The three standard sinks here power ``repro events``, the
timeline figures and the observability tests:

* :class:`JsonlTraceSink` / :class:`BufferSink` — deterministic JSONL
  encoding of the raw stream (one event per line, sorted keys).
* :class:`IntervalAggregator` — differences consecutive epoch marks
  into exact per-interval counter deltas and evaluates the paper's
  AMAT/APPR/NVM-write models on each; summing the deltas reconstructs
  the end-of-run counters bit-for-bit.
* :class:`BeneficialMigrationClassifier` — pairs each promotion with
  the demotion/eviction (or end-of-run state) of the same page and
  tags it by whether the DRAM latency saved in between covered the
  migration cost — the paper's Fig. 2/3 beneficial-migration split.
"""

from __future__ import annotations

from typing import IO

from repro.memory.accounting import AccessAccounting
from repro.memory.endurance import compute_nvm_writes
from repro.memory.metrics import compute_performance
from repro.memory.power import compute_power
from repro.memory.specs import HybridMemorySpec
from repro.obs.bus import FinalState, Sink
from repro.obs.events import (
    EpochEvent,
    Event,
    EvictionEvent,
    MigrationEvent,
    encode_event,
)
from repro.obs.summary import IntervalLedger, IntervalMetrics, MigrationLedger


class BufferSink(Sink):
    """Keeps the encoded JSONL lines of every event in memory."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def handle(self, event: Event) -> None:
        self.lines.append(encode_event(event))


class JsonlTraceSink(Sink):
    """Streams one JSON object per event to a text file handle."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream
        self.events_written = 0

    def handle(self, event: Event) -> None:
        self.stream.write(encode_event(event))
        self.stream.write("\n")
        self.events_written += 1

    def finish(self, final: FinalState) -> None:
        self.stream.flush()


class IntervalAggregator(Sink):
    """Buckets the run into fixed-interval time series of paper metrics.

    Consumes only the epoch marks (every per-request fact needed for
    the models is in the cumulative counters they carry) and publishes
    ``series`` — one :class:`IntervalMetrics` per interval — at
    ``finish``.
    """

    def __init__(
        self, spec: HybridMemorySpec, inter_request_gap: float = 0.0
    ) -> None:
        self.spec = spec
        self.inter_request_gap = inter_request_gap
        self._epochs: list[EpochEvent] = []
        self.series: tuple[IntervalMetrics, ...] = ()

    def handle(self, event: Event) -> None:
        if type(event) is EpochEvent:
            self._epochs.append(event)

    def finish(self, final: FinalState) -> None:
        self.series = build_series(
            self._epochs, self.spec, self.inter_request_gap
        )


def build_series(
    epochs: list[EpochEvent],
    spec: HybridMemorySpec,
    inter_request_gap: float = 0.0,
) -> tuple[IntervalMetrics, ...]:
    """Difference cumulative epoch marks into per-interval metrics."""
    series: list[IntervalMetrics] = []
    prev_index = 0
    prev_accounting: dict[str, int] = {}
    prev_wear: dict[str, int] = {}
    for ordinal, epoch in enumerate(epochs):
        delta = {
            name: value - prev_accounting.get(name, 0)
            for name, value in epoch.accounting.items()
        }
        accounting = AccessAccounting(**delta)
        performance = compute_performance(accounting, spec)
        power = compute_power(
            accounting, spec, performance,
            inter_request_gap=inter_request_gap,
        )
        nvm_writes = compute_nvm_writes(accounting, spec)
        wear = {
            name: epoch.wear[name] - prev_wear.get(name, 0)
            for name in (
                "fault_fill_writes", "migration_writes", "request_writes",
            )
        }
        # Watermarks are cumulative, not interval-decomposable.
        wear["touched_pages"] = epoch.wear["touched_pages"]
        wear["max_page_writes"] = epoch.wear["max_page_writes"]
        series.append(IntervalMetrics(
            index=ordinal,
            start=prev_index + 1,
            end=epoch.index,
            requests=accounting.total_requests,
            amat=performance.amat,
            appr=power.appr,
            nvm_writes=nvm_writes.total,
            migrations_to_dram=accounting.migrations_to_dram,
            migrations_to_nvm=accounting.migrations_to_nvm,
            page_faults=accounting.page_faults,
            evictions=accounting.evictions_to_disk,
            accounting=delta,
            wear=wear,
        ))
        prev_index = epoch.index
        prev_accounting = epoch.accounting
        prev_wear = epoch.wear
    return tuple(series)


class BeneficialMigrationClassifier(Sink):
    """Tags every promotion by whether its DRAM hits paid for it.

    A promotion *opens* a record carrying the page's access/write
    counters at migration time; the page's later demotion, eviction or
    end-of-run state *closes* it.  The counter deltas in between are
    exactly the hits the page served while it lived in DRAM (or held a
    DRAM copy), each saving the NVM-minus-DRAM latency difference; the
    promotion is beneficial when the total saving covers
    ``spec.migration_latency_to_dram()``.  Publishes ``ledger`` at
    ``finish``.
    """

    def __init__(self, spec: HybridMemorySpec) -> None:
        self.spec = spec
        #: page -> (promotion index, access_count, write_count) at open.
        self._open: dict[int, tuple[int, int, int]] = {}
        #: (promotion index, dram reads served, dram writes served).
        self._closed: list[tuple[int, int, int]] = []
        self.ledger: MigrationLedger | None = None

    def handle(self, event: Event) -> None:
        kind = type(event)
        if kind is MigrationEvent:
            if event.to_dram:
                self._open[event.page] = (
                    event.index, event.access_count, event.write_count,
                )
            else:
                opened = self._open.pop(event.page, None)
                if opened is not None:
                    self._close(
                        opened, event.access_count, event.write_count
                    )
        elif kind is EvictionEvent and event.from_dram:
            opened = self._open.pop(event.page, None)
            if opened is not None:
                self._close(opened, event.access_count, event.write_count)

    def _close(
        self,
        opened: tuple[int, int, int],
        access_count: int,
        write_count: int,
    ) -> None:
        index, access_base, write_base = opened
        writes = write_count - write_base
        reads = (access_count - access_base) - writes
        self._closed.append((index, reads, writes))

    def finish(self, final: FinalState) -> None:
        for page in sorted(self._open):
            state = final.pages.get(page)
            if state is None:
                continue
            _, access_count, write_count = state
            self._close(self._open[page], access_count, write_count)
        self._open.clear()
        self.ledger = build_ledger(self._closed, self.spec, final.interval)


def build_ledger(
    closed: list[tuple[int, int, int]],
    spec: HybridMemorySpec,
    interval: int,
) -> MigrationLedger:
    """Score closed promotion records against the migration cost."""
    read_saving = spec.nvm.read_latency - spec.dram.read_latency
    write_saving = spec.nvm.write_latency - spec.dram.write_latency
    cost = spec.migration_latency_to_dram()
    promotions = beneficial = 0
    dram_reads = dram_writes = 0
    saved_total = 0.0
    wasted_total = 0.0
    rows: dict[int, list[float]] = {}
    for index, reads, writes in closed:
        saved = reads * read_saving + writes * write_saving
        is_beneficial = saved >= cost
        promotions += 1
        beneficial += is_beneficial
        dram_reads += reads
        dram_writes += writes
        saved_total += saved
        wasted = 0.0 if is_beneficial else cost - saved
        wasted_total += wasted
        bucket = (index - 1) // interval if interval > 0 else 0
        row = rows.setdefault(bucket, [0, 0, 0, 0.0])
        row[0] += 1
        row[1] += is_beneficial
        row[2] += not is_beneficial
        row[3] += wasted
    return MigrationLedger(
        promotions=promotions,
        beneficial=beneficial,
        non_beneficial=promotions - beneficial,
        dram_reads_served=dram_reads,
        dram_writes_served=dram_writes,
        saved_seconds=saved_total,
        migration_cost_seconds=cost,
        wasted_seconds=wasted_total,
        by_interval=tuple(
            IntervalLedger(
                index=bucket,
                promotions=int(rows[bucket][0]),
                beneficial=int(rows[bucket][1]),
                non_beneficial=int(rows[bucket][2]),
                wasted_seconds=rows[bucket][3],
            )
            for bucket in sorted(rows)
        ),
    )
