"""An O(1) LRU queue with positional window tracking.

The proposed scheme (paper Section IV) keeps read/write counters only
for pages in the top ``readperc``/``writeperc`` positions of the NVM
LRU queue, and resets a page's counter the moment it slips below that
boundary.  A naive implementation needs the *position* of a page, which
is O(n) in a linked list.  :class:`PositionWindow` tracks a top-K window
in O(1) per queue operation instead: it maintains a pointer to the
boundary node (the K-th most recent page) plus a per-node membership
bit, and updates both incrementally — every LRU operation moves at most
one page across the boundary.

The queue supports several independent windows (the scheme uses two:
one sized ``readperc`` and one ``writeperc``), each with an exit
callback that implements the paper's counter reset.
"""

from __future__ import annotations

from typing import Callable, Iterator


class LRUNode:
    """One page's node in the queue, carrying the scheme's counters."""

    __slots__ = ("page", "prev", "next", "read_counter", "write_counter",
                 "_window_mask", "payload")

    def __init__(self, page: int) -> None:
        self.page = page
        self.prev: LRUNode | None = None  # toward MRU
        self.next: LRUNode | None = None  # toward LRU
        self.read_counter = 0
        self.write_counter = 0
        self._window_mask = 0
        # Opaque per-node cache slot for batched kernels (the migration
        # kernel parks the page's table entry here so a hit costs one
        # dict lookup, not two).  Nodes never outlive their page's
        # residency stint, so a cached reference cannot go stale.
        self.payload = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUNode(page={self.page}, r={self.read_counter}, "
            f"w={self.write_counter})"
        )


class PositionWindow:
    """Tracks membership in the top-``size`` positions of an LRU queue.

    Created through :meth:`LRUQueue.add_window`.  ``on_exit`` fires when
    a page *remaining in the queue* slips below the boundary (the
    paper's "moves to the end of the selected percentage" event); pages
    leaving the queue entirely (eviction, migration) do not fire it —
    their node is discarded along with its counters.
    """

    __slots__ = ("size", "on_exit", "_bit", "_boundary", "_queue")

    def __init__(
        self,
        queue: "LRUQueue",
        size: int,
        on_exit: Callable[[LRUNode], None] | None,
        bit: int,
    ) -> None:
        if size < 0:
            raise ValueError("window size must be non-negative")
        self.size = size
        self.on_exit = on_exit
        self._bit = bit
        self._boundary: LRUNode | None = None
        self._queue = queue

    # ------------------------------------------------------------------
    def contains(self, node: LRUNode) -> bool:
        """O(1): is ``node`` within the top-``size`` positions?"""
        return bool(node._window_mask & self._bit)

    @property
    def boundary(self) -> LRUNode | None:
        """The deepest in-window node (position ``min(size, len) - 1``)."""
        return self._boundary

    # ------------------------------------------------------------------
    # Incremental maintenance, called by the queue
    # ------------------------------------------------------------------
    def _enter(self, node: LRUNode) -> None:
        node._window_mask |= self._bit

    def _exit(self, node: LRUNode, notify: bool) -> None:
        node._window_mask &= ~self._bit
        if notify and self.on_exit is not None:
            self.on_exit(node)

    def _after_push_front(self, node: LRUNode, new_length: int) -> None:
        if self.size == 0:
            return
        self._enter(node)
        if new_length <= self.size:
            # Window still covers the whole queue; boundary is the tail.
            self._boundary = self._queue.peek_lru()
        else:
            # The old boundary page is pushed one position deeper.  The
            # freshly inserted node can never be the boundary itself.
            old_boundary = self._boundary
            assert old_boundary is not None and old_boundary is not node
            self._boundary = old_boundary.prev
            self._exit(old_boundary, notify=True)

    def _before_unlink_for_touch(self, node: LRUNode, length: int) -> None:
        """Bookkeeping for a move-to-front, *before* the node unlinks."""
        if self.size == 0:
            return
        if length <= self.size:
            # Everything stays inside the window; only the boundary
            # (== tail) can change, handled after relinking.
            return
        if self.contains(node):
            if node is self._boundary:
                # The boundary page itself becomes MRU; the page above
                # it becomes the new deepest in-window page.
                self._boundary = node.prev
        else:
            # An outside page jumps to the front: it enters the window
            # and the current boundary page is pushed out.  The new
            # boundary is the page formerly one above the old boundary —
            # except for a single-slot window, where it is the moved
            # page itself.
            old_boundary = self._boundary
            assert old_boundary is not None
            self._enter(node)
            self._boundary = old_boundary.prev if self.size > 1 else node
            self._exit(old_boundary, notify=True)

    def _after_touch(self, length: int) -> None:
        if self.size == 0:
            return
        if length <= self.size:
            self._boundary = self._queue.peek_lru()

    def _before_remove(self, node: LRUNode, length: int) -> None:
        """Bookkeeping for a permanent removal, before the node unlinks."""
        if self.size == 0:
            return
        if length <= self.size:
            # Window covers the queue; boundary fixed up after unlink.
            node._window_mask &= ~self._bit
            return
        if self.contains(node):
            node._window_mask &= ~self._bit
            old_boundary = self._boundary
            assert old_boundary is not None
            # The first page below the window rises into it; this holds
            # whether or not the removed page *is* the boundary, because
            # removing any in-window page shifts everything below it up
            # by one position.
            new_boundary = old_boundary.next
            assert new_boundary is not None  # length > size guarantees it
            self._enter(new_boundary)
            self._boundary = new_boundary
        # Outside removals leave the window untouched.

    def _after_remove(self, length: int) -> None:
        if self.size == 0:
            return
        if length <= self.size:
            self._boundary = self._queue.peek_lru()

    # ------------------------------------------------------------------
    def check(self) -> None:
        """O(n) invariant check used by tests: flags match true positions."""
        expected_in = set()
        for position, node in enumerate(self._queue):
            if position < self.size:
                expected_in.add(node.page)
        actual_in = {
            node.page for node in self._queue if self.contains(node)
        }
        if expected_in != actual_in:
            raise AssertionError(
                f"window(size={self.size}) membership drifted: "
                f"expected {sorted(expected_in)}, got {sorted(actual_in)}"
            )
        length = len(self._queue)
        if length == 0 or self.size == 0:
            return
        expected_boundary_pos = min(self.size, length) - 1
        for position, node in enumerate(self._queue):
            if position == expected_boundary_pos:
                if node is not self._boundary:
                    raise AssertionError(
                        f"window boundary drifted: expected page "
                        f"{node.page} at position {expected_boundary_pos}, "
                        f"tracker points at "
                        f"{self._boundary.page if self._boundary else None}"
                    )
                break


class LRUQueue:
    """Doubly-linked LRU queue with O(1) operations and position windows.

    Most-recently-used pages sit at the *front*; the eviction victim is
    the *tail*.  Nodes are reachable by page number through an internal
    index, so ``touch``/``remove`` are O(1).
    """

    __slots__ = ("_head", "_tail", "_nodes", "_windows", "_next_bit")

    def __init__(self) -> None:
        self._head: LRUNode | None = None
        self._tail: LRUNode | None = None
        self._nodes: dict[int, LRUNode] = {}
        self._windows: list[PositionWindow] = []
        self._next_bit = 1

    # ------------------------------------------------------------------
    # Window management
    # ------------------------------------------------------------------
    def add_window(
        self,
        size: int,
        on_exit: Callable[[LRUNode], None] | None = None,
    ) -> PositionWindow:
        """Attach a top-``size`` position window (before first insert)."""
        if self._nodes:
            raise RuntimeError("windows must be attached to an empty queue")
        window = PositionWindow(self, size, on_exit, self._next_bit)
        self._next_bit <<= 1
        self._windows.append(window)
        return window

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, page: int) -> bool:
        return page in self._nodes

    def __iter__(self) -> Iterator[LRUNode]:
        """Iterate nodes from MRU to LRU."""
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def pages(self) -> list[int]:
        """Page numbers from MRU to LRU (test/report helper)."""
        return [node.page for node in self]

    def node(self, page: int) -> LRUNode:
        return self._nodes[page]

    def get(self, page: int) -> LRUNode | None:
        return self._nodes.get(page)

    def peek_lru(self) -> LRUNode | None:
        return self._tail

    def peek_mru(self) -> LRUNode | None:
        return self._head

    def position_of(self, page: int) -> int:
        """O(n) position lookup (0 = MRU); for tests and diagnostics."""
        for position, node in enumerate(self):
            if node.page == page:
                return position
        raise KeyError(f"page {page} not in queue")

    # ------------------------------------------------------------------
    # Linked-list plumbing
    # ------------------------------------------------------------------
    def _link_front(self, node: LRUNode) -> None:
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def _unlink(self, node: LRUNode) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = None
        node.next = None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def push_front(self, page: int) -> LRUNode:
        """Insert a new page at the MRU position."""
        if page in self._nodes:
            raise KeyError(f"page {page} already queued")
        node = LRUNode(page)
        self._nodes[page] = node
        self._link_front(node)
        length = len(self._nodes)
        for window in self._windows:
            window._after_push_front(node, length)
        return node

    def touch(self, page: int) -> LRUNode:
        """Move an existing page to the MRU position."""
        node = self._nodes[page]
        if node is self._head:
            return node
        length = len(self._nodes)
        for window in self._windows:
            window._before_unlink_for_touch(node, length)
        self._unlink(node)
        self._link_front(node)
        for window in self._windows:
            window._after_touch(length)
        return node

    def remove(self, page: int) -> LRUNode:
        """Remove a page from anywhere in the queue."""
        node = self._nodes.pop(page, None)
        if node is None:
            raise KeyError(f"page {page} not in queue")
        length = len(self._nodes) + 1
        for window in self._windows:
            window._before_remove(node, length)
        self._unlink(node)
        new_length = len(self._nodes)
        for window in self._windows:
            window._after_remove(new_length)
        node._window_mask = 0
        return node

    def pop_lru(self) -> LRUNode:
        """Remove and return the LRU (tail) page."""
        if self._tail is None:
            raise IndexError("pop from empty LRU queue")
        return self.remove(self._tail.page)

    def check(self) -> None:
        """O(n) structural self-check (tests): links, index, windows."""
        seen = 0
        node = self._head
        previous: LRUNode | None = None
        while node is not None:
            if node.prev is not previous:
                raise AssertionError("broken prev link")
            if self._nodes.get(node.page) is not node:
                raise AssertionError("index out of sync with list")
            previous = node
            node = node.next
            seen += 1
        if previous is not self._tail:
            raise AssertionError("tail pointer out of sync")
        if seen != len(self._nodes):
            raise AssertionError("length mismatch between list and index")
        for window in self._windows:
            window.check()
