"""Adaptive threshold prediction — the paper's "ongoing research" extension.

Section V observes that raytrace's optimal ``read/write`` thresholds
differ from the other workloads' and that "using adaptive threshold
prediction can further improve the efficiency of the proposed scheme".
This module implements that extension with a simple feedback controller:

* When a promoted page is later demoted, compare the latency the page
  actually saved while in DRAM (its DRAM hits times the per-access
  DRAM-vs-NVM saving) against the round-trip migration cost.
* A demotion that did not repay the round trip means the promotion was
  non-beneficial: raise the threshold that triggered it.
* A demotion that repaid it several times over means promotions are too
  timid: lower that threshold.

Thresholds move by one per decision and stay within configurable
bounds, so the controller is stable and workload phases can re-tune it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DEFAULT_CONFIG, MigrationConfig
from repro.core.migration import MigrationLRUPolicy
from repro.mmu.manager import MemoryManager


@dataclass
class _PromotionRecord:
    trigger_is_write: bool
    accesses_at_promotion: int
    writes_at_promotion: int


class AdaptiveMigrationPolicy(MigrationLRUPolicy):
    """The proposed scheme with self-tuning promotion thresholds."""

    name = "adaptive"

    def __init__(
        self,
        mm: MemoryManager,
        config: MigrationConfig = DEFAULT_CONFIG,
        min_threshold: int = 1,
        max_threshold: int = 128,
        surplus_factor: float = 4.0,
    ) -> None:
        super().__init__(mm, config)
        if min_threshold < 0 or max_threshold < min_threshold:
            raise ValueError("need 0 <= min_threshold <= max_threshold")
        if surplus_factor < 1.0:
            raise ValueError("surplus_factor must be >= 1.0")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.surplus_factor = surplus_factor
        self._records: dict[int, _PromotionRecord] = {}
        spec = mm.spec
        self._round_trip_cost = (
            spec.migration_latency_to_dram() + spec.migration_latency_to_nvm()
        )
        self._read_saving = spec.nvm.read_latency - spec.dram.read_latency
        self._write_saving = spec.nvm.write_latency - spec.dram.write_latency
        # Telemetry for reports and tests.
        self.beneficial_promotions = 0
        self.wasted_promotions = 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _on_promoted(self, page: int, trigger_is_write: bool) -> None:
        entry = self.mm.page_table.lookup(page)
        assert entry is not None
        self._records[page] = _PromotionRecord(
            trigger_is_write=trigger_is_write,
            accesses_at_promotion=entry.access_count,
            writes_at_promotion=entry.write_count,
        )

    def _on_demoted(self, page: int) -> None:
        record = self._records.pop(page, None)
        if record is None:
            # The page reached DRAM through a fault, not a promotion.
            return
        entry = self.mm.page_table.lookup(page)
        assert entry is not None
        writes = entry.write_count - record.writes_at_promotion
        reads = (
            entry.access_count - record.accesses_at_promotion
        ) - writes
        saved = reads * self._read_saving + writes * self._write_saving
        if saved < self._round_trip_cost:
            self.wasted_promotions += 1
            self._nudge(record.trigger_is_write, +1)
        elif saved >= self.surplus_factor * self._round_trip_cost:
            self.beneficial_promotions += 1
            self._nudge(record.trigger_is_write, -1)
        else:
            self.beneficial_promotions += 1

    def _nudge(self, is_write: bool, delta: int) -> None:
        if is_write:
            self.write_threshold = self._clamp(self.write_threshold + delta)
        else:
            self.read_threshold = self._clamp(self.read_threshold + delta)

    def _clamp(self, value: int) -> int:
        return max(self.min_threshold, min(self.max_threshold, value))

    # ------------------------------------------------------------------
    @property
    def promotion_efficiency(self) -> float:
        """Fraction of concluded promotions that repaid their migration."""
        concluded = self.beneficial_promotions + self.wasted_promotions
        return self.beneficial_promotions / concluded if concluded else 1.0
