"""Configuration of the proposed migration scheme (paper Section IV).

Four knobs control when an NVM-resident page is considered hot enough
to justify a migration to DRAM:

* ``read_window_fraction`` (the paper's ``readperc``) — the fraction of
  top NVM-LRU positions whose pages carry a read counter;
* ``write_window_fraction`` (``writeperc``) — likewise for writes;
* ``read_threshold`` / ``write_threshold`` — counter values above which
  the page migrates to DRAM.

The paper gives write-dominant pages *priority* for promotion because
writes cost more in NVM (Section IV).  The defaults here implement that
priority the way the migration-cost arithmetic demands: the write
window is *larger* than the read window (write counters survive longer,
as the paper states) and the write threshold is *lower* than the read
threshold (a page must earn far more reads than writes before a
migration breaks even — with Table IV devices the per-access saving of
DRAM over NVM is 300 ns / 28.8 nJ for writes but only 50 ns / 3.2 nJ
for reads).  The paper's prose sets "writethreshold higher than
readthreshold", which contradicts its own priority argument; we follow
the argument and expose both knobs so either reading is configurable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MigrationConfig:
    """Thresholds and counter-window sizes of the proposed scheme."""

    read_window_fraction: float = 0.10
    write_window_fraction: float = 0.15
    read_threshold: int = 16
    write_threshold: int = 8

    def __post_init__(self) -> None:
        for name in ("read_window_fraction", "write_window_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("read_threshold", "write_threshold"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    def read_window_pages(self, nvm_pages: int) -> int:
        """Absolute size of the read-counter window for an NVM of
        ``nvm_pages`` frames (at least one page when the fraction is
        non-zero, so tiny configurations still track something)."""
        return self._window_pages(self.read_window_fraction, nvm_pages)

    def write_window_pages(self, nvm_pages: int) -> int:
        """Absolute size of the write-counter window."""
        return self._window_pages(self.write_window_fraction, nvm_pages)

    @staticmethod
    def _window_pages(fraction: float, nvm_pages: int) -> int:
        if fraction == 0.0 or nvm_pages <= 0:
            return 0
        return max(1, round(fraction * nvm_pages))

    def housekeeping_overhead(self, page_size: int = 4096,
                              counter_bytes: int = 2) -> float:
        """Metadata overhead per page as a fraction of the page size.

        The paper estimates ~0.04 % for 4 KB pages (two small counters
        next to the two LRU pointers that exist anyway).
        """
        return 2 * counter_bytes / page_size


#: The defaults used throughout the evaluation harness.
DEFAULT_CONFIG = MigrationConfig()

#: An aggressive variant that promotes eagerly (ablation baseline): any
#: second access inside the window triggers a migration.
EAGER_CONFIG = MigrationConfig(
    read_window_fraction=1.0,
    write_window_fraction=1.0,
    read_threshold=1,
    write_threshold=1,
)

#: A conservative variant that almost never promotes.
RELUCTANT_CONFIG = MigrationConfig(
    read_window_fraction=0.1,
    write_window_fraction=0.15,
    read_threshold=32,
    write_threshold=16,
)
