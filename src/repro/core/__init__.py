"""The paper's primary contribution: the OS-level migration scheme."""

from repro.core.adaptive import AdaptiveMigrationPolicy
from repro.core.config import (
    DEFAULT_CONFIG,
    EAGER_CONFIG,
    RELUCTANT_CONFIG,
    MigrationConfig,
)
from repro.core.lru import LRUNode, LRUQueue, PositionWindow
from repro.core.migration import MigrationLRUPolicy

__all__ = [
    "AdaptiveMigrationPolicy",
    "DEFAULT_CONFIG",
    "EAGER_CONFIG",
    "LRUNode",
    "LRUQueue",
    "MigrationConfig",
    "MigrationLRUPolicy",
    "PositionWindow",
    "RELUCTANT_CONFIG",
]
