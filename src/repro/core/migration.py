"""The proposed data-migration scheme (paper Section IV, Algorithm 1).

Two *unmodified* LRU queues manage the two memory modules; the scheme
only decides when pages cross between them:

* **Page faults fill DRAM** — the newly touched page is the likeliest
  to be re-accessed, and landing it in NVM would cost an NVM page write
  anyway once DRAM's eviction cascades (Section IV).
* **DRAM evictions demote to NVM** (the demoted page enters the NVM
  queue at its head, exactly as a plain LRU insert would).
* **NVM evictions go to disk.**
* **NVM hits are served in place**, and the page additionally earns a
  read or write counter tick if it sits within the top
  ``readperc``/``writeperc`` positions of the NVM queue.  Passing
  ``read_threshold``/``write_threshold`` promotes the page to DRAM.
  Counters reset when the page slips below its window, which filters
  out both slowly-cycling cold pages and one-shot bursts (the two
  failure modes Section IV calls out).
"""

from __future__ import annotations

from repro.core.config import DEFAULT_CONFIG, MigrationConfig
from repro.core.lru import LRUNode, LRUQueue
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation
from repro.policies.base import HybridMemoryPolicy


class MigrationLRUPolicy(HybridMemoryPolicy):
    """The paper's proposed scheme: two LRUs plus windowed hot counters."""

    name = "proposed"

    def __init__(
        self,
        mm: MemoryManager,
        config: MigrationConfig = DEFAULT_CONFIG,
    ) -> None:
        super().__init__(mm)
        self.config = config
        # Thresholds live on the instance so adaptive subclasses can
        # tune them during the run (paper Section V: "adaptive threshold
        # prediction ... is part of our ongoing research").
        self.read_threshold = config.read_threshold
        self.write_threshold = config.write_threshold
        self.dram_lru = LRUQueue()
        self.nvm_lru = LRUQueue()
        nvm_pages = mm.spec.nvm_pages
        self.read_window = self.nvm_lru.add_window(
            config.read_window_pages(nvm_pages), on_exit=self._reset_read
        )
        self.write_window = self.nvm_lru.add_window(
            config.write_window_pages(nvm_pages), on_exit=self._reset_write
        )

    # ------------------------------------------------------------------
    # Counter housekeeping (the paper's "additional information")
    # ------------------------------------------------------------------
    @staticmethod
    def _reset_read(node: LRUNode) -> None:
        node.read_counter = 0

    @staticmethod
    def _reset_write(node: LRUNode) -> None:
        node.write_counter = 0

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if page in self.dram_lru:
            # Plain LRU housekeeping; DRAM needs no extra information.
            self.dram_lru.touch(page)
            self.mm.serve_hit(page, is_write)
        elif page in self.nvm_lru:
            self._nvm_hit(page, is_write)
        else:
            self._page_fault(page, is_write)

    def _nvm_hit(self, page: int, is_write: bool) -> None:
        node = self.nvm_lru.node(page)
        window = self.write_window if is_write else self.read_window
        was_inside = window.contains(node)
        # Plain LRU housekeeping.  Moving the page to the front pushes
        # the pages at the window boundaries one position deeper, which
        # fires the counter resets of Algorithm 1 lines 8-9.
        self.nvm_lru.touch(page)
        self.mm.serve_hit(page, is_write)
        # Algorithm 1 lines 10-22: tick the counter for the request's
        # direction, restarting it if the page was outside the window.
        if is_write:
            node.write_counter = node.write_counter + 1 if was_inside else 1
            counter = node.write_counter
            threshold = self.write_threshold
        else:
            node.read_counter = node.read_counter + 1 if was_inside else 1
            counter = node.read_counter
            threshold = self.read_threshold
        # Algorithm 1 lines 23-25: promote once the page proves hot.
        if counter > threshold:
            self._promote(page, trigger_is_write=is_write)

    def _promote(self, page: int, trigger_is_write: bool) -> None:
        """Migrate a hot NVM page to DRAM, demoting DRAM's LRU victim."""
        self.nvm_lru.remove(page)
        if self.mm.has_free(PageLocation.DRAM):
            self.mm.migrate(page, PageLocation.DRAM)
        else:
            victim = self.dram_lru.pop_lru()
            self.mm.swap(page, victim.page)
            self.nvm_lru.push_front(victim.page)
            self._on_demoted(victim.page)
        self.dram_lru.push_front(page)
        self._on_promoted(page, trigger_is_write)

    def _page_fault(self, page: int, is_write: bool) -> None:
        """Algorithm 1 lines 27-28: fill from disk into DRAM."""
        if not self.mm.has_free(PageLocation.DRAM):
            self._demote_dram_victim()
        self.mm.fault_fill(page, PageLocation.DRAM, is_write)
        self.dram_lru.push_front(page)

    def _demote_dram_victim(self) -> None:
        """Demote DRAM's LRU page to NVM, evicting NVM's LRU if needed."""
        if not self.mm.has_free(PageLocation.NVM):
            nvm_victim = self.nvm_lru.pop_lru()
            self.mm.evict_to_disk(nvm_victim.page)
        victim = self.dram_lru.pop_lru()
        self.mm.migrate(victim.page, PageLocation.NVM)
        self.nvm_lru.push_front(victim.page)
        self._on_demoted(victim.page)

    # ------------------------------------------------------------------
    # Hooks for adaptive subclasses
    # ------------------------------------------------------------------
    def _on_promoted(self, page: int, trigger_is_write: bool) -> None:
        """Called after a page migrates NVM -> DRAM."""

    def _on_demoted(self, page: int) -> None:
        """Called after a page migrates DRAM -> NVM."""

    # ------------------------------------------------------------------
    def validate(self) -> None:
        super().validate()
        self.dram_lru.check()
        self.nvm_lru.check()
        dram_pages = set(self.mm.page_table.pages_in(PageLocation.DRAM))
        nvm_pages = set(self.mm.page_table.pages_in(PageLocation.NVM))
        if dram_pages != set(self.dram_lru.pages()):
            raise AssertionError("DRAM queue out of sync with page table")
        if nvm_pages != set(self.nvm_lru.pages()):
            raise AssertionError("NVM queue out of sync with page table")
