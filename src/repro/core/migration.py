"""The proposed data-migration scheme (paper Section IV, Algorithm 1).

Two *unmodified* LRU queues manage the two memory modules; the scheme
only decides when pages cross between them:

* **Page faults fill DRAM** — the newly touched page is the likeliest
  to be re-accessed, and landing it in NVM would cost an NVM page write
  anyway once DRAM's eviction cascades (Section IV).
* **DRAM evictions demote to NVM** (the demoted page enters the NVM
  queue at its head, exactly as a plain LRU insert would).
* **NVM evictions go to disk.**
* **NVM hits are served in place**, and the page additionally earns a
  read or write counter tick if it sits within the top
  ``readperc``/``writeperc`` positions of the NVM queue.  Passing
  ``read_threshold``/``write_threshold`` promotes the page to DRAM.
  Counters reset when the page slips below its window, which filters
  out both slowly-cycling cold pages and one-shot bursts (the two
  failure modes Section IV calls out).
"""

from __future__ import annotations

from repro.core.config import DEFAULT_CONFIG, MigrationConfig
from repro.core.lru import LRUNode, LRUQueue
from repro.mmu.dma import channel as _dma_channel
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation, PageTableEntry
from repro.obs.events import EvictionEvent, MigrationEvent, PageFaultEvent
from repro.policies.base import HybridMemoryPolicy


class MigrationLRUPolicy(HybridMemoryPolicy):
    """The paper's proposed scheme: two LRUs plus windowed hot counters."""

    name = "proposed"

    def __init__(
        self,
        mm: MemoryManager,
        config: MigrationConfig = DEFAULT_CONFIG,
    ) -> None:
        super().__init__(mm)
        self.config = config
        # Thresholds live on the instance so adaptive subclasses can
        # tune them during the run (paper Section V: "adaptive threshold
        # prediction ... is part of our ongoing research").
        self.read_threshold = config.read_threshold
        self.write_threshold = config.write_threshold
        self.dram_lru = LRUQueue()
        self.nvm_lru = LRUQueue()
        nvm_pages = mm.spec.nvm_pages
        self.read_window = self.nvm_lru.add_window(
            config.read_window_pages(nvm_pages), on_exit=self._reset_read
        )
        self.write_window = self.nvm_lru.add_window(
            config.write_window_pages(nvm_pages), on_exit=self._reset_write
        )

    # ------------------------------------------------------------------
    # Counter housekeeping (the paper's "additional information")
    # ------------------------------------------------------------------
    @staticmethod
    def _reset_read(node: LRUNode) -> None:
        node.read_counter = 0

    @staticmethod
    def _reset_write(node: LRUNode) -> None:
        node.write_counter = 0

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def access(self, page: int, is_write: bool) -> None:
        self.mm.record_request(is_write)
        if page in self.dram_lru:
            # Plain LRU housekeeping; DRAM needs no extra information.
            self.dram_lru.touch(page)
            self.mm.serve_hit(page, is_write)
        elif page in self.nvm_lru:
            self._nvm_hit(page, is_write)
        else:
            self._page_fault(page, is_write)

    def access_batch(self, pages: list[int], writes: list[bool]) -> None:
        """Batched kernel: Algorithm 1 with the hot paths fully inlined.

        Semantically identical to looping over :meth:`access` — the
        golden-equivalence tests assert bit-identical ``RunResult``s —
        but the frequent paths run without per-request Python calls:

        * **DRAM hit**: LRU move-to-front is inlined (the DRAM queue
          carries no position windows), and the manager's
          ``record_request`` + ``serve_hit`` accounting is applied
          directly (lint rule R012 verifies each path still records
          the request exactly once; the sanitizer checks at runtime).
        * **NVM hit**: the queue touch *including* the two position
          windows' boundary bookkeeping (:class:`PositionWindow`) is
          inlined, as are the windowed read/write counter ticks of
          Algorithm 1 lines 10-22.
        * **Page fault**: the steady-state cascade — evict NVM's LRU
          to disk, demote DRAM's LRU into NVM, fill the faulting page
          into DRAM (Algorithm 1 lines 27-28) — is inlined end to end,
          including frame allocation and the window bookkeeping of the
          NVM insert.  Cold-state corners (queues still filling,
          victims inside a window) fall back to the manager methods.

        Event counters that commute (request/hit/fault/eviction
        accounting, wear totals, DMA transfer counts) accumulate in
        locals and flush once per batch in a ``finally`` block, so the
        totals are exact even if a request raises mid-batch.  Per-page
        state (page-table entries, LRU nodes, the wear histogram) is
        updated in place, exactly as the per-request path would.

        When an event bus is attached the kernel keeps its clock in
        step: before any call-out that can tick the clock or emit
        (manager fallbacks, :meth:`_promote`) the deferred request
        counts are folded into ``bus.clock`` (tracked by ``synced``),
        the inlined fault cascade appends its eviction/demotion/fault
        events directly with explicitly computed indexes, and the
        ``finally`` block folds the remainder — so the event stream is
        byte-identical to the per-request path's.

        Promotions keep going through :meth:`_promote` — they are rare
        and carry multi-step bookkeeping — and the subclass hooks
        ``_on_promoted``/``_on_demoted`` are always honoured.  Hooks
        may retune ``read_threshold``/``write_threshold`` (the adaptive
        policy does): the kernel reloads both after every call that can
        reach a hook.  Hooks must not mutate the queues, windows or
        manager structures themselves; no shipped subclass does.

        The kernel only runs when the concrete class left the
        per-request machinery untouched; subclasses overriding
        ``access`` or ``_nvm_hit`` (or attaching extra windows) fall
        back to the generic per-request loop, so behavioural overrides
        are never bypassed.
        """
        cls = type(self)
        dram = self.dram_lru
        if (
            cls.access is not MigrationLRUPolicy.access
            or cls._nvm_hit is not MigrationLRUPolicy._nvm_hit
            or dram._windows
        ):
            super().access_batch(pages, writes)
            return

        mm = self.mm
        record_request = mm.record_request
        serve_hit = mm.serve_hit
        accounting = mm.accounting
        wear = mm.wear
        page_factor = wear.page_factor
        page_writes = wear.page_writes
        entries = mm.page_table._entries
        dram_nodes = dram._nodes
        dram_nodes_get = dram_nodes.get
        nvm = self.nvm_lru
        nvm_nodes = nvm._nodes
        nvm_nodes_get = nvm_nodes.get
        nvm_touch = nvm.touch
        rwin = self.read_window
        wwin = self.write_window
        dram_alloc = mm.dram
        nvm_alloc = mm.nvm
        dram_allocated = dram_alloc._allocated
        dram_freelist = dram_alloc._free
        dram_capacity = dram_alloc.capacity
        nvm_allocated = nvm_alloc._allocated
        nvm_freelist = nvm_alloc._free
        nvm_capacity = nvm_alloc.capacity
        transfers = mm.dma.transfers
        nvm_disk_channel = _dma_channel(PageLocation.NVM, PageLocation.DISK)
        dram_nvm_channel = _dma_channel(PageLocation.DRAM, PageLocation.NVM)
        disk_dram_channel = _dma_channel(PageLocation.DISK, PageLocation.DRAM)
        # Window bookkeeping may only be inlined when the queue carries
        # exactly the scheme's two windows with the stock counter-reset
        # callbacks; anything else routes through LRUQueue.touch.  The
        # fault cascade additionally needs both modules non-degenerate
        # (a zero-capacity module makes the original path raise from
        # pop_lru/allocate; the fallback reproduces that exactly).
        fast_windows = (
            nvm._windows == [rwin, wwin]
            and rwin.on_exit == MigrationLRUPolicy._reset_read
            and wwin.on_exit == MigrationLRUPolicy._reset_write
        )
        fast_faults = fast_windows and dram_capacity > 0 and nvm_capacity > 0
        rbit = rwin._bit
        wbit = wwin._bit
        rsize = rwin.size
        wsize = wwin.size
        promote = self._promote
        page_fault = self._page_fault
        on_demoted = (
            None
            if cls._on_demoted is MigrationLRUPolicy._on_demoted
            else self._on_demoted
        )
        read_threshold = self.read_threshold
        write_threshold = self.write_threshold
        dram_location = PageLocation.DRAM
        nvm_location = PageLocation.NVM
        make_node = LRUNode
        make_entry = PageTableEntry
        bus = mm.events
        # Requests already folded into the bus clock; the deferred
        # request counters minus this are the kernel's clock debt.
        synced = 0

        # Deferred (commutative) event counters, flushed after the loop.
        read_requests = 0
        write_requests = 0
        dram_read_hits = 0
        dram_write_hits = 0
        nvm_read_hits = 0
        nvm_write_hits = 0
        read_faults = 0
        write_faults = 0
        faults_filled_dram = 0
        clean_evictions = 0
        dirty_evictions = 0
        migrations_to_nvm = 0
        request_writes = 0
        migration_writes = 0
        moved_nvm_disk = 0
        moved_dram_nvm = 0
        moved_disk_dram = 0

        try:
            for page, is_write in zip(pages, writes):
                node = dram_nodes_get(page)
                if node is not None:
                    # --- DRAM hit: inline LRUQueue.touch (no windows) ---
                    if node is not dram._head:
                        prev = node.prev
                        nxt = node.next
                        if prev is not None:
                            prev.next = nxt
                        else:
                            dram._head = nxt
                        if nxt is not None:
                            nxt.prev = prev
                        else:
                            dram._tail = prev
                        node.prev = None
                        head = dram._head
                        node.next = head
                        if head is not None:
                            head.prev = node
                        dram._head = node
                        if dram._tail is None:
                            dram._tail = node
                    # --- inline record_request + serve_hit, DRAM branch ---
                    entry = node.payload
                    if entry is None:
                        node.payload = entry = entries[page]
                    if (
                        entry.location is dram_location
                        or entry.copy_frame is not None
                    ):
                        if is_write:
                            write_requests += 1
                            dram_write_hits += 1
                            if entry.copy_frame is not None:
                                entry.copy_dirty = True
                            entry.write_count += 1
                            entry.dirty = True
                        else:
                            read_requests += 1
                            dram_read_hits += 1
                        entry.referenced = True
                        entry.access_count += 1
                    else:
                        if bus is not None:
                            bus.clock += read_requests + write_requests - synced
                            synced = read_requests + write_requests
                        record_request(is_write)
                        serve_hit(page, is_write)
                    continue
                node = nvm_nodes_get(page)
                if node is None:
                    # --- page fault: the Algorithm 1 lines 27-28 cascade ---
                    if not fast_faults:
                        if bus is not None:
                            bus.clock += read_requests + write_requests - synced
                            synced = read_requests + write_requests
                        record_request(is_write)
                        page_fault(page, is_write)
                        read_threshold = self.read_threshold
                        write_threshold = self.write_threshold
                        continue
                    if len(dram_allocated) >= dram_capacity:
                        # _demote_dram_victim: push DRAM's LRU into NVM.
                        if len(nvm_allocated) >= nvm_capacity:
                            # NVM full too: evict its LRU page to disk.
                            tail = nvm._tail
                            tail_page = tail.page
                            if tail._window_mask:
                                # Tail inside a window (queue shorter
                                # than a window size): generic removal.
                                nvm.remove(tail_page)
                            else:
                                # Outside both windows: removal cannot
                                # move a boundary (the new tail *is*
                                # the old boundary when they collide).
                                del nvm_nodes[tail_page]
                                prev = tail.prev
                                if prev is not None:
                                    prev.next = None
                                else:
                                    nvm._head = None
                                nvm._tail = prev
                                tail.prev = None
                            # mm.evict_to_disk(tail_page), inlined.
                            eentry = entries[tail_page]
                            if eentry.copy_frame is not None:
                                raise ValueError(
                                    f"page {tail_page} still has a DRAM "
                                    "copy; drop it first"
                                )
                            del entries[tail_page]
                            nvm_allocated.remove(eentry.frame)
                            nvm_freelist.append(eentry.frame)
                            moved_nvm_disk += 1
                            if eentry.dirty:
                                dirty_evictions += 1
                            else:
                                clean_evictions += 1
                            if bus is not None:
                                # The faulting request is not in the
                                # deferred counters yet; +1 puts the
                                # event on the per-request clock.
                                bus._pending.append(EvictionEvent(
                                    index=(bus.clock + read_requests
                                           + write_requests - synced + 1),
                                    page=tail_page,
                                    from_dram=False,
                                    dirty=eentry.dirty,
                                    access_count=eentry.access_count,
                                    write_count=eentry.write_count,
                                ))
                        # dram_lru.pop_lru(), inlined (no windows).
                        dtail = dram._tail
                        victim_page = dtail.page
                        del dram_nodes[victim_page]
                        prev = dtail.prev
                        if prev is not None:
                            prev.next = None
                        else:
                            dram._head = None
                        dram._tail = prev
                        dtail.prev = None
                        # mm.migrate(victim_page, NVM), inlined.  The
                        # victim came off the DRAM queue, so its entry
                        # is DRAM-resident and (for this policy) never
                        # carries a copy; a frame is free because we
                        # either evicted above or NVM had room.
                        mentry = entries[victim_page]
                        if nvm_freelist:
                            frame = nvm_freelist.pop()
                        else:
                            frame = nvm_alloc._next_fresh
                            nvm_alloc._next_fresh = frame + 1
                        nvm_allocated.add(frame)
                        dram_allocated.remove(mentry.frame)
                        dram_freelist.append(mentry.frame)
                        mentry.location = nvm_location
                        mentry.frame = frame
                        moved_dram_nvm += 1
                        migrations_to_nvm += 1
                        # wear.record_migration_in(victim_page), inlined.
                        migration_writes += page_factor
                        page_writes[victim_page] = (
                            page_writes.get(victim_page, 0) + page_factor
                        )
                        if bus is not None:
                            bus._pending.append(MigrationEvent(
                                index=(bus.clock + read_requests
                                       + write_requests - synced + 1),
                                page=victim_page,
                                to_dram=False,
                                access_count=mentry.access_count,
                                write_count=mentry.write_count,
                            ))
                        # nvm_lru.push_front(victim_page), inlined with
                        # both windows' _after_push_front.
                        vnode = make_node(victim_page)
                        vnode.payload = mentry
                        nvm_nodes[victim_page] = vnode
                        head = nvm._head
                        vnode.next = head
                        if head is not None:
                            head.prev = vnode
                        nvm._head = vnode
                        if nvm._tail is None:
                            nvm._tail = vnode
                        new_length = len(nvm_nodes)
                        if rsize:
                            vnode._window_mask |= rbit
                            if new_length <= rsize:
                                rwin._boundary = nvm._tail
                            else:
                                old = rwin._boundary
                                rwin._boundary = old.prev
                                old._window_mask &= ~rbit
                                old.read_counter = 0
                        if wsize:
                            vnode._window_mask |= wbit
                            if new_length <= wsize:
                                wwin._boundary = nvm._tail
                            else:
                                old = wwin._boundary
                                wwin._boundary = old.prev
                                old._window_mask &= ~wbit
                                old.write_counter = 0
                        if on_demoted is not None:
                            on_demoted(victim_page)
                            read_threshold = self.read_threshold
                            write_threshold = self.write_threshold
                    # mm.fault_fill(page, DRAM, is_write), inlined.
                    if page in entries:
                        raise KeyError(f"page {page} is already resident")
                    if dram_freelist:
                        frame = dram_freelist.pop()
                    else:
                        frame = dram_alloc._next_fresh
                        dram_alloc._next_fresh = frame + 1
                    dram_allocated.add(frame)
                    entries[page] = entry = make_entry(
                        page=page,
                        location=dram_location,
                        frame=frame,
                        dirty=is_write,
                        referenced=True,
                        access_count=1,
                        write_count=1 if is_write else 0,
                    )
                    moved_disk_dram += 1
                    if is_write:
                        write_requests += 1
                        write_faults += 1
                    else:
                        read_requests += 1
                        read_faults += 1
                    faults_filled_dram += 1
                    if bus is not None:
                        # The faulting request just entered the deferred
                        # counters, so the in-flight index needs no +1.
                        bus._pending.append(PageFaultEvent(
                            index=(bus.clock + read_requests
                                   + write_requests - synced),
                            page=page,
                            to_dram=True,
                            is_write=is_write,
                        ))
                    # dram_lru.push_front(page), inlined (no windows).
                    fnode = make_node(page)
                    fnode.payload = entry
                    dram_nodes[page] = fnode
                    head = dram._head
                    fnode.next = head
                    if head is not None:
                        head.prev = fnode
                    dram._head = fnode
                    if dram._tail is None:
                        dram._tail = fnode
                    continue
                # --- NVM hit: _nvm_hit with touch + windows inlined ---
                mask = node._window_mask
                was_inside = mask & (wbit if is_write else rbit)
                if not fast_windows:
                    nvm_touch(page)
                elif node is not nvm._head:
                    length = len(nvm_nodes)
                    # PositionWindow._before_unlink_for_touch, read window.
                    if rsize and length > rsize:
                        if mask & rbit:
                            if node is rwin._boundary:
                                rwin._boundary = node.prev
                        else:
                            old = rwin._boundary
                            node._window_mask |= rbit
                            rwin._boundary = old.prev if rsize > 1 else node
                            old._window_mask &= ~rbit
                            old.read_counter = 0
                    # Same for the write window (the read window's pass may
                    # have changed the node's mask, so re-read it).
                    mask = node._window_mask
                    if wsize and length > wsize:
                        if mask & wbit:
                            if node is wwin._boundary:
                                wwin._boundary = node.prev
                        else:
                            old = wwin._boundary
                            node._window_mask |= wbit
                            wwin._boundary = old.prev if wsize > 1 else node
                            old._window_mask &= ~wbit
                            old.write_counter = 0
                    # LRUQueue._unlink + _link_front.
                    prev = node.prev
                    nxt = node.next
                    if prev is not None:
                        prev.next = nxt
                    else:
                        nvm._head = nxt
                    if nxt is not None:
                        nxt.prev = prev
                    else:
                        nvm._tail = prev
                    node.prev = None
                    head = nvm._head
                    node.next = head
                    if head is not None:
                        head.prev = node
                    nvm._head = node
                    if nvm._tail is None:
                        nvm._tail = node
                    # PositionWindow._after_touch: while the queue is still
                    # shorter than a window, its boundary is the tail.
                    if rsize and length <= rsize:
                        rwin._boundary = nvm._tail
                    if wsize and length <= wsize:
                        wwin._boundary = nvm._tail
                # --- inline record_request + serve_hit, NVM branch ---
                entry = node.payload
                if entry is None:
                    node.payload = entry = entries[page]
                if entry.location is dram_location or entry.copy_frame is not None:
                    if bus is not None:
                        bus.clock += read_requests + write_requests - synced
                        synced = read_requests + write_requests
                    record_request(is_write)
                    serve_hit(page, is_write)
                elif is_write:
                    write_requests += 1
                    nvm_write_hits += 1
                    request_writes += 1
                    page_writes[page] = page_writes.get(page, 0) + 1
                    entry.write_count += 1
                    entry.dirty = True
                    entry.referenced = True
                    entry.access_count += 1
                else:
                    read_requests += 1
                    nvm_read_hits += 1
                    entry.referenced = True
                    entry.access_count += 1
                # Algorithm 1 lines 10-25: windowed counter tick + promote.
                if is_write:
                    counter = node.write_counter = (
                        node.write_counter + 1 if was_inside else 1
                    )
                    if counter > write_threshold:
                        if bus is not None:
                            bus.clock += (
                                read_requests + write_requests - synced
                            )
                            synced = read_requests + write_requests
                        promote(page, trigger_is_write=True)
                        read_threshold = self.read_threshold
                        write_threshold = self.write_threshold
                else:
                    counter = node.read_counter = (
                        node.read_counter + 1 if was_inside else 1
                    )
                    if counter > read_threshold:
                        if bus is not None:
                            bus.clock += (
                                read_requests + write_requests - synced
                            )
                            synced = read_requests + write_requests
                        promote(page, trigger_is_write=False)
                        read_threshold = self.read_threshold
                        write_threshold = self.write_threshold
        finally:
            if bus is not None:
                bus.clock += read_requests + write_requests - synced
            accounting.read_requests += read_requests
            accounting.write_requests += write_requests
            accounting.dram_read_hits += dram_read_hits
            accounting.dram_write_hits += dram_write_hits
            accounting.nvm_read_hits += nvm_read_hits
            accounting.nvm_write_hits += nvm_write_hits
            accounting.read_faults += read_faults
            accounting.write_faults += write_faults
            accounting.faults_filled_dram += faults_filled_dram
            accounting.clean_evictions += clean_evictions
            accounting.dirty_evictions += dirty_evictions
            accounting.migrations_to_nvm += migrations_to_nvm
            wear.request_writes += request_writes
            wear.migration_writes += migration_writes
            # A channel key only exists once a transfer used it, so a
            # zero count must not create one (the transfer log would
            # differ from the per-request path's).
            if moved_nvm_disk:
                transfers[nvm_disk_channel] = (
                    transfers.get(nvm_disk_channel, 0) + moved_nvm_disk
                )
            if moved_dram_nvm:
                transfers[dram_nvm_channel] = (
                    transfers.get(dram_nvm_channel, 0) + moved_dram_nvm
                )
            if moved_disk_dram:
                transfers[disk_dram_channel] = (
                    transfers.get(disk_dram_channel, 0) + moved_disk_dram
                )

    def _nvm_hit(self, page: int, is_write: bool) -> None:
        node = self.nvm_lru.node(page)
        window = self.write_window if is_write else self.read_window
        was_inside = window.contains(node)
        # Plain LRU housekeeping.  Moving the page to the front pushes
        # the pages at the window boundaries one position deeper, which
        # fires the counter resets of Algorithm 1 lines 8-9.
        self.nvm_lru.touch(page)
        self.mm.serve_hit(page, is_write)
        # Algorithm 1 lines 10-22: tick the counter for the request's
        # direction, restarting it if the page was outside the window.
        if is_write:
            node.write_counter = node.write_counter + 1 if was_inside else 1
            counter = node.write_counter
            threshold = self.write_threshold
        else:
            node.read_counter = node.read_counter + 1 if was_inside else 1
            counter = node.read_counter
            threshold = self.read_threshold
        # Algorithm 1 lines 23-25: promote once the page proves hot.
        if counter > threshold:
            self._promote(page, trigger_is_write=is_write)

    def _promote(self, page: int, trigger_is_write: bool) -> None:
        """Migrate a hot NVM page to DRAM, demoting DRAM's LRU victim."""
        events = self.mm.events
        if events is not None:
            # Stage the trigger context (which counter crossed which
            # threshold) before the node leaves the queue; the
            # migration emitted below picks it up.
            node = self.nvm_lru.node(page)
            if trigger_is_write:
                events.annotate(
                    "write", node.write_counter, self.write_threshold
                )
            else:
                events.annotate(
                    "read", node.read_counter, self.read_threshold
                )
        self.nvm_lru.remove(page)
        if self.mm.has_free(PageLocation.DRAM):
            self.mm.migrate(page, PageLocation.DRAM)
        else:
            victim = self.dram_lru.pop_lru()
            self.mm.swap(page, victim.page)
            self.nvm_lru.push_front(victim.page)
            self._on_demoted(victim.page)
        self.dram_lru.push_front(page)
        self._on_promoted(page, trigger_is_write)

    def _page_fault(self, page: int, is_write: bool) -> None:
        """Algorithm 1 lines 27-28: fill from disk into DRAM."""
        if not self.mm.has_free(PageLocation.DRAM):
            self._demote_dram_victim()
        self.mm.fault_fill(page, PageLocation.DRAM, is_write)
        self.dram_lru.push_front(page)

    def _demote_dram_victim(self) -> None:
        """Demote DRAM's LRU page to NVM, evicting NVM's LRU if needed."""
        if not self.mm.has_free(PageLocation.NVM):
            nvm_victim = self.nvm_lru.pop_lru()
            self.mm.evict_to_disk(nvm_victim.page)
        victim = self.dram_lru.pop_lru()
        self.mm.migrate(victim.page, PageLocation.NVM)
        self.nvm_lru.push_front(victim.page)
        self._on_demoted(victim.page)

    # ------------------------------------------------------------------
    # Hooks for adaptive subclasses
    # ------------------------------------------------------------------
    def _on_promoted(self, page: int, trigger_is_write: bool) -> None:
        """Called after a page migrates NVM -> DRAM."""

    def _on_demoted(self, page: int) -> None:
        """Called after a page migrates DRAM -> NVM."""

    # ------------------------------------------------------------------
    def validate(self) -> None:  # repro: cold
        super().validate()
        self.dram_lru.check()
        self.nvm_lru.check()
        dram_pages = set(self.mm.page_table.pages_in(PageLocation.DRAM))
        nvm_pages = set(self.mm.page_table.pages_in(PageLocation.NVM))
        if dram_pages != set(self.dram_lru.pages()):
            raise AssertionError("DRAM queue out of sync with page table")
        if nvm_pages != set(self.nvm_lru.pages()):
            raise AssertionError("NVM queue out of sync with page table")
