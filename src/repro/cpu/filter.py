"""Filter CPU traces through the cache hierarchy into memory traces.

This is the COTSon role in the paper's pipeline: "since the multi-level
caches in CPU affect the distribution of accesses dispatched to the
main memory ... we used COTSon which is able to simulate a multi-core
system with many cache levels" (Section I).  The hierarchy absorbs hot
lines, delays writes into eviction-time write-backs and hands the
policies a post-LLC access stream.

Two implementations produce *bit-identical* results:

* :func:`filter_trace` with ``vectorized=True`` (the default) runs
  :func:`filter_trace_vectorized` — address-to-line and line-to-set
  decomposition happens once, up front, as whole-array numpy ops, and
  the state-dependent cache walk runs in a fused kernel over plain
  dicts with all per-access method dispatch inlined.
* ``vectorized=False`` replays through
  :meth:`repro.cpu.hierarchy.CacheHierarchy.access` one CPU request at
  a time — the reference path the equivalence tests compare against
  (:class:`repro.cpu.cache.SetAssociativeCache` stays the readable
  specification of the cache behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.cpu.hierarchy import CacheHierarchy, cotson_hierarchy
from repro.trace.record import PAGE_SIZE
from repro.trace.trace import CPUTrace, Trace

_MISSING = object()


def filter_trace(
    cpu_trace: CPUTrace,
    hierarchy: CacheHierarchy | None = None,
    page_size: int = PAGE_SIZE,
    flush_at_end: bool = False,
    name: str | None = None,
    vectorized: bool = True,
) -> Trace:
    """Run a CPU trace through the hierarchy; return the memory trace.

    Parameters
    ----------
    cpu_trace:
        Byte-addressed per-core accesses.
    hierarchy:
        The cache configuration; Table II's quad-core setup by default.
    page_size:
        Page granularity of the produced memory trace.
    flush_at_end:
        Also emit the final dirty-line drain (off by default: the paper
        measures the region of interest, not teardown).
    name:
        Name for the filtered trace; defaults to ``<cpu name>-filtered``.
    vectorized:
        Use the batched kernel (default).  ``False`` replays through
        ``hierarchy.access`` per request; results are bit-identical
        either way (asserted by the equivalence tests).
    """
    hierarchy = hierarchy or cotson_hierarchy()
    if vectorized:
        return filter_trace_vectorized(
            cpu_trace, hierarchy, page_size, flush_at_end, name
        )
    lines_per_page = page_size // hierarchy.line_size
    pages: list[int] = []
    writes: list[bool] = []
    access = hierarchy.access
    for address, is_write, core in cpu_trace.iter_tuples():
        for line, line_is_write in access(address, is_write, core):
            pages.append(line // lines_per_page)
            writes.append(line_is_write)
    if flush_at_end:
        for line, line_is_write in hierarchy.flush():
            pages.append(line // lines_per_page)
            writes.append(line_is_write)
    return Trace(
        pages,
        writes,
        name=name or f"{cpu_trace.name}-filtered",
        page_size=page_size,
    )


def filter_trace_vectorized(
    cpu_trace: CPUTrace,
    hierarchy: CacheHierarchy | None = None,
    page_size: int = PAGE_SIZE,
    flush_at_end: bool = False,
    name: str | None = None,
) -> Trace:
    """Batched :func:`filter_trace`: numpy decomposition + fused kernel.

    The address arithmetic that is independent of cache state — byte
    address to line number, line to L1 set index, line to LLC set index
    — runs once as three whole-array numpy expressions.  The remaining
    walk is inherently sequential (every access depends on the state
    the previous one left), so it runs in a single Python loop with the
    whole ``CacheHierarchy.access`` call tree inlined:

    * Each ``SetAssociativeCache`` set is worked on as a plain insertion
      -ordered dict (tag -> dirty); ``pop`` + reinsert is the LRU touch
      and ``next(iter(d))`` is the LRU victim — the exact semantics of
      the reference ``OrderedDict`` implementation.  All L1 sets live in
      one flat list indexed by a precomputed ``core * sets + set_index``
      array, so the hot hit path is a single list subscript.
    * The coherence directory is worked on as a line -> holder-bitmask
      dict (bit *c* set = core *c* holds the line); the common
      single-holder write needs one ``int`` mask test instead of set
      iteration.  Insertions and deletions mirror the reference
      directory exactly, so rebuilding the ``line -> set`` form at the
      end reproduces even its key order.
    * All stats counters accumulate in locals.

    On completion (or mid-run error) the working dicts are written back
    into the hierarchy's ``OrderedDict`` sets and the counters flushed
    into its stats objects, so the hierarchy object ends bit-identical
    to a per-request replay — including a subsequent ``flush()`` for
    ``flush_at_end``.  Instruction fetches are not modelled here
    because :func:`filter_trace` never issues them.

    One visible difference on *invalid input only*: out-of-range core
    ids are rejected up front for the whole trace, where the reference
    path raises at the offending request mid-run.
    """
    hierarchy = hierarchy or cotson_hierarchy()
    line_size = hierarchy.line_size
    lines_per_page = page_size // line_size
    l1_sets_count = hierarchy.l1d[0].geometry.sets
    l1_assoc = hierarchy.l1d[0].geometry.associativity
    llc_sets_count = hierarchy.llc.geometry.sets
    llc_assoc = hierarchy.llc.geometry.associativity
    cores = hierarchy.cores

    core_arr = cpu_trace._cores
    if core_arr.size and (core_arr.min() < 0 or core_arr.max() >= cores):
        bad = int(
            core_arr[(core_arr < 0) | (core_arr >= cores)][0]
        )
        raise ValueError(f"core {bad} out of range")
    # One-shot decomposition: line numbers and flattened L1 set indices
    # (``core * sets + line % sets``) for the whole trace, in a few
    # whole-array ops.  LLC set indices are only needed on the rarer
    # miss/writeback paths, so those stay as a per-event ``%``.
    line_arr = cpu_trace._addresses // line_size
    line_list = line_arr.tolist()
    core64 = core_arr.astype(np.int64)
    fidx_list = (
        core64 * l1_sets_count + line_arr % l1_sets_count
    ).tolist()
    write_list = cpu_trace._is_write.tolist()
    cbit_list = np.left_shift(1, core64).tolist()
    core_counts = np.bincount(core_arr, minlength=cores).tolist()

    # Working state: plain-dict copies of every set (plain dicts keep
    # insertion order, which is all the LRU bookkeeping needs) — the L1
    # sets in one flat list aligned with ``fidx_list`` — the coherence
    # directory as holder bitmasks, and local stats counters.
    l1_flat: list[dict[int, bool]] = [
        dict(s) for l1 in hierarchy.l1d for s in l1.sets_snapshot()
    ]
    llc_state: list[dict[int, bool]] = [
        dict(s) for s in hierarchy.llc.sets_snapshot()
    ]
    dir_mask: dict[int, int] = {}
    for dline, holder_set in hierarchy._directory.holders.items():
        mask = 0
        for holder in holder_set:
            mask |= 1 << holder
        dir_mask[dline] = mask
    dir_mask_get = dir_mask.get

    # Per-core hits are derived at flush time as accesses - misses
    # (every access is exactly one of the two), so the hit fast path
    # does not touch a counter at all.
    l1_misses = [0] * cores
    l1_writebacks = [0] * cores
    l1_invalidations = [0] * cores
    llc_hits = 0
    llc_misses = 0
    llc_writebacks = 0
    h_llc_hits = 0
    memory_reads = 0
    memory_writes = 0
    coherence_invalidations = 0

    pages: list[int] = []
    writes: list[bool] = []
    pages_append = pages.append
    writes_append = writes.append
    missing = _MISSING

    try:
        for line, is_write, cbit, fidx in zip(
            line_list, write_list, cbit_list, fidx_list
        ):
            if is_write:
                # _invalidate_remote: kill other cores' copies.
                mask = dir_mask_get(line)
                if mask is not None:
                    others = mask & ~cbit
                    if others:
                        idx = fidx % l1_sets_count
                        while others:
                            low = others & -others
                            others ^= low
                            other = low.bit_length() - 1
                            oset = l1_flat[other * l1_sets_count + idx]
                            dirty = oset.pop(line, missing)
                            coherence_invalidations += 1
                            if dirty is not missing:
                                l1_invalidations[other] += 1
                                if dirty:
                                    # _write_back_to_llc(line)
                                    ls = llc_state[line % llc_sets_count]
                                    tag_dirty = ls.pop(line, missing)
                                    if tag_dirty is not missing:
                                        llc_hits += 1
                                        ls[line] = True
                                    else:
                                        llc_misses += 1
                                        if len(ls) >= llc_assoc:
                                            victim = next(iter(ls))
                                            if ls.pop(victim):
                                                llc_writebacks += 1
                                                memory_writes += 1
                                                pages_append(
                                                    victim // lines_per_page
                                                )
                                                writes_append(True)
                                        ls[line] = True
                        mask &= cbit
                        if mask:
                            dir_mask[line] = mask
                        else:
                            del dir_mask[line]
            # l1.access(line, is_write)
            s = l1_flat[fidx]
            dirty = s.pop(line, missing)
            if dirty is not missing:
                # L1 hit: refresh LRU position, accumulate dirt.
                s[line] = dirty or is_write
                continue
            core = fidx // l1_sets_count
            l1_misses[core] += 1
            l1_writeback = missing
            if len(s) >= l1_assoc:
                victim = next(iter(s))
                if s.pop(victim):
                    l1_writebacks[core] += 1
                    l1_writeback = victim
            s[line] = is_write
            # directory.add(line, core)
            mask = dir_mask_get(line)
            dir_mask[line] = cbit if mask is None else mask | cbit
            # _fetch_into_llc(line)
            ls = llc_state[line % llc_sets_count]
            tag_dirty = ls.pop(line, missing)
            if tag_dirty is not missing:
                h_llc_hits += 1
                llc_hits += 1
                ls[line] = tag_dirty
            else:
                llc_misses += 1
                memory_reads += 1
                pages_append(line // lines_per_page)
                writes_append(False)
                if len(ls) >= llc_assoc:
                    victim = next(iter(ls))
                    if ls.pop(victim):
                        llc_writebacks += 1
                        memory_writes += 1
                        pages_append(victim // lines_per_page)
                        writes_append(True)
                ls[line] = False
            if l1_writeback is not missing:
                # directory.drop(l1_writeback, core)
                mask = dir_mask_get(l1_writeback)
                if mask is not None:
                    mask &= ~cbit
                    if mask:
                        dir_mask[l1_writeback] = mask
                    else:
                        del dir_mask[l1_writeback]
                # _write_back_to_llc(l1_writeback)
                ls = llc_state[l1_writeback % llc_sets_count]
                tag_dirty = ls.pop(l1_writeback, missing)
                if tag_dirty is not missing:
                    llc_hits += 1
                    ls[l1_writeback] = True
                else:
                    llc_misses += 1
                    if len(ls) >= llc_assoc:
                        victim = next(iter(ls))
                        if ls.pop(victim):
                            llc_writebacks += 1
                            memory_writes += 1
                            pages_append(victim // lines_per_page)
                            writes_append(True)
                    ls[l1_writeback] = True
    finally:
        # Write the working state and counters back so the hierarchy is
        # bit-identical to a per-request replay.  On a mid-run error the
        # caches stay structurally consistent and hits/misses/accesses
        # are flushed on the same whole-trace basis (hits are derived
        # as accesses - misses, so hits + misses == cpu_accesses holds
        # even then).
        for core, l1 in enumerate(hierarchy.l1d):
            l1.restore_sets(
                l1_flat[core * l1_sets_count : (core + 1) * l1_sets_count]
            )
        hierarchy.llc.restore_sets(llc_state)
        for core, l1 in enumerate(hierarchy.l1d):
            stats = l1.stats
            stats.hits += core_counts[core] - l1_misses[core]
            stats.misses += l1_misses[core]
            stats.writebacks += l1_writebacks[core]
            stats.invalidations += l1_invalidations[core]
        llc_stats = hierarchy.llc.stats
        llc_stats.hits += llc_hits
        llc_stats.misses += llc_misses
        llc_stats.writebacks += llc_writebacks
        h_stats = hierarchy.stats
        h_stats.cpu_accesses += len(line_list)
        h_stats.l1_hits += len(line_list) - sum(l1_misses)
        h_stats.llc_hits += h_llc_hits
        h_stats.memory_reads += memory_reads
        h_stats.memory_writes += memory_writes
        h_stats.coherence_invalidations += coherence_invalidations
        # The reference directory keeps line -> holder sets; rebuild it
        # from the bitmasks.  The mask dict mirrored every insert/delete
        # the reference would have done, so even key order matches.
        dir_holders = hierarchy._directory.holders
        dir_holders.clear()
        for dline, mask in dir_mask.items():
            holder_set = set()
            while mask:
                low = mask & -mask
                mask ^= low
                holder_set.add(low.bit_length() - 1)
            dir_holders[dline] = holder_set

    if flush_at_end:
        for line, line_is_write in hierarchy.flush():
            pages.append(line // lines_per_page)
            writes.append(line_is_write)
    return Trace(
        np.asarray(pages, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        name=name or f"{cpu_trace.name}-filtered",
        page_size=page_size,
    )


def filter_chunks(
    cpu_chunks,
    hierarchy: CacheHierarchy | None = None,
    page_size: int = PAGE_SIZE,
    flush_at_end: bool = False,
    name: str | None = None,
    vectorized: bool = True,
):
    """Stream CPU-trace chunks through one shared cache hierarchy.

    The chunked counterpart of :func:`filter_trace`: each incoming
    :class:`CPUTrace` chunk is filtered against the *same* hierarchy —
    both kernels write their working state back into the hierarchy on
    every call, so feeding N chunks is bit-identical to filtering their
    concatenation (pinned by the chunk-boundary equivalence suite) —
    and the filtered :class:`Trace` chunks are yielded as they are
    produced.  Peak memory is one chunk plus the cache state, so a CPU
    trace of any length can feed the memory-side drive loop end to end
    at constant memory.

    ``flush_at_end`` emits the final dirty-line drain as one extra
    trailing chunk after the input is exhausted.
    """
    hierarchy = hierarchy or cotson_hierarchy()
    chunk_name = name
    for chunk in cpu_chunks:
        if chunk_name is None:
            chunk_name = f"{chunk.name}-filtered"
        yield filter_trace(
            chunk, hierarchy, page_size, flush_at_end=False,
            name=chunk_name, vectorized=vectorized,
        )
    if flush_at_end:
        lines_per_page = page_size // hierarchy.line_size
        pages: list[int] = []
        writes: list[bool] = []
        for line, line_is_write in hierarchy.flush():
            pages.append(line // lines_per_page)
            writes.append(line_is_write)
        yield Trace(
            np.asarray(pages, dtype=np.int64),
            np.asarray(writes, dtype=bool),
            name=chunk_name or "filtered",
            page_size=page_size,
        )
