"""Filter CPU traces through the cache hierarchy into memory traces.

This is the COTSon role in the paper's pipeline: "since the multi-level
caches in CPU affect the distribution of accesses dispatched to the
main memory ... we used COTSon which is able to simulate a multi-core
system with many cache levels" (Section I).  The hierarchy absorbs hot
lines, delays writes into eviction-time write-backs and hands the
policies a post-LLC access stream.
"""

from __future__ import annotations

from repro.cpu.hierarchy import CacheHierarchy, cotson_hierarchy
from repro.trace.record import PAGE_SIZE
from repro.trace.trace import CPUTrace, Trace


def filter_trace(
    cpu_trace: CPUTrace,
    hierarchy: CacheHierarchy | None = None,
    page_size: int = PAGE_SIZE,
    flush_at_end: bool = False,
    name: str | None = None,
) -> Trace:
    """Run a CPU trace through the hierarchy; return the memory trace.

    Parameters
    ----------
    cpu_trace:
        Byte-addressed per-core accesses.
    hierarchy:
        The cache configuration; Table II's quad-core setup by default.
    page_size:
        Page granularity of the produced memory trace.
    flush_at_end:
        Also emit the final dirty-line drain (off by default: the paper
        measures the region of interest, not teardown).
    name:
        Name for the filtered trace; defaults to ``<cpu name>-filtered``.
    """
    hierarchy = hierarchy or cotson_hierarchy()
    lines_per_page = page_size // hierarchy.line_size
    pages: list[int] = []
    writes: list[bool] = []
    access = hierarchy.access
    for address, is_write, core in cpu_trace.iter_tuples():
        for line, line_is_write in access(address, is_write, core):
            pages.append(line // lines_per_page)
            writes.append(line_is_write)
    if flush_at_end:
        for line, line_is_write in hierarchy.flush():
            pages.append(line // lines_per_page)
            writes.append(line_is_write)
    return Trace(
        pages,
        writes,
        name=name or f"{cpu_trace.name}-filtered",
        page_size=page_size,
    )
