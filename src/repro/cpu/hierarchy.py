"""The COTSon-substitute multi-core cache hierarchy (paper Table II).

Quad-core, per-core 32 KB 4-way L1 data and instruction caches, a
shared 2 MB 16-way last-level cache, 64 B lines, write-back with
write-allocate, and write-invalidate coherence between the private L1s
(a behavioural stand-in for COTSon's MOESI protocol: what matters for
trace filtering is *which accesses reach main memory*, and invalidate-
on-remote-write reproduces that traffic pattern).

Main-memory traffic is emitted as ``(line, is_write)`` events: a read
per LLC fetch miss and a write per dirty LLC eviction — the stream the
paper's memory policies consume after page aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.cache import CacheGeometry, SetAssociativeCache

#: Table II geometries.
L1_GEOMETRY = CacheGeometry(size_bytes=32 * 1024, associativity=4,
                            line_size=64)
LLC_GEOMETRY = CacheGeometry(size_bytes=2 * 1024 * 1024, associativity=16,
                             line_size=64)
COTSON_CORES = 4


@dataclass
class HierarchyStats:
    """Aggregate event counts of one filtering run."""

    cpu_accesses: int = 0
    l1_hits: int = 0
    llc_hits: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    coherence_invalidations: int = 0

    @property
    def memory_accesses(self) -> int:
        return self.memory_reads + self.memory_writes

    @property
    def llc_filter_ratio(self) -> float:
        """Fraction of CPU accesses absorbed before main memory."""
        if not self.cpu_accesses:
            return 0.0
        return 1.0 - self.memory_accesses / self.cpu_accesses


@dataclass
class _Directory:
    """Tracks which cores' L1s hold each line (coherence directory)."""

    holders: dict[int, set[int]] = field(default_factory=dict)

    def add(self, line: int, core: int) -> None:
        self.holders.setdefault(line, set()).add(core)

    def drop(self, line: int, core: int) -> None:
        cores = self.holders.get(line)
        if cores is not None:
            cores.discard(core)
            if not cores:
                del self.holders[line]

    def others(self, line: int, core: int) -> list[int]:
        cores = self.holders.get(line)
        if not cores:
            return []
        return [holder for holder in cores if holder != core]


class CacheHierarchy:
    """Private L1s over a shared write-back LLC with write-invalidate."""

    def __init__(
        self,
        cores: int = COTSON_CORES,
        l1_geometry: CacheGeometry = L1_GEOMETRY,
        llc_geometry: CacheGeometry = LLC_GEOMETRY,
    ) -> None:
        if cores < 1:
            raise ValueError("need at least one core")
        if l1_geometry.line_size != llc_geometry.line_size:
            raise ValueError("L1 and LLC must share a line size")
        self.cores = cores
        self.line_size = llc_geometry.line_size
        self.l1d = [
            SetAssociativeCache(l1_geometry, name=f"L1D{core}")
            for core in range(cores)
        ]
        self.l1i = [
            SetAssociativeCache(l1_geometry, name=f"L1I{core}")
            for core in range(cores)
        ]
        self.llc = SetAssociativeCache(llc_geometry, name="LLC")
        self.stats = HierarchyStats()
        self._directory = _Directory()

    # ------------------------------------------------------------------
    def access(
        self,
        address: int,
        is_write: bool,
        core: int = 0,
        is_instruction: bool = False,
    ) -> list[tuple[int, bool]]:
        """Run one CPU access; returns emitted memory ``(line, is_write)``.

        Reads are LLC fetch misses; writes are dirty-line evictions
        (write-back traffic carries the *victim's* address).
        """
        if not 0 <= core < self.cores:
            raise ValueError(f"core {core} out of range")
        line = address // self.line_size
        self.stats.cpu_accesses += 1
        events: list[tuple[int, bool]] = []

        l1 = self.l1i[core] if is_instruction else self.l1d[core]
        if is_write and not is_instruction:
            self._invalidate_remote(line, core, events)

        hit, l1_writeback = l1.access(line, is_write)
        if hit:
            self.stats.l1_hits += 1
        else:
            if not is_instruction:
                self._directory.add(line, core)
            self._fetch_into_llc(line, events)
        if l1_writeback is not None:
            if not is_instruction:
                self._directory.drop(l1_writeback, core)
            self._write_back_to_llc(l1_writeback, events)
        return events

    # ------------------------------------------------------------------
    def _invalidate_remote(
        self, line: int, core: int, events: list[tuple[int, bool]]
    ) -> None:
        """Write-invalidate: kill other cores' copies of the line."""
        drop = self._directory.drop
        for other in self._directory.others(line, core):
            dirty = self.l1d[other].invalidate(line)
            drop(line, other)
            self.stats.coherence_invalidations += 1
            if dirty:
                self._write_back_to_llc(line, events)

    def _fetch_into_llc(
        self, line: int, events: list[tuple[int, bool]]
    ) -> None:
        """L1 miss path: read through the LLC."""
        hit, llc_writeback = self.llc.access(line, is_write=False)
        if hit:
            self.stats.llc_hits += 1
        else:
            self.stats.memory_reads += 1
            events.append((line, False))
        if llc_writeback is not None:
            self.stats.memory_writes += 1
            events.append((llc_writeback, True))

    def _write_back_to_llc(
        self, line: int, events: list[tuple[int, bool]]
    ) -> None:
        """Install a dirty L1 victim into the LLC (no memory fetch)."""
        if self.llc.contains(line):
            self.llc.access(line, is_write=True)
            return
        # Allocate the full line without reading memory: a write-back
        # carries complete data.
        _, llc_writeback = self.llc.access(line, is_write=True)
        # The allocate-miss above is bookkeeping, not a memory fetch;
        # undo the miss/hit asymmetry by only forwarding the eviction.
        if llc_writeback is not None:
            self.stats.memory_writes += 1
            events.append((llc_writeback, True))

    # ------------------------------------------------------------------
    def flush(self) -> list[tuple[int, bool]]:
        """Drain every dirty line to memory (end-of-run writebacks)."""
        events: list[tuple[int, bool]] = []
        for l1 in self.l1d:
            for line in l1.flush():
                self._write_back_to_llc(line, events)
        for l1 in self.l1i:
            l1.flush()
        for line in self.llc.flush():
            self.stats.memory_writes += 1
            events.append((line, True))
        self._directory.holders.clear()
        return events


def cotson_hierarchy() -> CacheHierarchy:
    """The exact Table II configuration."""
    return CacheHierarchy(
        cores=COTSON_CORES,
        l1_geometry=L1_GEOMETRY,
        llc_geometry=LLC_GEOMETRY,
    )
