"""A set-associative cache with LRU replacement and write-back policy.

The building block of the COTSon-substitute hierarchy (paper Table II):
32 KB 4-way L1s and a 2 MB 16-way LLC, all with 64 B lines and
write-back.  Only behaviour that affects the *main-memory access
stream* is modelled — hit/miss, dirty eviction, invalidation — since
the sole purpose of the hierarchy here is to filter CPU accesses down
to the memory trace the policies consume.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level."""

    size_bytes: int
    associativity: int
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("size and associativity must be positive")
        if self.line_size <= 0 or self.size_bytes % self.line_size:
            raise ValueError("size must be a multiple of the line size")
        lines = self.size_bytes // self.line_size
        if lines % self.associativity:
            raise ValueError("line count must be a multiple of associativity")

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def sets(self) -> int:
        return self.lines // self.associativity


@dataclass
class CacheStats:
    """Hit/miss/writeback counts for one cache."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """One cache level: LRU sets of cache lines with dirty bits."""

    def __init__(self, geometry: CacheGeometry, name: str = "cache") -> None:
        self.geometry = geometry
        self.name = name
        self.stats = CacheStats()
        # One OrderedDict per set: line tag -> dirty flag, LRU first.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(geometry.sets)
        ]

    # ------------------------------------------------------------------
    def _locate(self, line: int) -> tuple[OrderedDict[int, bool], int]:
        return self._sets[line % self.geometry.sets], line

    def contains(self, line: int) -> bool:
        cache_set, tag = self._locate(line)
        return tag in cache_set

    def access(self, line: int, is_write: bool) -> tuple[bool, int | None]:
        """Access one line; returns ``(hit, evicted_dirty_line)``.

        On a miss the line is filled (allocate-on-miss for both reads
        and writes, matching write-back/write-allocate caches); if the
        set overflows, the LRU line is evicted and returned when dirty
        (the caller forwards the writeback down the hierarchy).
        """
        cache_set, tag = self._locate(line)
        victim_writeback: int | None = None
        if tag in cache_set:
            self.stats.hits += 1
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            return True, None
        self.stats.misses += 1
        if len(cache_set) >= self.geometry.associativity:
            victim, dirty = cache_set.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
                victim_writeback = victim
        cache_set[tag] = is_write
        return False, victim_writeback

    def invalidate(self, line: int) -> bool:
        """Drop a line (coherence); returns True if it was dirty."""
        cache_set, tag = self._locate(line)
        if tag not in cache_set:
            return False
        dirty = cache_set.pop(tag)
        self.stats.invalidations += 1
        return dirty

    def flush(self) -> list[int]:
        """Empty the cache, returning the dirty lines (to write back)."""
        dirty_lines: list[int] = []
        for cache_set in self._sets:
            for tag, dirty in cache_set.items():
                if dirty:
                    dirty_lines.append(tag)
            cache_set.clear()
        self.stats.writebacks += len(dirty_lines)
        return dirty_lines

    @property
    def resident_lines(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)

    # ------------------------------------------------------------------
    # Batched-kernel support (repro.cpu.filter.filter_trace_vectorized)
    # ------------------------------------------------------------------
    def sets_snapshot(self) -> list[OrderedDict[int, bool]]:
        """The per-set tag->dirty maps, LRU first (read-only view)."""
        return self._sets

    def restore_sets(self, state: list[dict[int, bool]]) -> None:
        """Overwrite the per-set contents from insertion-ordered dicts.

        The batched filter kernel works on plain-dict copies of the
        sets (plain dicts preserve insertion order, which is the only
        property the LRU bookkeeping relies on) and writes them back
        through here, so object identity of the ``OrderedDict``\\ s is
        preserved for any holder of :attr:`stats`/set references.
        """
        if len(state) != len(self._sets):
            raise ValueError("set count mismatch")
        for cache_set, new_state in zip(self._sets, state):
            cache_set.clear()
            cache_set.update(new_state)
