"""Synthetic multi-core CPU trace generation.

Produces the byte-addressed, per-core access streams that feed the
cache-hierarchy filter — the front half of the COTSon substitution.
Each core runs a thread mixing accesses to *private* regions (its
stack/heap slice) and a *shared* region (the working data all threads
operate on, which is where coherence traffic comes from).
"""

from __future__ import annotations

import numpy as np

from repro.trace.record import PAGE_SIZE
from repro.trace.rng import SeedLike, ensure_rng
from repro.trace.trace import CPUTrace
from repro.workloads.base import AccessPattern, ZipfPattern


def synthesize_cpu_trace(
    shared_pages: int = 1024,
    private_pages: int = 128,
    requests: int = 100_000,
    cores: int = 4,
    write_ratio: float = 0.3,
    shared_fraction: float = 0.7,
    zipf_alpha: float = 1.1,
    page_size: int = PAGE_SIZE,
    line_size: int = 64,
    seed: SeedLike = 0,
    name: str = "multicore",
    shared_pattern: AccessPattern | None = None,
) -> CPUTrace:
    """Generate an interleaved multi-threaded CPU access stream.

    Parameters
    ----------
    shared_pages / private_pages:
        Sizes of the shared data region and each core's private region.
    requests:
        Total accesses across all cores (round-robin interleaved).
    shared_fraction:
        Probability an access targets the shared region.
    zipf_alpha:
        Popularity skew within the shared region.
    shared_pattern:
        Override the shared-region pattern (defaults to Zipf).
    """
    if cores < 1:
        raise ValueError("need at least one core")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError("shared_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    pattern = shared_pattern or ZipfPattern(
        shared_pages, alpha=zipf_alpha, permute_seed=rng
    )

    core_ids = np.arange(requests, dtype=np.int16) % cores
    is_shared = rng.random(requests) < shared_fraction
    shared_count = int(is_shared.sum())

    pages = np.empty(requests, dtype=np.int64)
    pages[is_shared] = pattern.generate(rng, shared_count)
    # Private accesses land in a per-core region appended after the
    # shared region, so address spaces never collide.
    private_mask = ~is_shared
    private_count = requests - shared_count
    private_offsets = rng.integers(0, private_pages, size=private_count,
                                   dtype=np.int64)
    pages[private_mask] = (
        shared_pages
        + core_ids[private_mask].astype(np.int64) * private_pages
        + private_offsets
    )

    lines_per_page = page_size // line_size
    line_offsets = rng.integers(0, lines_per_page, size=requests,
                                dtype=np.int64)
    addresses = pages * page_size + line_offsets * line_size
    writes = rng.random(requests) < write_ratio
    return CPUTrace(addresses, writes, core_ids, name=name)
