"""COTSon-substitute CPU layer: caches, hierarchy, trace filtering."""

from repro.cpu.cache import CacheGeometry, CacheStats, SetAssociativeCache
from repro.cpu.filter import filter_trace
from repro.cpu.hierarchy import (
    COTSON_CORES,
    L1_GEOMETRY,
    LLC_GEOMETRY,
    CacheHierarchy,
    HierarchyStats,
    cotson_hierarchy,
)
from repro.cpu.multicore import synthesize_cpu_trace

__all__ = [
    "COTSON_CORES",
    "CacheGeometry",
    "CacheHierarchy",
    "CacheStats",
    "HierarchyStats",
    "L1_GEOMETRY",
    "LLC_GEOMETRY",
    "SetAssociativeCache",
    "cotson_hierarchy",
    "filter_trace",
    "synthesize_cpu_trace",
]
