"""Miss-ratio curves via Mattson's stack algorithm.

The paper sizes memory as 75 % of the workload's footprint (Section
V-A); a miss-ratio curve (MRC) shows what that rule buys: for an LRU
(stack) policy, one pass over the trace yields the miss ratio at
*every* capacity simultaneously, because LRU possesses the inclusion
property — the content of a size-C cache is a subset of a size-C+1
cache, so an access hits at capacity C iff its stack distance is
below C.

Used by the capacity ablation and available as library tooling for
sizing studies on user traces.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.trace.trace import Trace


@dataclass(frozen=True)
class MissRatioCurve:
    """Miss ratio as a function of LRU capacity (in pages)."""

    capacities: tuple[int, ...]
    miss_ratios: tuple[float, ...]
    total_accesses: int
    cold_misses: int

    def miss_ratio_at(self, capacity: int) -> float:
        """Miss ratio at a capacity (steps between computed points).

        The curve is exact at every integer capacity because the
        distance histogram is kept at full resolution; this accessor
        interpolates by step (LRU miss ratio is right-continuous and
        non-increasing in capacity).
        """
        if capacity <= 0:
            return 1.0
        index = bisect.bisect_right(self.capacities, capacity) - 1
        if index < 0:
            return 1.0
        return self.miss_ratios[index]

    def hit_ratio_at(self, capacity: int) -> float:
        return 1.0 - self.miss_ratio_at(capacity)

    def capacity_for(self, target_miss_ratio: float) -> int:
        """Smallest computed capacity whose miss ratio <= target."""
        for capacity, miss in zip(self.capacities, self.miss_ratios):
            if miss <= target_miss_ratio:
                return capacity
        return self.capacities[-1] if self.capacities else 0

    @property
    def compulsory_miss_ratio(self) -> float:
        """Cold misses / accesses: the floor no capacity removes."""
        if self.total_accesses == 0:
            return 0.0
        return self.cold_misses / self.total_accesses


def stack_distances(trace: Trace, sample_cap: int | None = None) -> np.ndarray:
    """LRU stack distance per access; -1 marks first touches.

    O(n * d) with the list-based stack (d = average distance), fine at
    the library's simulation scales; ``sample_cap`` bounds the work on
    very long traces.
    """
    pages = np.asarray(trace.pages)
    limit = len(pages) if sample_cap is None else min(len(pages), sample_cap)
    stack: list[int] = []          # LRU order, most recent last
    index_of: dict[int, int] = {}
    distances = np.empty(limit, dtype=np.int64)
    for position in range(limit):
        page = int(pages[position])
        if page in index_of:
            location = index_of[page]
            distances[position] = len(stack) - 1 - location
            stack.pop(location)
            for moved in range(location, len(stack)):
                index_of[stack[moved]] = moved
        else:
            distances[position] = -1
        index_of[page] = len(stack)
        stack.append(page)
    return distances


def miss_ratio_curve(
    trace: Trace,
    capacities: Sequence[int] | None = None,
    sample_cap: int | None = None,
) -> MissRatioCurve:
    """Compute the LRU miss-ratio curve of a trace in one stack pass.

    Parameters
    ----------
    trace:
        The memory trace.
    capacities:
        Capacities (pages) to report; defaults to a footprint-relative
        ladder (5 %, 10 %, ... 100 % of distinct pages).
    sample_cap:
        Bound on the number of accesses analysed.
    """
    distances = stack_distances(trace, sample_cap=sample_cap)
    total = int(distances.shape[0])
    if total == 0:
        return MissRatioCurve((), (), 0, 0)
    cold = int((distances == -1).sum())
    footprint = trace.unique_pages
    if capacities is None:
        ladder = sorted({
            max(1, round(footprint * fraction))
            for fraction in (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.75,
                             0.9, 1.0)
        })
        capacities = ladder
    reuse = distances[distances >= 0]
    # histogram of stack distances; hits at capacity C = distances < C
    histogram = np.bincount(reuse, minlength=1) if reuse.size else \
        np.zeros(1, dtype=np.int64)
    cumulative = np.cumsum(histogram)

    def hits_at(capacity: int) -> int:
        if capacity <= 0:
            return 0
        index = min(capacity - 1, cumulative.shape[0] - 1)
        return int(cumulative[index])

    miss_ratios = tuple(
        1.0 - hits_at(capacity) / total for capacity in capacities
    )
    return MissRatioCurve(
        capacities=tuple(int(c) for c in capacities),
        miss_ratios=miss_ratios,
        total_accesses=total,
        cold_misses=cold,
    )
