"""Chunk-first trace sources: the streaming input side of the pipeline.

A :class:`TraceSource` is anything that can hand the drive path a
sequence of fixed-size :class:`~repro.trace.trace.Trace` chunks.  The
whole-trace :class:`Trace` is itself a source (one chunk, or sliced
views on demand), so every existing call site keeps working, while
generators and trace files stream through the very same batched
kernels at constant memory — no source ever has to materialise more
than one chunk at a time.

The module also defines the *identity* side of streaming: a
chunk-size-invariant content digest (:func:`scan_source`), the frozen
:class:`SourceSpec` descriptor a :class:`~repro.experiments.runspec.RunSpec`
carries for externally-supplied traces, and the content-addressed
:class:`TraceStore` that spills non-file streams to disk so executor
workers (and a resident ``repro serve`` process) can replay them by
digest.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    runtime_checkable,
)

import numpy as np

from repro.trace.record import PAGE_SIZE, AccessKind
from repro.trace.trace import Trace

#: Default chunk length (requests) when a streaming source is asked for
#: its "natural" chunking.  64 Ki requests keeps the per-chunk numpy
#: arrays under ~600 KB while amortising kernel-entry overhead to noise.
DEFAULT_CHUNK_REQUESTS = 1 << 16


@runtime_checkable
class TraceSource(Protocol):
    """Anything the drive path can consume chunk by chunk.

    ``chunks(chunk_size)`` yields :class:`Trace` chunks in request
    order; ``chunk_size=None`` lets the source pick its natural size
    (a materialised :class:`Trace` yields itself whole, streaming
    sources use :data:`DEFAULT_CHUNK_REQUESTS`).  ``request_count`` is
    ``None`` when the length is unknown up front (e.g. a generator) —
    warm-up *fractions* and bucket-derived event intervals need a
    length, explicit ``warmup_requests``/``interval`` values do not.
    """

    name: str
    page_size: int

    @property
    def request_count(self) -> int | None: ...

    def chunks(self, chunk_size: int | None = None) -> Iterator[Trace]: ...


def as_source(obj: "TraceSource | Trace | str | os.PathLike[str] | Iterable") -> TraceSource:
    """Coerce ``obj`` into a :class:`TraceSource`.

    Accepts a :class:`Trace` (already a source), any object with the
    source protocol, a ``.trc``/``.npz`` path, or an iterable of
    ``(page, is_write)`` pairs.
    """
    if isinstance(obj, Trace):
        return obj
    if isinstance(obj, (str, os.PathLike)):
        return open_trace_source(obj)
    if isinstance(obj, TraceSource):
        return obj
    if isinstance(obj, Iterable):
        return IterableTraceSource(obj)
    raise TypeError(f"cannot build a trace source from {type(obj).__name__}")


def open_trace_source(path: str | os.PathLike[str]) -> TraceSource:
    """Open a trace file as a source, dispatching on the extension.

    ``.npz`` opens the compact binary format (loaded lazily, chunked
    as array views); anything else is read as the streaming ``.trc``
    text format (constant memory regardless of file length).
    """
    path = Path(path)
    if path.suffix == ".npz":
        return NpzTraceSource(path)
    return TextTraceSource(path)


def materialize(source: "TraceSource | Trace", name: str | None = None) -> Trace:
    """Render a source fully in memory as one :class:`Trace`."""
    if isinstance(source, Trace):
        return source if name is None else source.renamed(name)
    return Trace.from_chunks(
        source.chunks(),
        name=name if name is not None else source.name,
        page_size=source.page_size,
    )


# ----------------------------------------------------------------------
# Streaming sources
# ----------------------------------------------------------------------
class IterableTraceSource:
    """Source over ``(page, is_write)`` pairs, buffered into chunks.

    ``pairs`` may be a plain iterable (single replay: generators are
    exhausted by one pass) or a zero-argument callable returning a
    fresh iterator each time — the replayable form the executor and
    the equivalence tests use.  At most one chunk of pairs is ever
    buffered, so memory stays bounded by ``chunk_size`` regardless of
    stream length.
    """

    def __init__(
        self,
        pairs: Iterable[tuple[int, bool]] | Callable[[], Iterable[tuple[int, bool]]],
        name: str = "stream",
        page_size: int = PAGE_SIZE,
        request_count: int | None = None,
    ) -> None:
        self._pairs = pairs
        self._consumed = False
        self.name = name
        self.page_size = page_size
        self._request_count = request_count

    @property
    def request_count(self) -> int | None:
        return self._request_count

    def _open(self) -> Iterator[tuple[int, bool]]:
        if callable(self._pairs):
            return iter(self._pairs())
        if self._consumed:
            raise RuntimeError(
                "this iterable trace source was already consumed; pass a "
                "callable returning a fresh iterator for replayable streams")
        self._consumed = True
        return iter(self._pairs)

    def chunks(self, chunk_size: int | None = None) -> Iterator[Trace]:
        size = chunk_size if chunk_size else DEFAULT_CHUNK_REQUESTS
        if size < 1:
            raise ValueError("chunk_size must be >= 1")
        pages: list[int] = []
        writes: list[bool] = []
        for page, is_write in self._open():
            pages.append(page)
            writes.append(bool(is_write))
            if len(pages) >= size:
                yield Trace(pages, writes, name=self.name,
                            page_size=self.page_size)
                pages = []
                writes = []
        if pages:
            yield Trace(pages, writes, name=self.name,
                        page_size=self.page_size)


class TextTraceSource:
    """Streaming reader for the ``.trc`` text format.

    The header comments (``# name:``, ``# page_size:``) are scanned at
    construction; ``chunks`` re-opens the file per pass, parsing one
    chunk of lines at a time — peak memory is one chunk, independent
    of file length, which is the whole point of the format for
    multi-gigabyte traces.
    """

    def __init__(self, path: str | os.PathLike[str],
                 request_count: int | None = None) -> None:
        self.path = Path(path)
        self.name = self.path.stem
        self.page_size = PAGE_SIZE
        self._request_count = request_count
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                if not line.startswith("#"):
                    break
                body = line[1:].strip()
                if body.startswith("name:"):
                    self.name = body[len("name:"):].strip() or self.name
                elif body.startswith("page_size:"):
                    self.page_size = _parse_int(body[len("page_size:"):])

    @property
    def request_count(self) -> int | None:
        # Counting would cost a full pass, so the length is unknown
        # unless the caller already scanned the file and passed the
        # count in (SourceSpec.open does).
        return self._request_count

    def chunks(self, chunk_size: int | None = None) -> Iterator[Trace]:
        size = chunk_size if chunk_size else DEFAULT_CHUNK_REQUESTS
        if size < 1:
            raise ValueError("chunk_size must be >= 1")
        pages: list[int] = []
        writes: list[bool] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                parsed = parse_trace_line(raw_line, line_number)
                if parsed is None:
                    continue
                page, is_write = parsed
                pages.append(page)
                writes.append(is_write)
                if len(pages) >= size:
                    yield Trace(pages, writes, name=self.name,
                                page_size=self.page_size)
                    pages = []
                    writes = []
        if pages:
            yield Trace(pages, writes, name=self.name,
                        page_size=self.page_size)


class NpzTraceSource:
    """Source over the compact binary ``.npz`` format.

    The format is a compressed whole-array container, so it cannot be
    decoded incrementally — the arrays load on first use and chunking
    yields zero-copy slice views.  Use the text format when constant
    ingest memory matters more than file size.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._trace: Trace | None = None

    def _load(self) -> Trace:
        if self._trace is None:
            from repro.trace.io import _load_trace_arrays
            self._trace = _load_trace_arrays(self.path)
        return self._trace

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._load().name

    @property
    def page_size(self) -> int:  # type: ignore[override]
        return self._load().page_size

    @property
    def request_count(self) -> int | None:
        return len(self._load())

    def chunks(self, chunk_size: int | None = None) -> Iterator[Trace]:
        return self._load().chunks(chunk_size)


def _parse_int(token: str) -> int:
    token = token.strip()
    if token.lower().startswith("0x"):
        return int(token, 16)
    return int(token)


def parse_trace_line(
    raw_line: str, line_number: int = 0,
) -> tuple[int, bool] | None:
    """Parse one ``.trc`` line into ``(page, is_write)``.

    Returns ``None`` for blank and comment lines.  Shared by the
    streaming reader, the legacy whole-file parser and the server's
    trace-upload ingest, so all three accept the same format.
    """
    line = raw_line.strip()
    if not line or line.startswith("#"):
        return None
    fields = line.split()
    if len(fields) < 2:
        raise ValueError(
            f"line {line_number}: expected '<R|W> <page>', got {line!r}")
    kind = AccessKind.parse(fields[0])
    return _parse_int(fields[1]), kind is AccessKind.WRITE


# ----------------------------------------------------------------------
# Identity: chunk-invariant digests and the frozen source descriptor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SourceSpec:
    """Frozen descriptor of an externally-supplied trace.

    Rides on :class:`~repro.experiments.runspec.RunSpec` the way
    :class:`~repro.sampling.SamplingConfig` does: frozen, hashable,
    picklable, with a constant-key ``to_dict``.  ``digest`` is the
    chunk-size-invariant content address (:func:`scan_source`) — it,
    not ``path``, is the cache identity, so the same trace uploaded
    twice (or reached via different paths) shares one cache entry.
    """

    digest: str
    name: str
    page_size: int
    requests: int
    unique_pages: int
    write_requests: int
    path: str | None = None

    def open(self) -> TraceSource:
        """Open the referenced trace file as a streaming source.

        The scan statistics ride along: the opened source knows its
        request count even for the text format (whose reader cannot
        know it without a counting pass), so warm-up fractions and
        bucket-derived event intervals work on streamed replays.
        """
        if self.path is None:
            raise ValueError(
                f"source {self.name!r} ({self.digest[:12]}) has no backing "
                "file; re-create it through TraceStore.add")
        path = Path(self.path)
        if path.suffix == ".npz":
            return NpzTraceSource(path)
        return TextTraceSource(path, request_count=self.requests)

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "name": self.name,
            "page_size": self.page_size,
            "requests": self.requests,
            "unique_pages": self.unique_pages,
            "write_requests": self.write_requests,
            "path": self.path,
        }

    def identity_dict(self) -> dict[str, Any]:
        """The digest-relevant subset: everything except the path."""
        data = self.to_dict()
        del data["path"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SourceSpec":
        return cls(
            digest=data["digest"],
            name=data["name"],
            page_size=data["page_size"],
            requests=data["requests"],
            unique_pages=data["unique_pages"],
            write_requests=data["write_requests"],
            path=data.get("path"),
        )


@dataclass(frozen=True)
class SourceScan:
    """Everything one streaming pass over a source establishes."""

    digest: str
    requests: int
    unique_pages: int
    write_requests: int


class _StreamDigest:
    """Chunk-size-invariant running digest over trace content.

    Pages and write flags hash into *separate* sha256 streams (chunked
    interleaving would otherwise make the byte order — and hence the
    digest — depend on the chunk size); the final digest combines both
    stream digests with the page size.
    """

    def __init__(self, page_size: int) -> None:
        self._pages = hashlib.sha256()
        self._writes = hashlib.sha256()
        self._page_size = page_size

    def update(self, chunk: Trace) -> None:
        self._pages.update(np.ascontiguousarray(
            chunk.pages, dtype=np.int64).tobytes())
        self._writes.update(np.ascontiguousarray(
            chunk.is_write, dtype=np.uint8).tobytes())

    def hexdigest(self) -> str:
        outer = hashlib.sha256()
        outer.update(f"page_size={self._page_size};".encode())
        outer.update(self._pages.digest())
        outer.update(self._writes.digest())
        return outer.hexdigest()[:24]


def scan_source(
    source: TraceSource | Trace,
    chunk_size: int | None = None,
    sink: Callable[[Trace], None] | None = None,
) -> SourceScan:
    """One streaming pass: content digest plus the summary statistics.

    ``sink`` (when given) receives every chunk after it is digested —
    the trace store uses this to spill the stream to disk in the same
    single pass, so ingest never needs a second replay of a
    non-replayable stream.
    """
    source = as_source(source)
    digest = _StreamDigest(source.page_size)
    requests = 0
    writes = 0
    seen: set[int] = set()
    unique = np.unique
    for chunk in source.chunks(chunk_size):
        digest.update(chunk)
        requests += len(chunk)
        writes += chunk.write_count
        if len(chunk):
            seen.update(unique(chunk.pages).tolist())
        if sink is not None:
            sink(chunk)
    return SourceScan(
        digest=digest.hexdigest(),
        requests=requests,
        unique_pages=len(seen),
        write_requests=writes,
    )


# ----------------------------------------------------------------------
# Content-addressed trace store
# ----------------------------------------------------------------------
class TraceStore:
    """Content-addressed spill directory for streamed traces.

    ``add`` turns any source into a :class:`SourceSpec` whose ``path``
    points at a file every process can replay: file-backed sources are
    referenced in place (single scan, no copy); in-memory and
    generator sources are spilled to ``<root>/<digest>.trc`` in the
    same single streaming pass that computes the digest, so peak
    memory stays one chunk.  Writes go through a unique temp file plus
    an atomic rename, so concurrent ingests of the same content are
    safe and converge on one file.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)

    def add(self, source: "TraceSource | Trace | str | os.PathLike[str] | Iterable",
            name: str | None = None,
            chunk_size: int | None = None) -> SourceSpec:
        source = as_source(source)
        spec_name = name if name is not None else source.name
        backing = getattr(source, "path", None)
        if backing is not None:
            scan = scan_source(source, chunk_size)
            return SourceSpec(
                digest=scan.digest, name=spec_name,
                page_size=source.page_size, requests=scan.requests,
                unique_pages=scan.unique_pages,
                write_requests=scan.write_requests, path=str(backing),
            )
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix="ingest-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"# name: {spec_name}\n")
                handle.write(f"# page_size: {source.page_size}\n")

                def spill(chunk: Trace) -> None:
                    for page, is_write in chunk.iter_pairs():
                        handle.write(f"{'W' if is_write else 'R'} {page}\n")

                scan = scan_source(source, chunk_size, sink=spill)
            path = self.root / f"{scan.digest}.trc"
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return SourceSpec(
            digest=scan.digest, name=spec_name, page_size=source.page_size,
            requests=scan.requests, unique_pages=scan.unique_pages,
            write_requests=scan.write_requests, path=str(path),
        )

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.trc"
