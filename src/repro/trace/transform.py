"""Trace transformations: remapping, splitting, sampling, perturbation."""

from __future__ import annotations

import numpy as np

from repro.trace.rng import SeedLike, ensure_rng
from repro.trace.trace import Trace


def densify(trace: Trace) -> Trace:
    """Remap page numbers onto ``0..unique_pages-1`` (first-touch order).

    Policies only care about page identity, so densifying loses nothing
    while letting frame-indexed bookkeeping use plain lists.
    """
    pages = np.asarray(trace.pages)
    _, first_touch_order = np.unique(pages, return_index=True)
    ordered = pages[np.sort(first_touch_order)]
    mapping = {int(page): index for index, page in enumerate(ordered)}
    remapped = np.fromiter(
        (mapping[int(page)] for page in pages), dtype=np.int64, count=pages.size
    )
    return Trace(remapped, trace.is_write, name=trace.name,
                 page_size=trace.page_size)


def head(trace: Trace, count: int) -> Trace:
    """First ``count`` requests."""
    return trace[:count]


def tail(trace: Trace, count: int) -> Trace:
    """Last ``count`` requests."""
    if count <= 0:
        return trace[:0]
    return trace[len(trace) - count:]


def drop_warmup(trace: Trace, fraction: float) -> Trace:
    """Drop the first ``fraction`` of requests (cold-start removal)."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    start = int(len(trace) * fraction)
    return trace[start:]


def subsample(trace: Trace, step: int) -> Trace:
    """Keep every ``step``-th request (systematic sampling)."""
    if step < 1:
        raise ValueError("step must be >= 1")
    return Trace(
        np.asarray(trace.pages)[::step],
        np.asarray(trace.is_write)[::step],
        name=trace.name,
        page_size=trace.page_size,
    )


def flip_writes(trace: Trace, write_ratio: float,
                seed: SeedLike = 0) -> Trace:
    """Re-draw the read/write flags with a new write ratio.

    Page sequence (and therefore locality) is preserved; only request
    directions change.  Used by ablations that study read/write-mix
    sensitivity independent of locality.  ``seed`` may be a live
    ``Generator`` so chained transforms share one stream.
    """
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must be in [0, 1]")
    rng = ensure_rng(seed)
    writes = rng.random(len(trace)) < write_ratio
    return Trace(trace.pages, writes, name=trace.name,
                 page_size=trace.page_size)


def remap_random(trace: Trace, seed: SeedLike = 0) -> Trace:
    """Apply a random bijection to page numbers.

    Destroys any spatial meaning of page ids while preserving temporal
    locality — a sanity transform for policies, which must be invariant
    under it.
    """
    rng = ensure_rng(seed)
    pages = np.asarray(trace.pages)
    unique = np.unique(pages)
    shuffled = unique.copy()
    rng.shuffle(shuffled)
    mapping = {int(old): int(new) for old, new in zip(unique, shuffled)}
    remapped = np.fromiter(
        (mapping[int(page)] for page in pages), dtype=np.int64, count=pages.size
    )
    return Trace(remapped, trace.is_write, name=trace.name,
                 page_size=trace.page_size)


def split(trace: Trace, parts: int) -> list[Trace]:
    """Split into ``parts`` contiguous chunks (last chunk may be short)."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    chunk = (len(trace) + parts - 1) // parts
    return [trace[start:start + chunk] for start in range(0, len(trace), chunk)]
