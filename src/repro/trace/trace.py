"""Trace containers.

A :class:`Trace` is an immutable, named sequence of page-granularity
memory requests.  Internally it stores parallel numpy arrays (page
numbers and write flags) so that multi-hundred-thousand-request traces
stay compact and fast to iterate; externally it behaves like a sequence
of :class:`~repro.trace.record.MemoryAccess`.

A :class:`CPUTrace` is the byte-addressed, per-core equivalent consumed
by the cache-hierarchy filter in :mod:`repro.cpu`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.trace.record import (
    PAGE_SIZE,
    AccessKind,
    CPUAccess,
    MemoryAccess,
)


class Trace:
    """An immutable sequence of main-memory page requests.

    Parameters
    ----------
    pages:
        Page number per request.
    is_write:
        Write flag per request (same length as ``pages``).
    name:
        Human-readable workload name (shows up in reports).
    page_size:
        Page size in bytes the page numbers refer to.
    """

    __slots__ = ("_pages", "_is_write", "name", "page_size")

    def __init__(
        self,
        pages: Sequence[int] | np.ndarray,
        is_write: Sequence[bool] | np.ndarray,
        name: str = "trace",
        page_size: int = PAGE_SIZE,
    ) -> None:
        pages_arr = np.asarray(pages, dtype=np.int64)
        write_arr = np.asarray(is_write, dtype=bool)
        if pages_arr.ndim != 1 or write_arr.ndim != 1:
            raise ValueError("trace arrays must be one-dimensional")
        if pages_arr.shape != write_arr.shape:
            raise ValueError(
                f"pages ({pages_arr.shape[0]}) and is_write "
                f"({write_arr.shape[0]}) lengths differ"
            )
        if pages_arr.size and pages_arr.min() < 0:
            raise ValueError("page numbers must be non-negative")
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self._pages = pages_arr
        self._is_write = write_arr
        self.name = name
        self.page_size = page_size

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_accesses(
        cls,
        accesses: Iterable[MemoryAccess | tuple[int, AccessKind]],
        name: str = "trace",
        page_size: int = PAGE_SIZE,
    ) -> "Trace":
        pages: list[int] = []
        writes: list[bool] = []
        for access in accesses:
            page, kind = access
            pages.append(page)
            writes.append(AccessKind(kind) is AccessKind.WRITE)
        return cls(pages, writes, name=name, page_size=page_size)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[int, bool]],
        name: str = "trace",
        page_size: int = PAGE_SIZE,
    ) -> "Trace":
        """Build from ``(page, is_write)`` pairs."""
        pages: list[int] = []
        writes: list[bool] = []
        for page, is_write in pairs:
            pages.append(page)
            writes.append(bool(is_write))
        return cls(pages, writes, name=name, page_size=page_size)

    @classmethod
    def from_chunks(
        cls,
        chunks: Iterable["Trace"],
        name: str | None = None,
        page_size: int | None = None,
    ) -> "Trace":
        """Join trace chunks (in order) into one materialised trace.

        The inverse of :meth:`chunks`; the constructor counterpart of
        the streaming :class:`~repro.trace.source.TraceSource` path.
        ``name``/``page_size`` default to the first chunk's values;
        chunks with a conflicting page size are rejected.
        """
        pages: list[np.ndarray] = []
        writes: list[np.ndarray] = []
        for chunk in chunks:
            if name is None:
                name = chunk.name
            if page_size is None:
                page_size = chunk.page_size
            elif chunk.page_size != page_size:
                raise ValueError(
                    f"chunk page_size {chunk.page_size} != {page_size}")
            pages.append(chunk._pages)
            writes.append(chunk._is_write)
        if not pages:
            return cls.empty(name=name or "trace",
                             page_size=page_size or PAGE_SIZE)
        return cls(
            np.concatenate(pages),
            np.concatenate(writes),
            name=name or "trace",
            page_size=page_size or PAGE_SIZE,
        )

    @classmethod
    def empty(cls, name: str = "trace", page_size: int = PAGE_SIZE) -> "Trace":
        return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool),
                   name=name, page_size=page_size)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._pages.shape[0])

    def __getitem__(self, index: int | slice) -> "MemoryAccess | Trace":
        if isinstance(index, slice):
            return Trace(
                self._pages[index],
                self._is_write[index],
                name=self.name,
                page_size=self.page_size,
            )
        return MemoryAccess(
            int(self._pages[index]),
            AccessKind.from_is_write(bool(self._is_write[index])),
        )

    def __iter__(self) -> Iterator[MemoryAccess]:
        for page, is_write in zip(self._pages.tolist(), self._is_write.tolist()):
            yield MemoryAccess(page, AccessKind.from_is_write(is_write))

    def iter_pairs(self) -> Iterator[tuple[int, bool]]:
        """Fast iteration as plain ``(page, is_write)`` python pairs.

        This is the hot path of every simulation loop; it avoids
        constructing a ``MemoryAccess`` object per request.
        """
        return zip(self._pages.tolist(), self._is_write.tolist())

    # ------------------------------------------------------------------
    # TraceSource protocol: a materialised trace is its own source
    # ------------------------------------------------------------------
    @property
    def request_count(self) -> int:
        """Total requests (the :class:`TraceSource` protocol's name for
        a known length; streaming sources may return ``None``)."""
        return len(self)

    def chunks(self, chunk_size: int | None = None) -> Iterator["Trace"]:
        """Yield the trace as fixed-size chunks (zero-copy views).

        ``None`` yields the whole trace as a single chunk — the
        natural unit for an already-materialised trace, which keeps
        the unified chunked drive loop exactly as fast as the old
        whole-trace replay.
        """
        if chunk_size is None:
            if len(self):
                yield self
            return
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        for start in range(0, len(self), chunk_size):
            yield self[start:start + chunk_size]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.page_size == other.page_size
            and np.array_equal(self._pages, other._pages)
            and np.array_equal(self._is_write, other._is_write)
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, requests={len(self)}, "
            f"pages={self.unique_pages}, writes={self.write_count})"
        )

    # ------------------------------------------------------------------
    # Raw views and summary statistics
    # ------------------------------------------------------------------
    @property
    def pages(self) -> np.ndarray:
        """Read-only page-number array."""
        view = self._pages.view()
        view.flags.writeable = False
        return view

    @property
    def is_write(self) -> np.ndarray:
        """Read-only write-flag array."""
        view = self._is_write.view()
        view.flags.writeable = False
        return view

    @property
    def read_count(self) -> int:
        return len(self) - self.write_count

    @property
    def write_count(self) -> int:
        return int(self._is_write.sum())

    @property
    def unique_pages(self) -> int:
        if not len(self):
            return 0
        return int(np.unique(self._pages).shape[0])

    @property
    def footprint_bytes(self) -> int:
        """Working-set size in bytes (distinct pages x page size)."""
        return self.unique_pages * self.page_size

    @property
    def write_ratio(self) -> float:
        return self.write_count / len(self) if len(self) else 0.0

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def renamed(self, name: str) -> "Trace":
        return Trace(self._pages, self._is_write, name=name,
                     page_size=self.page_size)

    def concat(self, other: "Trace") -> "Trace":
        if other.page_size != self.page_size:
            raise ValueError("cannot concatenate traces with different page sizes")
        return Trace(
            np.concatenate([self._pages, other._pages]),
            np.concatenate([self._is_write, other._is_write]),
            name=self.name,
            page_size=self.page_size,
        )


class CPUTrace:
    """An immutable sequence of byte-addressed CPU requests."""

    __slots__ = ("_addresses", "_is_write", "_cores", "name")

    def __init__(
        self,
        addresses: Sequence[int] | np.ndarray,
        is_write: Sequence[bool] | np.ndarray,
        cores: Sequence[int] | np.ndarray | None = None,
        name: str = "cpu-trace",
    ) -> None:
        addr_arr = np.asarray(addresses, dtype=np.int64)
        write_arr = np.asarray(is_write, dtype=bool)
        if cores is None:
            core_arr = np.zeros(addr_arr.shape[0], dtype=np.int16)
        else:
            core_arr = np.asarray(cores, dtype=np.int16)
        if not (addr_arr.shape == write_arr.shape == core_arr.shape):
            raise ValueError("cpu trace arrays must share one length")
        if addr_arr.size and addr_arr.min() < 0:
            raise ValueError("addresses must be non-negative")
        self._addresses = addr_arr
        self._is_write = write_arr
        self._cores = core_arr
        self.name = name

    @classmethod
    def from_accesses(
        cls, accesses: Iterable[CPUAccess], name: str = "cpu-trace"
    ) -> "CPUTrace":
        addresses: list[int] = []
        writes: list[bool] = []
        cores: list[int] = []
        for access in accesses:
            addresses.append(access.address)
            writes.append(access.is_write)
            cores.append(access.core)
        return cls(addresses, writes, cores, name=name)

    def __len__(self) -> int:
        return int(self._addresses.shape[0])

    def __getitem__(self, index: int) -> CPUAccess:
        return CPUAccess(
            int(self._addresses[index]),
            AccessKind.from_is_write(bool(self._is_write[index])),
            int(self._cores[index]),
        )

    def __iter__(self) -> Iterator[CPUAccess]:
        for address, is_write, core in zip(
            self._addresses.tolist(), self._is_write.tolist(), self._cores.tolist()
        ):
            yield CPUAccess(address, AccessKind.from_is_write(is_write), core)

    def iter_tuples(self) -> Iterator[tuple[int, bool, int]]:
        """Fast iteration as ``(address, is_write, core)`` python tuples."""
        return zip(
            self._addresses.tolist(),
            self._is_write.tolist(),
            self._cores.tolist(),
        )

    def chunks(self, chunk_size: int | None = None) -> Iterator["CPUTrace"]:
        """Yield the CPU trace as fixed-size chunks (zero-copy views).

        ``None`` yields the whole trace as one chunk; the chunked
        cache filter (:func:`repro.cpu.filter.filter_chunks`) consumes
        these to keep the CPU front-end streaming too.
        """
        if chunk_size is None:
            if len(self):
                yield self
            return
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        for start in range(0, len(self), chunk_size):
            stop = start + chunk_size
            yield CPUTrace(
                self._addresses[start:stop],
                self._is_write[start:stop],
                self._cores[start:stop],
                name=self.name,
            )

    def __repr__(self) -> str:
        return f"CPUTrace(name={self.name!r}, requests={len(self)})"

    @property
    def addresses(self) -> np.ndarray:
        view = self._addresses.view()
        view.flags.writeable = False
        return view

    @property
    def is_write(self) -> np.ndarray:
        view = self._is_write.view()
        view.flags.writeable = False
        return view

    @property
    def cores(self) -> np.ndarray:
        view = self._cores.view()
        view.flags.writeable = False
        return view

    @property
    def core_count(self) -> int:
        if not len(self):
            return 0
        return int(self._cores.max()) + 1

    def to_memory_trace(
        self,
        page_size: int = PAGE_SIZE,
        name: str | None = None,
    ) -> Trace:
        """Collapse to page granularity *without* cache filtering.

        Useful as an unfiltered baseline when studying what the cache
        hierarchy removes (see :mod:`repro.cpu.filter` for the filtered
        path).
        """
        return Trace(
            self._addresses // page_size,
            self._is_write,
            name=name or self.name,
            page_size=page_size,
        )


def interleave(traces: Sequence[Trace], name: str = "interleaved") -> Trace:
    """Round-robin interleave several page traces into one.

    Mimics how requests from concurrent processes mix at the memory
    controller.  Traces of different lengths are exhausted in round-robin
    order; page numbers are offset per source trace so address spaces do
    not collide.
    """
    if not traces:
        return Trace.empty(name=name)
    page_size = traces[0].page_size
    for trace in traces:
        if trace.page_size != page_size:
            raise ValueError("all traces must share a page size")
    offsets = []
    offset = 0
    for trace in traces:
        offsets.append(offset)
        offset += (int(trace.pages.max()) + 1) if len(trace) else 0
    iterators = [
        zip(trace.pages.tolist(), trace.is_write.tolist()) for trace in traces
    ]
    pages: list[int] = []
    writes: list[bool] = []
    live = list(range(len(traces)))
    while live:
        still_live = []
        for index in live:
            try:
                page, is_write = next(iterators[index])
            except StopIteration:
                continue
            pages.append(page + offsets[index])
            writes.append(is_write)
            still_live.append(index)
        live = still_live
    return Trace(pages, writes, name=name, page_size=page_size)
