"""Spatial trace sampling: hash membership masks and scale-up math.

The sampled simulation engine (:mod:`repro.sampling`) simulates only a
deterministic subset of a trace's pages and scales the measured counts
back up.  This module holds the trace-level primitives that decide the
subset — all vectorized numpy over the trace's page array, so selecting
the sample costs a single pass even on multi-million-request traces:

* :func:`hash_u64` — a seed-stable splitmix64 finalizer over page
  numbers.  The hash is a pure function of ``(value, salt)``: the same
  page lands on the same side of the threshold in every run, on every
  platform, which is what makes spatial sampling *consistent* (every
  access of a sampled page is kept, so per-page reuse behaviour —
  inter-access patterns, counter dynamics, stack distances — survives
  sampling exactly; only the page population shrinks).
* :func:`sample_mask` — the request-membership mask for a trace under a
  named scheme (:data:`SAMPLING_SCHEMES`).
* :func:`assign_groups` — an independent secondary hash that splits the
  sampled pages into disjoint replicate groups; each group is itself a
  spatial sample at a proportionally smaller rate, which is what the
  engine's confidence intervals are built from.

Schemes
-------
``spatial``
    SHARDS-style hash-threshold membership: a page is sampled iff
    ``hash(page, salt) < 2**64 / rate``.  Robust to any page-number
    layout (strides, segments, renumbering), and the only scheme that
    works *online* (membership is a pure function of the page number).
``stratified`` (default)
    Frequency-stratified systematic membership: pages are ranked by
    request count (hottest first) and every ``rate``-th rank is kept,
    starting at a salt-derived offset.  Like ``spatial`` it keeps every
    access of a sampled page, but the sample's request mass is balanced
    across the frequency spectrum *by construction*, where a Bernoulli
    hash draw's mass rides on which few hot pages it happens to catch —
    the dominant variance term on zipf-like traces.  Requires the full
    trace up front (an offline refinement of SHARDS), which this engine
    always has.
``modulo``
    Naive residue-class membership: ``(page + salt) % rate == 0``.
    Cheap, but aliases with regular allocation strides; kept as the
    strawman the scheme-vs-accuracy study compares against.
``temporal``
    Hash-threshold membership over *request indexes* instead of pages:
    keeps ``1/rate`` of the requests regardless of which page they
    touch.  This breaks per-page access chains (a page's surviving
    accesses are a random subsequence), so migration-policy dynamics
    distort — included precisely to demonstrate why the spatial family
    is the right default for this simulator.
"""

from __future__ import annotations

import numpy as np

from repro.trace.trace import Trace

#: Recognised sampling schemes, in documentation order.
SAMPLING_SCHEMES = ("spatial", "stratified", "modulo", "temporal")

#: splitmix64 constants (Steele, Lea & Flood; public domain reference).
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_U64 = 0xFFFFFFFFFFFFFFFF

#: Salt perturbation for the replicate-group hash, so group assignment
#: is independent of the membership decision made with the same salt.
_GROUP_SALT = 0x5DEECE66D


def hash_u64(values: np.ndarray, salt: int = 0) -> np.ndarray:
    """Vectorized splitmix64 of ``values`` (uint64), salted.

    Deterministic and platform-independent: equal inputs hash equally
    in every process, which keeps sampled RunSpecs reproducible and
    cacheable.  ``salt`` selects an independent hash function per value
    (hash-salt resampling).
    """
    with np.errstate(over="ignore"):
        x = values.astype(np.uint64, copy=True)
        x += np.uint64((salt * _GAMMA + _GAMMA) & _U64)
        x ^= x >> np.uint64(30)
        x *= np.uint64(_MIX1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_MIX2)
        x ^= x >> np.uint64(31)
    return x


def _threshold(rate: int) -> np.uint64:
    """Hash threshold selecting an expected ``1/rate`` of the keys."""
    return np.uint64((1 << 64) // rate)


def frequency_ranks(counts: np.ndarray) -> np.ndarray:
    """Frequency rank per unique page, hottest first.

    ``counts`` is the per-unique-page request count aligned with a
    *sorted* unique-page array (``np.unique`` order).  Rank 0 is the
    most-requested page; ties break by page number, so the ranking —
    and everything the ``stratified`` scheme derives from it — is
    deterministic.
    """
    order = np.argsort(-counts, kind="stable")
    ranks = np.empty(counts.size, dtype=np.int64)
    ranks[order] = np.arange(counts.size, dtype=np.int64)
    return ranks


def page_frequency_ranks(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Unique pages (sorted) and their frequency rank, hottest first."""
    pages, counts = np.unique(trace.pages, return_counts=True)
    return pages, frequency_ranks(counts)


def _request_ranks(trace: Trace) -> np.ndarray:
    """Per-request frequency rank of the page each request touches."""
    pages, ranks = page_frequency_ranks(trace)
    return ranks[np.searchsorted(pages, trace.pages)]


def _stratified_offset(rate: int, salt: int) -> int:
    """Salt-derived starting rank for systematic selection."""
    seed = hash_u64(np.asarray([salt], dtype=np.uint64))
    return int(seed[0] % np.uint64(rate))


def sample_keys(trace: Trace, scheme: str) -> np.ndarray:
    """The per-request key array the scheme hashes (pages or indexes)."""
    if scheme not in SAMPLING_SCHEMES:
        known = ", ".join(SAMPLING_SCHEMES)
        raise ValueError(f"unknown sampling scheme {scheme!r}; known: {known}")
    if scheme == "temporal":
        return np.arange(len(trace), dtype=np.int64)
    return trace.pages


def sample_mask(trace: Trace, rate: int, scheme: str = "spatial",
                salt: int = 0) -> np.ndarray:
    """Boolean request-membership mask for a 1-in-``rate`` sample.

    ``rate == 1`` keeps everything (the identity sample) for every
    scheme, which is what pins the sampled engine's K=1 equivalence to
    the exact simulator.
    """
    if rate < 1:
        raise ValueError(f"sampling rate must be >= 1, got {rate}")
    keys = sample_keys(trace, scheme)
    if rate == 1:
        return np.ones(len(trace), dtype=bool)
    if scheme == "stratified":
        ranks = _request_ranks(trace)
        return ranks % rate == _stratified_offset(rate, salt)
    if scheme == "modulo":
        return (keys + salt) % rate == 0
    return hash_u64(keys, salt) < _threshold(rate)


def page_membership(pages: np.ndarray, counts: np.ndarray, rate: int,
                    scheme: str = "spatial", salt: int = 0) -> np.ndarray:
    """Membership decision per *unique page* (the fast path).

    Equivalent to :func:`sample_mask` evaluated at the unique-page
    level: for the page-keyed schemes, ``page_membership(...)[inverse]``
    (with ``inverse`` from ``np.unique(..., return_inverse=True)``)
    reproduces the request mask exactly while hashing each page once
    instead of once per request.  The ``temporal`` scheme has no
    per-page decision and is rejected.
    """
    if rate < 1:
        raise ValueError(f"sampling rate must be >= 1, got {rate}")
    if scheme not in SAMPLING_SCHEMES:
        known = ", ".join(SAMPLING_SCHEMES)
        raise ValueError(f"unknown sampling scheme {scheme!r}; known: {known}")
    if scheme == "temporal":
        raise ValueError("temporal sampling has no per-page membership")
    if rate == 1:
        return np.ones(pages.size, dtype=bool)
    if scheme == "stratified":
        ranks = frequency_ranks(counts)
        return ranks % rate == _stratified_offset(rate, salt)
    if scheme == "modulo":
        return (pages + salt) % rate == 0
    return hash_u64(pages, salt) < _threshold(rate)


def page_groups(pages: np.ndarray, counts: np.ndarray, groups: int,
                scheme: str = "spatial", salt: int = 0,
                rate: int = 1) -> np.ndarray:
    """Replicate-group index per *unique page* (see :func:`assign_groups`)."""
    if groups < 1:
        raise ValueError(f"group count must be >= 1, got {groups}")
    if scheme == "temporal":
        raise ValueError("temporal sampling has no per-page grouping")
    if scheme == "stratified":
        if rate < 1:
            raise ValueError(f"sampling rate must be >= 1, got {rate}")
        return frequency_ranks(counts) // rate % groups
    if scheme == "modulo":
        return np.asarray((pages + salt) // max(groups, 1) % groups,
                          dtype=np.int64)
    hashed = hash_u64(pages, salt ^ _GROUP_SALT)
    return (hashed % np.uint64(groups)).astype(np.int64)


def assign_groups(trace: Trace, groups: int, scheme: str = "spatial",
                  salt: int = 0, rate: int = 1) -> np.ndarray:
    """Replicate-group index (``0..groups-1``) per request.

    For the hash schemes, a salt-perturbed secondary hash of the same
    keys the membership mask hashed, so within the sampled subset the
    groups partition the pages into ``groups`` disjoint spatial
    samples.  For ``stratified``, consecutive *selected* ranks rotate
    through the groups (``rank // rate`` enumerates them), so each
    group is itself a systematic sample at stride ``rate * groups`` —
    which is why that scheme needs the membership ``rate`` here.
    """
    if groups < 1:
        raise ValueError(f"group count must be >= 1, got {groups}")
    if scheme == "stratified":
        if rate < 1:
            raise ValueError(f"sampling rate must be >= 1, got {rate}")
        return _request_ranks(trace) // rate % groups
    keys = sample_keys(trace, scheme)
    if scheme == "modulo":
        return np.asarray((keys + salt) // max(groups, 1) % groups,
                          dtype=np.int64)
    hashed = hash_u64(keys, salt ^ _GROUP_SALT)
    return (hashed % np.uint64(groups)).astype(np.int64)


def subset_trace(trace: Trace, mask: np.ndarray) -> Trace:
    """The requests selected by ``mask``, as a new trace.

    Keeps the source's name and page size, so downstream results label
    themselves like the full run's.
    """
    return Trace(
        trace.pages[mask],
        trace.is_write[mask],
        name=trace.name,
        page_size=trace.page_size,
    )
