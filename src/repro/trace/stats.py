"""Workload characterisation (paper Table III and Section III analysis).

:func:`characterize` reduces a trace to the statistics the paper reports
per workload — working-set size, read/write counts and ratios — plus the
locality measures (reuse distance, page popularity skew, burstiness)
that Section III uses to explain why some workloads do not suit hybrid
memories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.trace import Trace


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics for one memory trace.

    The first block mirrors the columns of paper Table III; the second
    block adds the locality measures discussed in Sections III and V.
    """

    name: str
    working_set_kb: int
    read_requests: int
    write_requests: int

    unique_pages: int
    accesses_per_page: float
    write_ratio: float
    top_decile_share: float
    median_reuse_distance: float
    cold_page_fraction: float
    max_burst_length: int

    @property
    def total_requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def read_ratio(self) -> float:
        return 1.0 - self.write_ratio

    def table_row(self) -> tuple[str, str, str, str]:
        """Render as a Table III row: workload, WSS, reads (%), writes (%)."""
        total = self.total_requests
        read_pct = 100.0 * self.read_requests / total if total else 0.0
        write_pct = 100.0 * self.write_requests / total if total else 0.0
        return (
            self.name,
            f"{self.working_set_kb:,}",
            f"{self.read_requests:,} ({read_pct:.0f}%)",
            f"{self.write_requests:,} ({write_pct:.0f}%)",
        )


def _reuse_distances(pages: np.ndarray, sample_cap: int = 200_000) -> np.ndarray:
    """Stack (LRU) reuse distance per access; -1 for first touches.

    Uses the classic "time of last access + number of distinct pages
    since" approximation computed with a dict scan.  For very long
    traces only the first ``sample_cap`` accesses are measured, which is
    plenty to estimate the median.
    """
    limit = min(len(pages), sample_cap)
    last_position: dict[int, int] = {}
    stack: list[int] = []  # pages in LRU order, most recent last
    index_of: dict[int, int] = {}
    distances = np.empty(limit, dtype=np.int64)
    # A simple O(n * d) stack simulation is fine at this sample size
    # because the distance loop touches only the tail of the stack.
    for position in range(limit):
        page = int(pages[position])
        if page in index_of:
            location = index_of[page]
            distance = len(stack) - 1 - location
            distances[position] = distance
            stack.pop(location)
            for moved in range(location, len(stack)):
                index_of[stack[moved]] = moved
        else:
            distances[position] = -1
        index_of[page] = len(stack)
        stack.append(page)
        last_position[page] = position
    return distances


def _max_burst_length(pages: np.ndarray) -> int:
    """Longest run of consecutive accesses to a single page."""
    if pages.size == 0:
        return 0
    change = np.flatnonzero(np.diff(pages) != 0)
    if change.size == 0:
        return int(pages.size)
    run_lengths = np.diff(np.concatenate(([-1], change, [pages.size - 1])))
    return int(run_lengths.max())


def characterize(
    trace: Trace,
    reuse_sample_cap: int = 200_000,
) -> WorkloadStats:
    """Compute :class:`WorkloadStats` for a trace.

    Parameters
    ----------
    trace:
        The memory trace to summarise.
    reuse_sample_cap:
        Maximum number of accesses fed to the (quadratic-ish) reuse
        distance estimator.
    """
    pages = np.asarray(trace.pages)
    total = len(trace)
    if total == 0:
        return WorkloadStats(
            name=trace.name,
            working_set_kb=0,
            read_requests=0,
            write_requests=0,
            unique_pages=0,
            accesses_per_page=0.0,
            write_ratio=0.0,
            top_decile_share=0.0,
            median_reuse_distance=0.0,
            cold_page_fraction=0.0,
            max_burst_length=0,
        )

    unique, counts = np.unique(pages, return_counts=True)
    unique_pages = int(unique.shape[0])
    counts_sorted = np.sort(counts)[::-1]
    top_count = max(1, unique_pages // 10)
    top_decile_share = float(counts_sorted[:top_count].sum() / total)
    cold_page_fraction = float((counts == 1).sum() / unique_pages)

    distances = _reuse_distances(pages, sample_cap=reuse_sample_cap)
    reuses = distances[distances >= 0]
    median_reuse = float(np.median(reuses)) if reuses.size else float("inf")

    write_count = trace.write_count
    return WorkloadStats(
        name=trace.name,
        working_set_kb=unique_pages * trace.page_size // 1024,
        read_requests=total - write_count,
        write_requests=write_count,
        unique_pages=unique_pages,
        accesses_per_page=total / unique_pages,
        write_ratio=write_count / total,
        top_decile_share=top_decile_share,
        median_reuse_distance=median_reuse,
        cold_page_fraction=cold_page_fraction,
        max_burst_length=_max_burst_length(pages),
    )


def page_popularity(trace: Trace) -> np.ndarray:
    """Access count per distinct page, descending (popularity curve)."""
    _, counts = np.unique(np.asarray(trace.pages), return_counts=True)
    return np.sort(counts)[::-1]


def write_popularity(trace: Trace) -> np.ndarray:
    """Write count per distinct written page, descending."""
    pages = np.asarray(trace.pages)[np.asarray(trace.is_write)]
    if pages.size == 0:
        return np.empty(0, dtype=np.int64)
    _, counts = np.unique(pages, return_counts=True)
    return np.sort(counts)[::-1]
