"""One seeding convention for every stochastic code path.

Lint rule R002 (:mod:`repro.analysis.rules`) statically bans ambient
entropy — ``import random``, wall-clock reads, unseeded
``default_rng()`` — inside ``src/repro``.  This module is the
constructive half of that contract: stochastic functions take a
``SeedLike`` argument and call :func:`ensure_rng`, so a caller can pass
either a plain integer seed or a live ``Generator`` threaded through a
whole pipeline (trace transform chains, multi-phase workload builds)
without re-seeding at every hop.

``None`` is rejected on purpose.  Accepting it would silently fall back
to OS entropy and make a run irreproducible from its arguments — the
exact failure mode R002 exists to catch.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything :func:`ensure_rng` accepts as a reproducible seed.
SeedLike = Union[int, np.integer, np.random.SeedSequence, np.random.Generator]


def ensure_rng(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    An existing ``Generator`` is returned as-is (threading it through
    several transforms keeps one deterministic stream); an ``int`` or
    ``SeedSequence`` constructs a fresh ``PCG64`` generator.  ``None``
    and anything else raise ``TypeError`` so an unseeded path fails
    loudly instead of becoming an irreproducible run.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be an int, numpy.random.SeedSequence or Generator, "
        f"not {type(seed).__name__}; unseeded randomness is not "
        "reproducible and is rejected by design"
    )
