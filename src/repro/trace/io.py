"""Trace file input/output.

Two formats:

* **Text** (``.trc``) — one request per line, ``R 0x2a`` / ``W 42``.
  Human-readable; convenient for tiny fixtures and interoperability with
  other trace tools.  ``#`` starts a comment.
* **Binary** (``.npz``) — compressed numpy arrays.  Compact and fast;
  the format used by the benchmark harness trace cache.

Both formats round-trip :class:`~repro.trace.trace.Trace` and
:class:`~repro.trace.trace.CPUTrace` losslessly (including workload name
and page size).
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.trace.record import PAGE_SIZE, AccessKind
from repro.trace.trace import CPUTrace, Trace


def _parse_int(token: str) -> int:
    """Parse a decimal or ``0x``-prefixed hexadecimal integer."""
    token = token.strip()
    if token.lower().startswith("0x"):
        return int(token, 16)
    return int(token)


def _whole_trace_deprecated(old: str) -> None:
    warnings.warn(
        f"{old} renders the whole trace in memory; use "
        "repro.trace.source.open_trace_source(path) for chunked/"
        "streaming replay (materialize(source) reproduces the old "
        "behaviour)",
        DeprecationWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------
def write_text_trace(trace: Trace, path: str | os.PathLike[str]) -> None:
    """Write a page trace in the text format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# name: {trace.name}\n")
        handle.write(f"# page_size: {trace.page_size}\n")
        for page, is_write in trace.iter_pairs():
            handle.write(f"{'W' if is_write else 'R'} {page}\n")


def read_text_trace(path: str | os.PathLike[str]) -> Trace:
    """Read a page trace from the text format.

    .. deprecated::
        Whole-trace entry point; prefer
        :func:`repro.trace.source.open_trace_source`, which streams the
        file in fixed-size chunks at constant memory.
    """
    _whole_trace_deprecated("read_text_trace")
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_text_trace(handle, default_name=path.stem)


def parse_text_trace(handle: TextIO, default_name: str = "trace") -> Trace:
    """Parse the text trace format from an open file object."""
    from repro.trace.source import parse_trace_line

    name = default_name
    page_size = PAGE_SIZE
    pages: list[int] = []
    writes: list[bool] = []
    for line_number, raw_line in enumerate(handle, start=1):
        line = raw_line.strip()
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("name:"):
                name = body[len("name:"):].strip() or name
            elif body.startswith("page_size:"):
                page_size = _parse_int(body[len("page_size:"):])
            continue
        parsed = parse_trace_line(raw_line, line_number)
        if parsed is None:
            continue
        pages.append(parsed[0])
        writes.append(parsed[1])
    return Trace(pages, writes, name=name, page_size=page_size)


def write_text_cpu_trace(trace: CPUTrace, path: str | os.PathLike[str]) -> None:
    """Write a CPU trace in the text format (``<R|W> <addr> <core>``)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# name: {trace.name}\n")
        for address, is_write, core in trace.iter_tuples():
            handle.write(f"{'W' if is_write else 'R'} 0x{address:x} {core}\n")


def read_text_cpu_trace(path: str | os.PathLike[str]) -> CPUTrace:
    """Read a CPU trace from the text format."""
    path = Path(path)
    name = path.stem
    addresses: list[int] = []
    writes: list[bool] = []
    cores: list[int] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("name:"):
                    name = body[len("name:"):].strip() or name
                continue
            fields = line.split()
            if len(fields) < 2:
                raise ValueError(
                    f"line {line_number}: expected '<R|W> <addr> [core]', "
                    f"got {line!r}"
                )
            kind = AccessKind.parse(fields[0])
            addresses.append(_parse_int(fields[1]))
            writes.append(kind is AccessKind.WRITE)
            cores.append(_parse_int(fields[2]) if len(fields) > 2 else 0)
    return CPUTrace(addresses, writes, cores, name=name)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def save_trace(trace: Trace, path: str | os.PathLike[str]) -> None:
    """Save a page trace as a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        pages=np.asarray(trace.pages),
        is_write=np.asarray(trace.is_write),
        name=np.array(trace.name),
        page_size=np.array(trace.page_size),
    )


def load_trace(path: str | os.PathLike[str]) -> Trace:
    """Load a page trace from a ``.npz`` file.

    .. deprecated::
        Whole-trace entry point; prefer
        :func:`repro.trace.source.open_trace_source`, which serves all
        trace-file formats behind the chunked source protocol.
    """
    _whole_trace_deprecated("load_trace")
    return _load_trace_arrays(path)


def _load_trace_arrays(path: str | os.PathLike[str]) -> Trace:
    """The ``.npz`` decode itself (shared with the source adapter)."""
    with np.load(Path(path), allow_pickle=False) as data:
        return Trace(
            data["pages"],
            data["is_write"],
            name=str(data["name"]),
            page_size=int(data["page_size"]),
        )


def save_cpu_trace(trace: CPUTrace, path: str | os.PathLike[str]) -> None:
    """Save a CPU trace as a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        addresses=np.asarray(trace.addresses),
        is_write=np.asarray(trace.is_write),
        cores=np.asarray(trace.cores),
        name=np.array(trace.name),
    )


def load_cpu_trace(path: str | os.PathLike[str]) -> CPUTrace:
    """Load a CPU trace from a ``.npz`` file."""
    with np.load(Path(path), allow_pickle=False) as data:
        return CPUTrace(
            data["addresses"],
            data["is_write"],
            data["cores"],
            name=str(data["name"]),
        )
