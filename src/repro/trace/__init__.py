"""Trace infrastructure: records, containers, IO, statistics, transforms."""

from repro.trace.record import (
    ACCESS_SIZE,
    PAGE_SIZE,
    AccessKind,
    CPUAccess,
    MemoryAccess,
)
from repro.trace.trace import CPUTrace, Trace, interleave
from repro.trace.io import (
    load_cpu_trace,
    load_trace,
    read_text_cpu_trace,
    read_text_trace,
    save_cpu_trace,
    save_trace,
    write_text_cpu_trace,
    write_text_trace,
)
from repro.trace.mrc import MissRatioCurve, miss_ratio_curve, stack_distances
from repro.trace.source import (
    DEFAULT_CHUNK_REQUESTS,
    IterableTraceSource,
    NpzTraceSource,
    SourceSpec,
    TextTraceSource,
    TraceSource,
    TraceStore,
    as_source,
    materialize,
    open_trace_source,
    scan_source,
)
from repro.trace.stats import WorkloadStats, characterize, page_popularity
from repro.trace import transform

__all__ = [
    "ACCESS_SIZE",
    "DEFAULT_CHUNK_REQUESTS",
    "PAGE_SIZE",
    "AccessKind",
    "CPUAccess",
    "CPUTrace",
    "IterableTraceSource",
    "MemoryAccess",
    "MissRatioCurve",
    "NpzTraceSource",
    "SourceSpec",
    "TextTraceSource",
    "Trace",
    "TraceSource",
    "TraceStore",
    "WorkloadStats",
    "as_source",
    "materialize",
    "open_trace_source",
    "scan_source",
    "characterize",
    "interleave",
    "load_cpu_trace",
    "load_trace",
    "miss_ratio_curve",
    "page_popularity",
    "read_text_cpu_trace",
    "read_text_trace",
    "save_cpu_trace",
    "save_trace",
    "stack_distances",
    "transform",
    "write_text_cpu_trace",
    "write_text_trace",
]
