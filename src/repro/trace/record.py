"""Access records: the atoms every simulator layer consumes and produces.

Two granularities exist in the pipeline:

* :class:`CPUAccess` — a byte-addressed load/store as issued by a core,
  *before* cache filtering (the COTSon-level view).
* :class:`MemoryAccess` — a page-granularity request that reached main
  memory, *after* cache filtering (the view the paper's models consume).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

#: Default page size used throughout the reproduction (paper Section II-A).
PAGE_SIZE = 4096

#: Default memory access granularity: one 64 B cache line (Table II).
ACCESS_SIZE = 64


class AccessKind(enum.IntEnum):
    """Request direction.

    ``IntEnum`` so records can be packed into numpy integer arrays.
    """

    READ = 0
    WRITE = 1

    @property
    def is_write(self) -> bool:
        return self is AccessKind.WRITE

    @classmethod
    def from_is_write(cls, is_write: bool) -> "AccessKind":
        return cls.WRITE if is_write else cls.READ

    @classmethod
    def parse(cls, token: str) -> "AccessKind":
        """Parse a one-letter trace token (``R``/``W``, case-insensitive)."""
        normalized = token.strip().upper()
        if normalized in ("R", "READ", "0"):
            return cls.READ
        if normalized in ("W", "WRITE", "1"):
            return cls.WRITE
        raise ValueError(f"unknown access kind token: {token!r}")

    @property
    def token(self) -> str:
        return "W" if self is AccessKind.WRITE else "R"


class MemoryAccess(NamedTuple):
    """A single page-granularity request arriving at main memory."""

    page: int
    kind: AccessKind

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.token} page={self.page}"


class CPUAccess(NamedTuple):
    """A single byte-addressed request issued by a CPU core."""

    address: int
    kind: AccessKind
    core: int = 0

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE

    def page(self, page_size: int = PAGE_SIZE) -> int:
        """Page number containing this address."""
        return self.address // page_size

    def line(self, line_size: int = ACCESS_SIZE) -> int:
        """Cache-line number containing this address."""
        return self.address // line_size

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.token} 0x{self.address:x} core={self.core}"
