"""Unit-of-measure type aliases for the model layer.

The paper's models are *dimensional identities*: AMAT (Eq. 1) is
seconds, APPR (Eq. 2-3) is joules, and a silent ns<->s or pJ<->J slip
anywhere in the pipeline invalidates every figure while all value-level
tests keep passing.  These aliases make the intended dimension part of
a signature without changing runtime behaviour (they are plain
``float``/``int`` at runtime): annotate a dataclass field, function
return or parameter with one of them and the static units checker
(rules R006/R007, :mod:`repro.analysis.flow.units`) propagates and
cross-checks the dimensions flow-sensitively through the code.

Values carry SI base units: a ``Seconds`` value is in seconds (use the
``NANOSECOND``/``MILLISECOND`` constants from
:mod:`repro.memory.devices` to write one), a ``Joules`` value in
joules, a ``Bytes`` value in bytes.
"""

from __future__ import annotations

#: A duration or latency in seconds.
Seconds = float

#: An energy in joules.
Joules = float

#: A power in watts (joules per second).  ``static_power_per_gb`` is
#: annotated with this although it is watts *per GiB*: the checker
#: treats the GiB normalisation (division by ``GIB``) as part of the
#: byte dimension, so the product with a byte capacity comes out in
#: plain watts.
Watts = float

#: A size or capacity in bytes.
Bytes = int

#: A dimensionless event/object count (requests, pages, frames, ...).
Count = int

#: A dimensionless ratio or probability.
Ratio = float
