"""Synthetic workload generators: pattern framework + PARSEC profiles."""

from repro.workloads.base import (
    AccessPattern,
    BernoulliWrites,
    BurstPattern,
    LoopPattern,
    MixturePattern,
    PageBiasedWrites,
    Phase,
    PhasedWorkload,
    ReadOnly,
    SequentialScan,
    UniformPattern,
    WorkingSetPattern,
    WriteModel,
    ZipfPattern,
)
from repro.workloads.parsec import (
    PROFILES,
    WORKLOAD_NAMES,
    ParsecProfile,
    WorkloadInstance,
    all_workloads,
    parsec_workload,
    scaled_pages,
    scaled_requests,
)
from repro.workloads.mix import WorkloadMix, mix_workloads
from repro.workloads import synthetic

__all__ = [
    "AccessPattern",
    "BernoulliWrites",
    "BurstPattern",
    "LoopPattern",
    "MixturePattern",
    "PROFILES",
    "PageBiasedWrites",
    "ParsecProfile",
    "Phase",
    "PhasedWorkload",
    "ReadOnly",
    "SequentialScan",
    "UniformPattern",
    "WORKLOAD_NAMES",
    "WorkingSetPattern",
    "WorkloadInstance",
    "WorkloadMix",
    "WriteModel",
    "ZipfPattern",
    "all_workloads",
    "mix_workloads",
    "parsec_workload",
    "scaled_pages",
    "scaled_requests",
    "synthetic",
]
