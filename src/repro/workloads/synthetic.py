"""Generic synthetic workloads for tests, examples and ablations.

These are not tied to any PARSEC profile; they exercise specific policy
behaviours in isolation (pure locality, pure streaming, adversarial
ping-pong, threshold-length bursts).
"""

from __future__ import annotations

from repro.trace.trace import Trace
from repro.workloads.base import (
    BernoulliWrites,
    BurstPattern,
    LoopPattern,
    MixturePattern,
    Phase,
    PhasedWorkload,
    SequentialScan,
    UniformPattern,
    ZipfPattern,
)


def zipf_workload(
    pages: int = 512,
    requests: int = 50_000,
    alpha: float = 1.2,
    write_ratio: float = 0.3,
    seed: int = 0,
    name: str = "zipf",
) -> Trace:
    """Skewed-popularity workload: the bread-and-butter locality case."""
    workload = PhasedWorkload(name, [
        Phase(SequentialScan(pages), BernoulliWrites(write_ratio), pages),
        Phase(ZipfPattern(pages, alpha=alpha, permute_seed=seed),
              BernoulliWrites(write_ratio), requests),
    ])
    return workload.build(seed=seed)


def streaming_workload(
    pages: int = 2048,
    requests: int = 50_000,
    write_ratio: float = 0.1,
    seed: int = 0,
    name: str = "streaming",
) -> Trace:
    """Pure sequential streaming: worst case for any caching tier."""
    workload = PhasedWorkload(name, [
        Phase(SequentialScan(pages), BernoulliWrites(write_ratio), requests),
    ])
    return workload.build(seed=seed)


def scan_loop_workload(
    pages: int = 512,
    window: int | None = None,
    requests: int = 50_000,
    write_ratio: float = 0.05,
    seed: int = 0,
    name: str = "scan-loop",
) -> Trace:
    """Repeated sweeps over a window (streamcluster-like)."""
    workload = PhasedWorkload(name, [
        Phase(LoopPattern(pages, window=window), BernoulliWrites(write_ratio),
              requests),
    ])
    return workload.build(seed=seed)


def burst_workload(
    pages: int = 512,
    requests: int = 50_000,
    burst_low: int = 8,
    burst_high: int = 16,
    write_ratio: float = 0.2,
    seed: int = 0,
    name: str = "bursty",
) -> Trace:
    """Threshold-length bursts (raytrace-like promotion bait)."""
    workload = PhasedWorkload(name, [
        Phase(SequentialScan(pages), BernoulliWrites(write_ratio), pages),
        Phase(BurstPattern(pages, burst_low, burst_high),
              BernoulliWrites(write_ratio), requests),
    ])
    return workload.build(seed=seed)


def pingpong_workload(
    pages: int = 512,
    requests: int = 50_000,
    write_ratio: float = 0.3,
    seed: int = 0,
    name: str = "pingpong",
) -> Trace:
    """Scattered writes over a low-locality read stream.

    Under CLOCK-DWF every write to an NVM page forces a round trip;
    under the proposed scheme the write is served in place.  This is
    the distilled canneal/fluidanimate failure mode.
    """
    pattern = MixturePattern([
        (UniformPattern(pages), 0.4),
        (ZipfPattern(pages, alpha=0.9, permute_seed=seed), 0.6),
    ])
    workload = PhasedWorkload(name, [
        Phase(SequentialScan(pages), BernoulliWrites(write_ratio), pages),
        Phase(pattern, BernoulliWrites(write_ratio), requests),
    ])
    return workload.build(seed=seed)


def adversarial_cold_workload(
    pages: int = 1024,
    requests: int = 30_000,
    seed: int = 0,
    name: str = "cold-churn",
) -> Trace:
    """Mostly-cold churn: high fault pressure, little reuse."""
    workload = PhasedWorkload(name, [
        Phase(UniformPattern(pages), BernoulliWrites(0.25), requests),
    ])
    return workload.build(seed=seed)
