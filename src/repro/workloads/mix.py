"""Multi-programmed workload mixes.

The paper's COTSon setup runs one multi-threaded PARSEC benchmark at a
time, but the same machinery extends to consolidated servers running
several programs against one hybrid memory.  A mix interleaves several
rendered workloads round-robin (the memory controller's view of
concurrent processes), re-sizes the machine for the combined footprint
with the paper's rule, and blends the per-workload compute gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.specs import (
    DEFAULT_DRAM_FRACTION,
    DEFAULT_MEMORY_FRACTION,
    HybridMemorySpec,
)
from repro.trace.trace import Trace, interleave
from repro.workloads.parsec import WorkloadInstance, parsec_workload


@dataclass(frozen=True)
class WorkloadMix:
    """A consolidated multi-program workload."""

    name: str
    members: tuple[str, ...]
    trace: Trace
    spec: HybridMemorySpec
    warmup_fraction: float
    inter_request_gap: float


def mix_workloads(
    names: tuple[str, ...] | list[str],
    request_scale: float | None = None,
    footprint_scale: float | None = None,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    dram_fraction: float = DEFAULT_DRAM_FRACTION,
    seed: int = 2016,
) -> WorkloadMix:
    """Interleave several PARSEC workloads into one mix.

    Address spaces are kept disjoint (each member's pages are offset),
    traces interleave round-robin, the machine is sized for the union
    footprint, and the compute gap is the request-weighted mean of the
    members' gaps.
    """
    if len(names) < 2:
        raise ValueError("a mix needs at least two workloads")
    kwargs = {}
    if request_scale is not None:
        kwargs["request_scale"] = request_scale
    if footprint_scale is not None:
        kwargs["footprint_scale"] = footprint_scale
    instances: list[WorkloadInstance] = [
        parsec_workload(name, seed=seed + index, **kwargs)
        for index, name in enumerate(names)
    ]
    mix_name = "+".join(names)
    trace = interleave([inst.trace for inst in instances], name=mix_name)

    total_requests = sum(len(inst.trace) for inst in instances)
    gap = sum(
        inst.inter_request_gap * len(inst.trace) for inst in instances
    ) / total_requests
    # warm-up long enough to cover every member's own warm-up slice
    warmup = max(inst.warmup_fraction for inst in instances)

    # The devices carry each member's static compensation; reuse the
    # first member's devices (compensations are footprint-ratio-based
    # and therefore close across members at one footprint scale).
    spec = HybridMemorySpec.for_footprint(
        trace.unique_pages,
        memory_fraction=memory_fraction,
        dram_fraction=dram_fraction,
        dram=instances[0].spec.dram,
        nvm=instances[0].spec.nvm,
        disk=instances[0].spec.disk,
    )
    return WorkloadMix(
        name=mix_name,
        members=tuple(names),
        trace=trace,
        spec=spec,
        warmup_fraction=warmup,
        inter_request_gap=gap,
    )
