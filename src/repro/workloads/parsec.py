"""The twelve PARSEC-3.0 workload profiles of paper Table III.

The paper captures main-memory traces from PARSEC under the COTSon
full-system simulator.  Without PARSEC binaries, each workload is
regenerated synthetically from (a) its Table III statistics — working
set size, read/write counts — and (b) the qualitative traits the paper
uses to explain its results:

* *blackscholes*: read-only, tiny footprint, compute-bound.
* most workloads: a skewed hot set whose *write working set* is compact
  and aligned with the hottest pages (the regime CLOCK-DWF is designed
  for — its DRAM roughly holds the write-dominant pages).
* *canneal* / *fluidanimate*: writes scattered over low-locality or
  periodically swept pages, which bounces pages between the modules
  under CLOCK-DWF ("migrate a data page to NVM and after a short
  time ... back to DRAM", Section III-A).
* *raytrace*: long read bursts that straddle the proposed scheme's
  read threshold, baiting non-beneficial promotions (Section V-B).
* *vips*: write bursts near the write threshold — CLOCK-DWF's
  migrate-on-first-write handles them slightly better (Section V-B).
* *streamcluster*: "a large burst of accesses and a small memory
  footprint" — repeated sweeps, 99.8 % reads, dynamic-power dominated.

Scaling: request counts and footprints are scaled down so a trace
simulates in seconds (ratios preserved); the devices' *static power per
GB* is scaled **up** by the footprint reduction so the modelled static
power still corresponds to the paper-scale capacity — Fig. 1/2a/4a's
static-vs-dynamic split survives scaling.  Each profile also carries a
``compute_gap_ns``: the mean CPU/cache time between main-memory
requests, which controls how much wall-time static power is prorated
onto each request (Section III's LLC-hit-ratio effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.memory.devices import dram_spec, hdd_spec, pcm_spec
from repro.memory.specs import (
    DEFAULT_DRAM_FRACTION,
    DEFAULT_MEMORY_FRACTION,
    HybridMemorySpec,
)
from repro.trace.trace import Trace
from repro.workloads.base import (
    AlignedWrites,
    BernoulliWrites,
    BurstPattern,
    ComponentPhase,
    LoopPattern,
    MixturePattern,
    Phase,
    PhasedWorkload,
    ReadOnly,
    SequentialScan,
    UniformPattern,
    WorkingSetPattern,
    ZipfPattern,
    solve_cold_ratio,
)


@dataclass(frozen=True)
class ParsecProfile:
    """One Table III row plus the traits used to resynthesise it."""

    name: str
    working_set_kb: int
    read_requests: int
    write_requests: int
    compute_gap_ns: float
    description: str

    @property
    def total_requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def write_ratio(self) -> float:
        return self.write_requests / self.total_requests

    @property
    def footprint_pages(self) -> int:
        """Paper-scale distinct 4 KB pages."""
        return max(1, self.working_set_kb // 4)


#: Paper Table III, verbatim.  ``compute_gap_ns`` is our calibration of
#: each workload's memory-request rate (bigger gap = more LLC-friendly).
PROFILES: dict[str, ParsecProfile] = {
    profile.name: profile
    for profile in (
        ParsecProfile("blackscholes", 5_188, 26_242, 0, 4_000.0,
                      "option pricing; read-only, compute-bound"),
        ParsecProfile("bodytrack", 25_304, 658_606, 403_835, 1_300.0,
                      "body tracking; write-rich hot set"),
        ParsecProfile("canneal", 164_768, 24_432_900, 653_623, 100.0,
                      "simulated annealing; scattered low-locality access"),
        ParsecProfile("dedup", 512_460, 17_187_130, 6_998_314, 80.0,
                      "stream dedup; streaming plus hash-table locality"),
        ParsecProfile("facesim", 210_368, 11_730_278, 6_137_519, 90.0,
                      "physics simulation; drifting phase working sets"),
        ParsecProfile("ferret", 68_904, 54_538_546, 7_033_936, 320.0,
                      "similarity search; read-mostly hot index"),
        ParsecProfile("fluidanimate", 266_120, 9_951_202, 4_492_775, 75.0,
                      "fluid dynamics; periodic grid sweeps"),
        ParsecProfile("freqmine", 156_108, 8_427_181, 3_947_122, 160.0,
                      "frequent itemset mining; skewed FP-tree reuse"),
        ParsecProfile("raytrace", 57_116, 1_807_142, 370_573, 450.0,
                      "ray tracing; threshold-length access bursts"),
        ParsecProfile("streamcluster", 15_452, 168_666_464, 448_612, 8.0,
                      "online clustering; burst sweeps over a small set"),
        ParsecProfile("vips", 115_380, 5_802_657, 4_117_660, 180.0,
                      "image processing; scans with short write bursts"),
        ParsecProfile("x264", 80_232, 14_669_353, 5_220_400, 280.0,
                      "video encoding; hot reference frames plus scans"),
    )
}

#: Paper order (Table III / all figures).
WORKLOAD_NAMES: tuple[str, ...] = tuple(PROFILES)


@dataclass(frozen=True)
class WorkloadInstance:
    """A rendered workload: trace, sized machine, measurement settings."""

    profile: ParsecProfile
    trace: Trace
    spec: HybridMemorySpec
    warmup_fraction: float
    inter_request_gap: float

    @property
    def name(self) -> str:
        return self.profile.name


# ----------------------------------------------------------------------
# Per-workload phase builders
# ----------------------------------------------------------------------
_PhaseBuilder = Callable[[int, int, ParsecProfile, int], list[Phase]]

#: Write-hot pages as a fraction of the footprint.  Set just above the
#: DRAM share (10 % of 75 % = 7.5 %): the write working set *almost*
#: fits in DRAM, so CLOCK-DWF keeps shuttling the overflow between the
#: modules (one migration per NVM write) while the proposed scheme
#: serves those writes in place and promotes only the pages that prove
#: durably hot — the paper's central effect.
WRITE_SET_FRACTION = 0.085


def _init_scan(pages: int, write_ratio: float) -> Phase:
    """First-touch initialisation pass over the whole footprint."""
    return Phase(SequentialScan(pages), BernoulliWrites(write_ratio), pages)


def _aligned_writes(
    zipf: ZipfPattern,
    zipf_weight: float,
    pages: int,
    target_ratio: float,
    max_hot_ratio: float = 0.9,
    write_set_fraction: float | None = None,
) -> AlignedWrites:
    """Writes concentrated on the zipf pattern's hottest pages.

    The hot-write probability is capped so that the *overall* write
    ratio matches Table III; when the hot pages' traffic share exceeds
    the target, all writes are concentrated and the cold ratio is 0.
    """
    fraction = (WRITE_SET_FRACTION if write_set_fraction is None
                else write_set_fraction)
    top = max(1, int(pages * fraction))
    share = zipf_weight * zipf.traffic_share(top)
    hot_ratio = min(max_hot_ratio, target_ratio / max(share, 1e-9))
    cold_ratio = solve_cold_ratio(target_ratio, share, hot_ratio)
    return AlignedWrites(zipf.top_pages(top), hot_ratio, cold_ratio)


def _blackscholes(pages: int, requests: int, profile: ParsecProfile,
                  seed: int) -> list[Phase]:
    hot = max(2, int(pages * 0.6))
    return [
        Phase(SequentialScan(pages), ReadOnly(), pages),
        Phase(ZipfPattern(hot, alpha=1.2, permute_seed=seed), ReadOnly(),
              requests),
    ]


def _hotset(pages: int, requests: int, profile: ParsecProfile, seed: int,
            hot_fraction: float, alpha: float,
            tail_weight: float = 0.005,
            write_set_fraction: float | None = None) -> list[Phase]:
    """Generic hot-set workload with a near-DRAM-sized write working set."""
    ratio = profile.write_ratio
    hot = max(2, int(pages * hot_fraction))
    zipf = ZipfPattern(hot, alpha=alpha, permute_seed=seed)
    zipf_weight = 1.0 - tail_weight
    pattern = MixturePattern([
        (zipf, zipf_weight),
        (UniformPattern(pages), tail_weight),
    ])
    writes = _aligned_writes(zipf, zipf_weight, pages, ratio,
                             write_set_fraction=write_set_fraction)
    return [_init_scan(pages, ratio), Phase(pattern, writes, requests)]


def _bodytrack(pages, requests, profile, seed):
    # The write set overflows DRAM a little more than for the other
    # hot-set workloads (bodytrack's footprint is tiny, so its write
    # pages are comparatively hot).
    return _hotset(pages, requests, profile, seed,
                   hot_fraction=0.45, alpha=1.1, write_set_fraction=0.09)


def _canneal(pages, requests, profile, seed):
    # Low locality: annealing pokes elements all over the netlist, and
    # the rare writes land on arbitrary pages — most of them NVM
    # residents, which is what thrashes CLOCK-DWF.
    ratio = profile.write_ratio
    netlist = max(2, int(pages * 0.70))
    pattern = MixturePattern([
        (ZipfPattern(netlist, alpha=0.95, permute_seed=seed), 0.985),
        (UniformPattern(pages), 0.015),
    ])
    return [_init_scan(pages, ratio),
            Phase(pattern, BernoulliWrites(ratio), requests)]


def _dedup(pages, requests, profile, seed):
    # Streaming passes stay inside a chunk window that fits in memory
    # (real dedup streams from buffers the OS keeps resident); the hash
    # table adds skewed reuse with write-heavy bucket pages.
    ratio = profile.write_ratio
    table = max(2, int(pages * 0.4))
    stream_window = max(2, int(pages * 0.55))
    zipf = ZipfPattern(table, alpha=1.2, permute_seed=seed)
    pattern = MixturePattern([
        (zipf, 0.62),
        (LoopPattern(pages, window=stream_window, jitter=0.004), 0.38),
    ])
    writes = _aligned_writes(zipf, 0.62, pages, ratio)
    return [_init_scan(pages, ratio), Phase(pattern, writes, requests)]


def _facesim(pages, requests, profile, seed):
    ratio = profile.write_ratio
    zipf = ZipfPattern(max(2, int(pages * 0.35)), alpha=1.15,
                       permute_seed=seed)
    drift = WorkingSetPattern(
        pages,
        hot_pages=max(2, int(pages * 0.35)),
        hot_probability=0.997,
        phase_length=max(1000, requests // 5),
        drift=max(1, int(pages * 0.05)),
    )
    pattern = MixturePattern([(zipf, 0.6), (drift, 0.4)])
    writes = _aligned_writes(zipf, 0.6, pages, ratio)
    return [_init_scan(pages, ratio), Phase(pattern, writes, requests)]


def _ferret(pages, requests, profile, seed):
    return _hotset(pages, requests, profile, seed,
                   hot_fraction=0.5, alpha=1.15)


def _fluidanimate(pages, requests, profile, seed):
    # Periodic sweeps over the particle grid: every page comes around
    # once per timestep, gets a read-modify-write, and cools until the
    # next sweep — the back-and-forth CLOCK-DWF migrates on every time.
    ratio = profile.write_ratio
    grid = max(2, int(pages * 0.6))
    zipf = ZipfPattern(max(2, int(pages * 0.2)), alpha=1.1,
                       permute_seed=seed)
    pattern = MixturePattern([
        (LoopPattern(pages, window=grid, jitter=0.005), 0.65),
        (zipf, 0.35),
    ])
    # Some writes concentrate on the hot cell pages, but a substantial
    # share sweeps the grid (the read-modify-write update), landing on
    # NVM residents — deliberately *not* a DRAM-sized write set.
    top = max(1, int(pages * WRITE_SET_FRACTION))
    share = 0.35 * zipf.traffic_share(top)
    sweep_ratio = 0.006
    hot_ratio = min(
        0.9,
        max(0.0, (ratio - (1.0 - share) * sweep_ratio) / max(share, 1e-9)),
    )
    writes = AlignedWrites(zipf.top_pages(top), hot_ratio, sweep_ratio)
    return [_init_scan(pages, ratio), Phase(pattern, writes, requests)]


def _freqmine(pages, requests, profile, seed):
    return _hotset(pages, requests, profile, seed,
                   hot_fraction=0.4, alpha=1.3)


def _raytrace(pages, requests, profile, seed):
    # Rays visit BVH/geometry pages in long read bursts, then move on.
    # Burst lengths straddle the scheme's default read threshold, so a
    # fixed threshold promotes pages that are already done being hot.
    ratio = profile.write_ratio
    geometry = max(2, int(pages * 0.62))
    zipf = ZipfPattern(max(2, int(pages * 0.25)), alpha=1.2,
                       permute_seed=seed)
    pattern = MixturePattern([
        (BurstPattern(geometry, burst_low=12, burst_high=22), 0.12),
        (zipf, 0.88),
    ])
    writes = _aligned_writes(zipf, 0.88, pages, ratio)
    return [_init_scan(pages, ratio), Phase(pattern, writes, requests)]


def _streamcluster(pages, requests, profile, seed):
    # The whole (tiny) point set is swept over and over — one long
    # burst of reads — while the few centroid pages absorb the updates.
    ratio = profile.write_ratio
    zipf = ZipfPattern(max(2, int(pages * 0.08)), alpha=1.0,
                       permute_seed=seed)
    pattern = MixturePattern([
        (LoopPattern(pages, window=max(2, int(pages * 0.70)),
                     jitter=0.002), 0.9),
        (zipf, 0.1),
    ])
    writes = _aligned_writes(zipf, 0.1, pages, ratio)
    return [_init_scan(pages, ratio), Phase(pattern, writes, requests)]


def _vips(pages, requests, profile, seed):
    # Image rows stream through while tile buffers take write bursts
    # whose write count hovers at the proposed scheme's threshold:
    # CLOCK-DWF's migrate-on-first-write serves the rest of the burst
    # from DRAM, while the proposed scheme pays NVM writes *and* then
    # promotes — the Section V-B case where CLOCK-DWF edges ahead.
    ratio = profile.write_ratio
    rows = max(2, int(pages * 0.55))
    tiles = max(2, int(pages * 0.62))
    zipf = ZipfPattern(max(2, int(pages * 0.3)), alpha=1.1,
                       permute_seed=seed)
    row_weight, burst_weight, zipf_weight = 0.28, 0.10, 0.62
    row_writes, burst_writes = 0.005, 0.60
    # Balance the zipf component's write ratio so the overall mix
    # matches Table III (41.5 % writes).
    zipf_ratio = min(1.0, max(0.0, (
        ratio - row_weight * row_writes - burst_weight * burst_writes
    ) / zipf_weight))
    phase = ComponentPhase([
        (LoopPattern(pages, window=rows, jitter=0.003), row_weight,
         BernoulliWrites(row_writes)),
        (BurstPattern(tiles, burst_low=20, burst_high=30), burst_weight,
         BernoulliWrites(burst_writes)),
        (zipf, zipf_weight,
         _aligned_writes(zipf, 1.0, pages, zipf_ratio,
                         write_set_fraction=0.07)),
    ], requests)
    return [_init_scan(pages, ratio), phase]


def _x264(pages, requests, profile, seed):
    ratio = profile.write_ratio
    refs = max(2, int(pages * 0.35))
    frame = max(2, int(pages * 0.5))
    zipf = ZipfPattern(refs, alpha=1.4, permute_seed=seed)
    pattern = MixturePattern([
        (zipf, 0.7),
        (LoopPattern(pages, window=frame, jitter=0.003), 0.3),
    ])
    writes = _aligned_writes(zipf, 0.7, pages, ratio)
    return [_init_scan(pages, ratio), Phase(pattern, writes, requests)]


_BUILDERS: dict[str, _PhaseBuilder] = {
    "blackscholes": _blackscholes,
    "bodytrack": _bodytrack,
    "canneal": _canneal,
    "dedup": _dedup,
    "facesim": _facesim,
    "ferret": _ferret,
    "fluidanimate": _fluidanimate,
    "freqmine": _freqmine,
    "raytrace": _raytrace,
    "streamcluster": _streamcluster,
    "vips": _vips,
    "x264": _x264,
}


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
DEFAULT_REQUEST_SCALE = 1.0 / 400.0
DEFAULT_FOOTPRINT_SCALE = 1.0 / 64.0
MIN_REQUESTS = 20_000
MAX_REQUESTS = 250_000
MIN_PAGES = 128


def scaled_pages(profile: ParsecProfile,
                 footprint_scale: float = DEFAULT_FOOTPRINT_SCALE) -> int:
    """Scaled footprint (distinct pages) for a profile."""
    return max(MIN_PAGES, round(profile.footprint_pages * footprint_scale))


def scaled_requests(profile: ParsecProfile,
                    request_scale: float = DEFAULT_REQUEST_SCALE) -> int:
    """Scaled measured-request count for a profile."""
    scaled = round(profile.total_requests * request_scale)
    return max(MIN_REQUESTS, min(MAX_REQUESTS, scaled))


def parsec_workload(
    name: str,
    request_scale: float = DEFAULT_REQUEST_SCALE,
    footprint_scale: float = DEFAULT_FOOTPRINT_SCALE,
    memory_fraction: float = DEFAULT_MEMORY_FRACTION,
    dram_fraction: float = DEFAULT_DRAM_FRACTION,
    seed: int = 2016,
) -> WorkloadInstance:
    """Render one PARSEC workload: trace + machine spec + settings.

    The machine follows the paper's sizing rule over the *scaled*
    footprint, with the devices' static power rescaled so background
    power corresponds to the unscaled capacity (see module docstring).
    """
    try:
        profile = PROFILES[name]
    except KeyError:
        known = ", ".join(WORKLOAD_NAMES)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    pages = scaled_pages(profile, footprint_scale)
    requests = scaled_requests(profile, request_scale)
    builder = _BUILDERS[profile.name]
    phases = builder(pages, requests, profile, seed)
    workload = PhasedWorkload(profile.name, phases)
    trace = workload.build(seed=seed)

    static_compensation = profile.footprint_pages / pages
    spec = HybridMemorySpec.for_footprint(
        pages,
        memory_fraction=memory_fraction,
        dram_fraction=dram_fraction,
        dram=dram_spec().scaled(static=static_compensation),
        nvm=pcm_spec().scaled(static=static_compensation),
        disk=hdd_spec(),
    )
    # Warm-up covers the initialisation scan plus a stabilisation slice
    # of the measured phases.
    warmup_requests = pages + max(1, requests // 5)
    warmup_fraction = min(0.9, warmup_requests / len(trace))
    return WorkloadInstance(
        profile=profile,
        trace=trace,
        spec=spec,
        warmup_fraction=warmup_fraction,
        inter_request_gap=profile.compute_gap_ns * 1e-9,
    )


def all_workloads(
    request_scale: float = DEFAULT_REQUEST_SCALE,
    footprint_scale: float = DEFAULT_FOOTPRINT_SCALE,
    seed: int = 2016,
    names: tuple[str, ...] | None = None,
) -> list[WorkloadInstance]:
    """Render every (or a subset of) Table III workload."""
    return [
        parsec_workload(
            name,
            request_scale=request_scale,
            footprint_scale=footprint_scale,
            seed=seed,
        )
        for name in (names or WORKLOAD_NAMES)
    ]
