"""Composable synthetic access-pattern framework.

The paper's evaluation feeds main-memory traces (captured from PARSEC
under COTSon) to the policies.  We regenerate equivalent traces from
parameterised *patterns* — reusable building blocks for page-reference
behaviour — combined with *write models* that decide request direction.
Everything is driven by an explicit ``numpy`` RNG, so a seed fully
determines a trace.

Patterns produce page-id arrays over a dense universe ``[0, pages)``;
write models turn a page array into a boolean write-flag array;
:class:`PhasedWorkload` stitches ``(pattern, write model, length)``
phases into a :class:`~repro.trace.trace.Trace`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.trace.record import PAGE_SIZE
from repro.trace.rng import SeedLike, ensure_rng
from repro.trace.trace import Trace


class AccessPattern(abc.ABC):
    """Generates a sequence of page ids over ``[0, pages)``."""

    def __init__(self, pages: int) -> None:
        if pages < 1:
            raise ValueError("pattern needs at least one page")
        self.pages = pages

    @abc.abstractmethod
    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Produce ``count`` page ids (int64 array)."""

    def _check_count(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")


class UniformPattern(AccessPattern):
    """No locality at all: every page equally likely (canneal-style)."""

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._check_count(count)
        return rng.integers(0, self.pages, size=count, dtype=np.int64)


class ZipfPattern(AccessPattern):
    """Zipf-distributed popularity, the classic page-access skew.

    Rank ``k`` (0-based) is accessed with probability proportional to
    ``1 / (k + 1) ** alpha``.  A seed-stable permutation maps ranks to
    page ids so hot pages are scattered across the address space.
    """

    def __init__(self, pages: int, alpha: float = 1.0,
                 permute_seed: SeedLike = 0) -> None:
        super().__init__(pages)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        weights = 1.0 / np.arange(1, pages + 1, dtype=np.float64) ** alpha
        self._probabilities = weights / weights.sum()
        permuter = ensure_rng(permute_seed)
        self._rank_to_page = permuter.permutation(pages).astype(np.int64)

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._check_count(count)
        ranks = rng.choice(self.pages, size=count, p=self._probabilities)
        return self._rank_to_page[ranks]

    def top_pages(self, count: int) -> np.ndarray:
        """Page ids of the ``count`` most popular ranks."""
        return self._rank_to_page[:max(0, count)].copy()

    def traffic_share(self, count: int) -> float:
        """Fraction of this pattern's accesses hitting the top ranks."""
        if count <= 0:
            return 0.0
        return float(self._probabilities[:count].sum())


class SequentialScan(AccessPattern):
    """A streaming pass: consecutive pages with optional stride and wrap.

    The scan cursor persists across ``generate`` calls, so a pattern
    reused over several phases keeps streaming forward.
    """

    def __init__(self, pages: int, stride: int = 1, start: int = 0) -> None:
        super().__init__(pages)
        if stride == 0:
            raise ValueError("stride must be non-zero")
        self.stride = stride
        self._cursor = start % pages

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._check_count(count)
        offsets = np.arange(count, dtype=np.int64) * self.stride
        result = (self._cursor + offsets) % self.pages
        if count:
            self._cursor = int((result[-1] + self.stride) % self.pages)
        return result


class LoopPattern(AccessPattern):
    """Repeated sweeps over a window — the streamcluster signature.

    Scans ``window`` pages in order, then restarts, endlessly; a small
    per-access jitter probability models out-of-loop references.
    """

    def __init__(self, pages: int, window: int | None = None,
                 jitter: float = 0.0) -> None:
        super().__init__(pages)
        self.window = min(window or pages, pages)
        if self.window < 1:
            raise ValueError("window must be at least one page")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.jitter = jitter
        self._cursor = 0

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._check_count(count)
        positions = (self._cursor + np.arange(count, dtype=np.int64))
        result = positions % self.window
        if count:
            self._cursor = int((positions[-1] + 1) % self.window)
        if self.jitter > 0.0 and count:
            jitter_mask = rng.random(count) < self.jitter
            result = result.copy()
            result[jitter_mask] = rng.integers(
                0, self.pages, size=int(jitter_mask.sum()), dtype=np.int64
            )
        return result


class BurstPattern(AccessPattern):
    """Pick a page, hammer it for a burst, move on.

    ``burst_low``/``burst_high`` bound the (uniform) burst length.  Set
    the bounds just above a policy's promotion threshold and every
    burst baits a non-beneficial migration — the raytrace failure mode
    discussed in Section V-B.
    """

    def __init__(self, pages: int, burst_low: int, burst_high: int) -> None:
        super().__init__(pages)
        if not 1 <= burst_low <= burst_high:
            raise ValueError("need 1 <= burst_low <= burst_high")
        self.burst_low = burst_low
        self.burst_high = burst_high

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._check_count(count)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        mean_burst = (self.burst_low + self.burst_high) / 2
        bursts = int(count / mean_burst) + 2
        lengths = rng.integers(
            self.burst_low, self.burst_high + 1, size=bursts, dtype=np.int64
        )
        chosen = rng.integers(0, self.pages, size=bursts, dtype=np.int64)
        result = np.repeat(chosen, lengths)
        while result.shape[0] < count:  # pragma: no cover - defensive top-up
            extra_page = rng.integers(0, self.pages, dtype=np.int64)
            result = np.concatenate(
                [result, np.full(self.burst_high, extra_page, dtype=np.int64)]
            )
        return result[:count]


class WorkingSetPattern(AccessPattern):
    """A drifting hot working set over a colder universe.

    With probability ``hot_probability`` an access lands (uniformly) in
    a contiguous hot window of ``hot_pages`` pages; the window slides by
    ``drift`` pages every ``phase_length`` accesses, modelling program
    phases (facesim/ferret-style).
    """

    def __init__(
        self,
        pages: int,
        hot_pages: int,
        hot_probability: float = 0.9,
        phase_length: int = 10_000,
        drift: int | None = None,
    ) -> None:
        super().__init__(pages)
        if not 1 <= hot_pages <= pages:
            raise ValueError("hot_pages must be within the universe")
        if not 0.0 <= hot_probability <= 1.0:
            raise ValueError("hot_probability must be in [0, 1]")
        if phase_length < 1:
            raise ValueError("phase_length must be positive")
        self.hot_pages = hot_pages
        self.hot_probability = hot_probability
        self.phase_length = phase_length
        self.drift = hot_pages // 2 if drift is None else drift
        self._offset = 0
        self._ticks = 0

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._check_count(count)
        result = np.empty(count, dtype=np.int64)
        produced = 0
        while produced < count:
            room = min(count - produced,
                       self.phase_length - self._ticks % self.phase_length)
            hot_mask = rng.random(room) < self.hot_probability
            chunk = rng.integers(0, self.pages, size=room, dtype=np.int64)
            hot_hits = int(hot_mask.sum())
            chunk[hot_mask] = (
                self._offset
                + rng.integers(0, self.hot_pages, size=hot_hits,
                               dtype=np.int64)
            ) % self.pages
            result[produced:produced + room] = chunk
            produced += room
            self._ticks += room
            if self._ticks % self.phase_length == 0:
                self._offset = (self._offset + self.drift) % self.pages
        return result


class MixturePattern(AccessPattern):
    """Probabilistic blend of sub-patterns (e.g. 70 % zipf + 30 % scan).

    Each access is drawn from one component; components generate their
    own contiguous streams, which are then interleaved according to the
    drawn choices, so stateful components (scans, loops) stay coherent.
    """

    def __init__(
        self,
        components: Sequence[tuple[AccessPattern, float]],
    ) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        pages = max(pattern.pages for pattern, _ in components)
        super().__init__(pages)
        weights = np.array([weight for _, weight in components], dtype=float)
        if (weights <= 0).any():
            raise ValueError("component weights must be positive")
        self._patterns = [pattern for pattern, _ in components]
        self._probabilities = weights / weights.sum()

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._check_count(count)
        choices = rng.choice(
            len(self._patterns), size=count, p=self._probabilities
        )
        result = np.empty(count, dtype=np.int64)
        for index, pattern in enumerate(self._patterns):
            mask = choices == index
            need = int(mask.sum())
            if need:
                result[mask] = pattern.generate(rng, need)
        return result


# ----------------------------------------------------------------------
# Write models
# ----------------------------------------------------------------------
class WriteModel(abc.ABC):
    """Chooses the direction (read/write) of each request."""

    @abc.abstractmethod
    def flags(self, rng: np.random.Generator,
              pages: np.ndarray) -> np.ndarray:
        """Boolean write-flag array aligned with ``pages``."""


class BernoulliWrites(WriteModel):
    """Every request is a write with a fixed probability."""

    def __init__(self, write_ratio: float) -> None:
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        self.write_ratio = write_ratio

    def flags(self, rng: np.random.Generator,
              pages: np.ndarray) -> np.ndarray:
        if self.write_ratio == 0.0:
            return np.zeros(pages.shape[0], dtype=bool)
        return rng.random(pages.shape[0]) < self.write_ratio


class ReadOnly(BernoulliWrites):
    """All reads (blackscholes)."""

    def __init__(self) -> None:
        super().__init__(0.0)


class PageBiasedWrites(WriteModel):
    """Writes concentrate on a subset of pages.

    A fraction ``write_page_fraction`` of pages (chosen by a stable
    hash) absorbs most writes: requests to those pages are writes with
    probability ``hot_write_ratio``, everything else with
    ``cold_write_ratio``.  This separates *write-dominant pages* from a
    global write ratio — the distinction CLOCK-DWF's DRAM clock relies
    on.
    """

    def __init__(
        self,
        write_page_fraction: float,
        hot_write_ratio: float,
        cold_write_ratio: float = 0.0,
    ) -> None:
        for name, value in (
            ("write_page_fraction", write_page_fraction),
            ("hot_write_ratio", hot_write_ratio),
            ("cold_write_ratio", cold_write_ratio),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        self.write_page_fraction = write_page_fraction
        self.hot_write_ratio = hot_write_ratio
        self.cold_write_ratio = cold_write_ratio

    def _is_write_page(self, pages: np.ndarray) -> np.ndarray:
        # Stable multiplicative hash -> uniform in [0, 1).
        hashed = (pages * np.int64(2654435761)) % np.int64(1 << 31)
        return hashed < int(self.write_page_fraction * (1 << 31))

    def flags(self, rng: np.random.Generator,
              pages: np.ndarray) -> np.ndarray:
        draws = rng.random(pages.shape[0])
        hot = self._is_write_page(pages)
        return np.where(
            hot, draws < self.hot_write_ratio, draws < self.cold_write_ratio
        )


class AlignedWrites(WriteModel):
    """Writes concentrated on an explicit set of pages.

    Real applications write mostly to a compact set of hot structures
    (stacks, accumulators, output buffers) that also rank among the
    most-read pages; CLOCK-DWF's whole design bet is that this write
    working set roughly fits in DRAM.  ``member_pages`` names that set;
    requests to it are writes with ``hot_write_ratio``, all other
    requests with ``cold_write_ratio``.

    Use :func:`solve_cold_ratio` to pick ``cold_write_ratio`` so that
    the *overall* write ratio matches a target given the member pages'
    expected traffic share.
    """

    def __init__(
        self,
        member_pages: "np.ndarray | Sequence[int]",
        hot_write_ratio: float,
        cold_write_ratio: float,
    ) -> None:
        members = np.asarray(member_pages, dtype=np.int64)
        if members.size and members.min() < 0:
            raise ValueError("member pages must be non-negative")
        for name, value in (
            ("hot_write_ratio", hot_write_ratio),
            ("cold_write_ratio", cold_write_ratio),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        size = int(members.max()) + 1 if members.size else 1
        self._lookup = np.zeros(size, dtype=bool)
        self._lookup[members] = True
        self.hot_write_ratio = hot_write_ratio
        self.cold_write_ratio = cold_write_ratio

    def flags(self, rng: np.random.Generator,
              pages: np.ndarray) -> np.ndarray:
        draws = rng.random(pages.shape[0])
        in_range = pages < self._lookup.shape[0]
        hot = np.zeros(pages.shape[0], dtype=bool)
        hot[in_range] = self._lookup[pages[in_range]]
        return np.where(
            hot, draws < self.hot_write_ratio, draws < self.cold_write_ratio
        )


def solve_cold_ratio(
    target_write_ratio: float,
    member_traffic_share: float,
    hot_write_ratio: float,
) -> float:
    """Cold-page write probability hitting an overall write-ratio target.

    Solves ``share * hot + (1 - share) * cold = target`` for ``cold``,
    clamped to [0, 1].
    """
    if not 0.0 <= member_traffic_share <= 1.0:
        raise ValueError("member_traffic_share must be in [0, 1]")
    remainder = 1.0 - member_traffic_share
    if remainder <= 0.0:
        return 0.0
    cold = (
        target_write_ratio - member_traffic_share * hot_write_ratio
    ) / remainder
    return min(1.0, max(0.0, cold))


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Phase:
    """One workload phase: a pattern, a write model, and its length."""

    pattern: AccessPattern
    writes: WriteModel
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("phase length must be non-negative")

    def render(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Materialise this phase as (pages, write-flags)."""
        pages = self.pattern.generate(rng, self.length)
        return pages, self.writes.flags(rng, pages)


class ComponentPhase(Phase):
    """A mixture phase where each component has its *own* write model.

    Needed when the read/write behaviour is tied to the access pattern
    itself — e.g. vips' tile buffers take write bursts while its row
    scans are read-mostly.  A single :class:`MixturePattern` +
    :class:`WriteModel` cannot express that, because the write model
    only sees page numbers.
    """

    def __init__(
        self,
        components: Sequence[tuple[AccessPattern, float, WriteModel]],
        length: int,
    ) -> None:
        if not components:
            raise ValueError("component phase needs at least one component")
        weights = np.array([weight for _, weight, _ in components],
                           dtype=float)
        if (weights <= 0).any():
            raise ValueError("component weights must be positive")
        # Satisfy the (frozen) dataclass base with representative values.
        object.__setattr__(self, "pattern", components[0][0])
        object.__setattr__(self, "writes", components[0][2])
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "_components", list(components))
        object.__setattr__(self, "_probabilities", weights / weights.sum())
        if length < 0:
            raise ValueError("phase length must be non-negative")

    def render(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        choices = rng.choice(
            len(self._components), size=self.length, p=self._probabilities
        )
        pages = np.empty(self.length, dtype=np.int64)
        flags = np.empty(self.length, dtype=bool)
        for index, (pattern, _, writes) in enumerate(self._components):
            mask = choices == index
            need = int(mask.sum())
            if need:
                chunk = pattern.generate(rng, need)
                pages[mask] = chunk
                flags[mask] = writes.flags(rng, chunk)
        return pages, flags


class PhasedWorkload:
    """A named sequence of phases rendered into a :class:`Trace`."""

    def __init__(self, name: str, phases: Sequence[Phase],
                 page_size: int = PAGE_SIZE) -> None:
        if not phases:
            raise ValueError("workload needs at least one phase")
        self.name = name
        self.phases = list(phases)
        self.page_size = page_size

    @property
    def total_requests(self) -> int:
        return sum(phase.length for phase in self.phases)

    def build(self, seed: SeedLike = 0) -> Trace:
        """Render the workload deterministically from ``seed``.

        ``seed`` may also be a live ``Generator``, so several workloads
        can be built from one threaded stream without correlation.
        """
        rng = ensure_rng(seed)
        page_chunks: list[np.ndarray] = []
        write_chunks: list[np.ndarray] = []
        for phase in self.phases:
            pages, flags = phase.render(rng)
            page_chunks.append(pages)
            write_chunks.append(flags)
        return Trace(
            np.concatenate(page_chunks) if page_chunks else [],
            np.concatenate(write_chunks) if write_chunks else [],
            name=self.name,
            page_size=self.page_size,
        )
