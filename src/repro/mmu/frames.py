"""Physical frame allocation for one memory module."""

from __future__ import annotations


class FrameAllocator:
    """Fixed-capacity pool of page frames with O(1) allocate/free.

    Frames are plain integers ``0..capacity-1``.  Freed frames are
    recycled LIFO, which keeps the numbering dense for small runs and
    makes allocation order deterministic.
    """

    __slots__ = ("capacity", "_next_fresh", "_free", "_allocated")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._next_fresh = 0
        self._free: list[int] = []
        self._allocated: set[int] = set()

    @property
    def used(self) -> int:
        return len(self._allocated)

    @property
    def free_count(self) -> int:
        return self.capacity - self.used

    @property
    def full(self) -> bool:
        return len(self._allocated) >= self.capacity

    @property
    def empty(self) -> bool:
        return self.used == 0

    def allocate(self) -> int:
        """Take a free frame; raises :class:`MemoryError` when full."""
        allocated = self._allocated
        if len(allocated) >= self.capacity:
            raise MemoryError(
                f"no free frames (capacity {self.capacity}); "
                "the policy must evict before allocating"
            )
        free = self._free
        if free:
            frame = free.pop()
        else:
            frame = self._next_fresh
            self._next_fresh += 1
        allocated.add(frame)
        return frame

    def release(self, frame: int) -> None:
        """Return a frame to the pool."""
        try:
            self._allocated.remove(frame)
        except KeyError:
            raise ValueError(f"frame {frame} is not allocated") from None
        self._free.append(frame)

    def is_allocated(self, frame: int) -> bool:
        return frame in self._allocated
