"""A flat page table mapping virtual pages to their resident frames."""

from __future__ import annotations

from typing import Iterator

from repro.mmu.page import PageLocation, PageTableEntry


class PageTable:
    """Maps page numbers to :class:`PageTableEntry` for resident pages.

    Pages on disk have no entry (a lookup miss *is* the page fault).
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[int, PageTableEntry] = {}

    def lookup(self, page: int) -> PageTableEntry | None:
        """Resident entry for ``page``, or ``None`` (page fault)."""
        return self._entries.get(page)

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, entry: PageTableEntry) -> None:
        if entry.page in self._entries:
            raise KeyError(f"page {entry.page} already resident")
        if not entry.location.in_memory:
            raise ValueError("page table entries must reference memory")
        self._entries[entry.page] = entry

    def remove(self, page: int) -> PageTableEntry:
        try:
            return self._entries.pop(page)
        except KeyError:
            raise KeyError(f"page {page} is not resident") from None

    def entries(self) -> Iterator[PageTableEntry]:
        return iter(self._entries.values())

    def pages_in(self, location: PageLocation) -> list[int]:
        return [
            entry.page
            for entry in self._entries.values()
            if entry.location is location
        ]

    def count_in(self, location: PageLocation) -> int:
        return sum(
            1 for entry in self._entries.values() if entry.location is location
        )
