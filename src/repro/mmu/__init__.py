"""The Linux-like memory-management layer: pages, frames, DMA, simulator."""

from repro.mmu.dma import Channel, DMAEngine
from repro.mmu.frames import FrameAllocator
from repro.mmu.manager import MemoryManager
from repro.mmu.page import PageLocation, PageTableEntry
from repro.mmu.page_table import PageTable
from repro.mmu.simulator import HybridMemorySimulator, RunResult, simulate

__all__ = [
    "Channel",
    "DMAEngine",
    "FrameAllocator",
    "HybridMemorySimulator",
    "MemoryManager",
    "PageLocation",
    "PageTable",
    "PageTableEntry",
    "RunResult",
    "simulate",
]
