"""DMA engine: byte-level transfer bookkeeping between devices.

The cost of every transfer is already captured by the paper's models
(Eq. 1/2 charge migrations and faults in line-access units).  The DMA
engine adds the *mechanical* view — how many pages and bytes crossed
each channel — which examples and reports use to show where the traffic
went, and which tests use to cross-check the model-level counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mmu.page import PageLocation


@dataclass(frozen=True)
class Channel:
    """A directed transfer path between two devices."""

    source: PageLocation
    destination: PageLocation

    def __str__(self) -> str:
        return f"{self.source}->{self.destination}"


@dataclass
class DMAEngine:
    """Counts page transfers per directed channel."""

    page_size: int
    transfers: dict[Channel, int] = field(default_factory=dict)

    def transfer_page(
        self, source: PageLocation, destination: PageLocation
    ) -> None:
        if source is destination:
            raise ValueError("DMA transfer requires distinct endpoints")
        channel = Channel(source, destination)
        self.transfers[channel] = self.transfers.get(channel, 0) + 1

    def pages_moved(
        self,
        source: PageLocation | None = None,
        destination: PageLocation | None = None,
    ) -> int:
        """Pages moved over channels matching the given endpoints."""
        return sum(
            count
            for channel, count in self.transfers.items()
            if (source is None or channel.source is source)
            and (destination is None or channel.destination is destination)
        )

    def bytes_moved(
        self,
        source: PageLocation | None = None,
        destination: PageLocation | None = None,
    ) -> int:
        return self.pages_moved(source, destination) * self.page_size

    @property
    def total_pages_moved(self) -> int:
        return sum(self.transfers.values())

    def summary(self) -> dict[str, int]:
        """Per-channel page counts keyed by ``SRC->DST`` strings."""
        return {str(channel): count for channel, count in self.transfers.items()}
