"""DMA engine: byte-level transfer bookkeeping between devices.

The cost of every transfer is already captured by the paper's models
(Eq. 1/2 charge migrations and faults in line-access units).  The DMA
engine adds the *mechanical* view — how many pages and bytes crossed
each channel — which examples and reports use to show where the traffic
went, and which tests use to cross-check the model-level counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mmu.page import PageLocation


@dataclass(frozen=True)
class Channel:
    """A directed transfer path between two devices."""

    source: PageLocation
    destination: PageLocation

    def __str__(self) -> str:
        return f"{self.source}->{self.destination}"


#: Interned channel objects, one per (source, destination) pair.  A
#: transfer is charged on every migration/fault/eviction, and hashing a
#: ``Channel`` dataclass re-hashes two enum members each time; looking
#: the singleton up by member identity keeps the hot path in C-speed
#: dict operations (there are at most 6 directed channels).
_CHANNELS: dict[tuple[PageLocation, PageLocation], Channel] = {
    (source, destination): Channel(source, destination)
    for source in PageLocation
    for destination in PageLocation
    if source is not destination
}


def channel(source: PageLocation, destination: PageLocation) -> Channel:
    """The interned :class:`Channel` for a (source, destination) pair.

    Batched kernels hoist the channels they charge and update
    ``DMAEngine.transfers`` directly; going through this accessor keeps
    them pointing at the same singletons :meth:`DMAEngine.transfer_page`
    uses, so both code paths key the transfer log identically.
    """
    return _CHANNELS[(source, destination)]


@dataclass
class DMAEngine:
    """Counts page transfers per directed channel."""

    page_size: int
    transfers: dict[Channel, int] = field(default_factory=dict)

    def transfer_page(
        self, source: PageLocation, destination: PageLocation
    ) -> None:
        if source is destination:
            raise ValueError("DMA transfer requires distinct endpoints")
        channel = _CHANNELS[(source, destination)]
        transfers = self.transfers
        transfers[channel] = transfers.get(channel, 0) + 1

    def pages_moved(
        self,
        source: PageLocation | None = None,
        destination: PageLocation | None = None,
    ) -> int:
        """Pages moved over channels matching the given endpoints."""
        return sum(
            count
            for channel, count in self.transfers.items()
            if (source is None or channel.source is source)
            and (destination is None or channel.destination is destination)
        )

    def bytes_moved(
        self,
        source: PageLocation | None = None,
        destination: PageLocation | None = None,
    ) -> int:
        return self.pages_moved(source, destination) * self.page_size

    @property
    def total_pages_moved(self) -> int:
        return sum(self.transfers.values())

    def summary(self) -> dict[str, int]:
        """Per-channel page counts keyed by ``SRC->DST`` strings."""
        return {str(channel): count for channel, count in self.transfers.items()}
